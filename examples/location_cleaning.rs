//! Location scenario: fill missing postcodes from a government master table.
//!
//! Mirrors §V-A1's Location dataset: a coffee-shop table with ~15% missing
//! postcodes and real (labelled) errors, repaired against a clean postcode
//! registry whose schema only overlaps on four attributes. The planted FD is
//! the paper's φ₂: `(county, area_code) → postcode`.
//!
//! Run: `cargo run --release --example location_cleaning`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn main() {
    let kind = DatasetKind::Location;
    let scenario = kind.build(kind.paper_config());
    let task = &scenario.task;
    println!(
        "location scenario: {} stores, {} dirty postcodes, {} registry rows\n",
        task.input().num_rows(),
        scenario.num_dirty(),
        task.master().num_rows()
    );

    // EnuMiner is tractable here (few matched attributes).
    let enu = erminer::enuminer::mine(task, EnuMinerConfig::new(scenario.support_threshold));
    println!(
        "EnuMiner: {} rules from {} evaluations in {:.2?}",
        enu.rules.len(),
        enu.evaluated,
        enu.elapsed
    );
    for (rule, m) in enu.rules.iter().take(3) {
        println!(
            "  U={:<6.2} S={:<4} C={:.2} Q={:+.2}  {}",
            m.utility,
            m.support,
            m.certainty,
            m.quality,
            rule.display(task.input(), task.master().schema())
        );
    }

    // RLMiner reaches comparable quality without the enumeration.
    let mut config = RlMinerConfig::new(scenario.support_threshold);
    config.train_steps = 5000;
    let mut miner = RlMiner::new(task, config);
    let stats = miner.train(task);
    let rl = miner.mine(task);
    println!(
        "\nRLMiner: {} fresh rule evaluations (vs {} for EnuMiner), {} rules",
        stats.fresh_evaluations,
        enu.evaluated,
        rl.rules.len()
    );

    for (name, rules) in [("EnuMiner", enu.rules_only()), ("RLMiner", rl.rules_only())] {
        let report = apply_rules(task, &rules);
        let q = scenario.evaluate(&report);
        println!(
            "{name:<9} -> P={:.2} R={:.2} F1={:.2} over {} evaluated cells",
            q.precision, q.recall, q.f1, q.evaluated
        );
    }

    // Show a handful of concrete repairs (missing postcodes filled).
    let best_rules = enu.rules_only();
    let report = apply_rules(task, &best_rules);
    let y = task.target().0;
    let mut shown = 0;
    println!("\nsample repairs of missing postcodes:");
    for row in 0..task.input().num_rows() {
        if task.input().is_null(row, y) {
            if let Some(code) = report.predictions[row] {
                let county = task
                    .input()
                    .value(row, task.input().schema().attr_id("county").unwrap());
                println!(
                    "  store row {row} (county {county}): postcode NULL -> {}",
                    task.input().pool().value(code)
                );
                shown += 1;
                if shown == 5 {
                    break;
                }
            }
        }
    }
}
