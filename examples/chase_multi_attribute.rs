//! Multi-attribute certain-fix chase: fixes that unlock other fixes.
//!
//! The Figure-1 narrative needs two repairs on the registration table:
//! `ZIP` (missing for Kevin) and `AC` (missing for Kevin and Robin). The
//! `ZIP → AC` rule cannot fire on Kevin until his `ZIP` is filled — so the
//! repairs must *cascade*. This example mines rules for both targets and
//! runs the round-based chase (`er_rules::chase`) until the fixpoint.
//!
//! Run: `cargo run --release --example chase_multi_attribute`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;
use erminer::rules::{chase, ChaseConfig, TargetRules};

fn main() {
    let scenario = erminer::datagen::figure1();
    let base = &scenario.task;
    let input = base.input().clone();
    let master = base.master().clone();
    let matching = base.matching().clone();

    // Mine a rule set per target attribute: ZIP and AC.
    let mut targets = Vec::new();
    for attr in ["ZIP", "AC"] {
        let y = input.schema().attr_id(attr).expect("input attr");
        let ym = master.schema().attr_id(attr).expect("master attr");
        let task = Task::new(input.clone(), master.clone(), matching.clone(), (y, ym));
        let mined = erminer::enuminer::mine(&task, EnuMinerConfig::new(1));
        println!("rules for {attr}:");
        for (rule, m) in mined.rules.iter().take(3) {
            println!(
                "  U={:<5.2} S={} C={:.2}  {}",
                m.utility,
                m.support,
                m.certainty,
                rule.display(&input, master.schema())
            );
        }
        targets.push(TargetRules {
            target: (y, ym),
            rules: mined.rules_only(),
        });
    }

    // Chase to the fixpoint.
    let result = chase(&input, &master, &matching, &targets, ChaseConfig::default());
    println!(
        "\nchase finished in {} rounds with {} fixes ({} contested):",
        result.rounds,
        result.fixes.len(),
        result.contested
    );
    let pool = input.pool();
    for fix in &result.fixes {
        let name = input.value(fix.row, 0);
        let attr = input.schema().attr(fix.attr).name.clone();
        println!(
            "  round {}: {}[{}] {} -> {} (score {:.2})",
            fix.round,
            name,
            attr,
            pool.value(fix.from),
            pool.value(fix.to),
            fix.score
        );
    }
}
