//! Covid-19 scenario: discover the paper's φ₁-style rule.
//!
//! The master data only records *released* cases, so a correct rule must
//! carry the pattern condition `state = released` — a condition that exists
//! only on the **input** side, which is exactly what editing-rule discovery
//! can find and CFD transfer cannot (§V-B2).
//!
//! Run: `cargo run --release --example covid_repair`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn main() {
    let kind = DatasetKind::Covid;
    let scenario = kind.build(ScenarioConfig {
        input_size: 1200,
        master_size: 900,
        seed: 7,
        ..kind.paper_config()
    });
    let task = &scenario.task;
    println!(
        "covid scenario: {} input tuples ({} dirty Y cells), {} released master records, η_s = {}\n",
        task.input().num_rows(),
        scenario.num_dirty(),
        task.master().num_rows(),
        scenario.support_threshold
    );

    // RLMiner.
    let mut config = RlMinerConfig::new(scenario.support_threshold);
    config.train_steps = 4000;
    config.epsilon = (1.0, 0.05, 2500);
    let mut miner = RlMiner::new(task, config);
    let stats = miner.train(task);
    let rl = miner.mine(task);
    println!(
        "RLMiner: {} train steps in {:.1?}, inference {} steps -> {} rules",
        stats.steps,
        stats.elapsed,
        rl.steps,
        rl.rules.len()
    );
    for (rule, m) in rl.rules.iter().take(5) {
        println!(
            "  U={:<6.2} S={:<4} C={:.2} Q={:+.2}  {}",
            m.utility,
            m.support,
            m.certainty,
            m.quality,
            rule.display(task.input(), task.master().schema())
        );
    }

    // The CTANE baseline for contrast: it cannot express `state = released`
    // conditions on input-only evidence.
    let (ctane_rules, ctane) =
        ctane_baseline(task, CtaneConfig::new(scenario.support_threshold.min(50)));
    println!(
        "\nCTANE baseline: {} CFDs mined on master, {} convertible to editing rules",
        ctane.cfds.len(),
        ctane_rules.len()
    );

    for (name, rules) in [("RLMiner", rl.rules_only()), ("CTANE", ctane_rules)] {
        let report = apply_rules(task, &rules);
        let q = scenario.evaluate(&report);
        println!(
            "{name:<8} -> {} predictions, P={:.2} R={:.2} F1={:.2}",
            report.num_predictions(),
            q.precision,
            q.recall,
            q.f1
        );
    }
}
