//! Quickstart: the paper's Figure 1 end to end.
//!
//! Three self-reported COVID-19 registration tuples (with typos and missing
//! values) are repaired against four national records used as master data.
//! We mine editing rules with both EnuMiner and RLMiner, print them in the
//! paper's notation, and apply them.
//!
//! Run: `cargo run --release --example quickstart`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn main() {
    // The Figure-1 scenario ships with the dataset generator.
    let scenario = erminer::datagen::figure1();
    let task = &scenario.task;
    println!(
        "input: {} tuples / {} attrs;  master: {} tuples / {} attrs\n",
        task.input().num_rows(),
        task.input().num_attrs(),
        task.master().num_rows(),
        task.master().num_attrs()
    );

    // --- EnuMiner: exhaustive enumeration (exact top-K by utility). ---
    let enu = erminer::enuminer::mine(task, EnuMinerConfig::new(1));
    println!(
        "EnuMiner evaluated {} candidate rules; top rules:",
        enu.evaluated
    );
    for (rule, m) in enu.rules.iter().take(3) {
        println!(
            "  U={:<6.2} S={:<2} C={:.2} Q={:+.2}  {}",
            m.utility,
            m.support,
            m.certainty,
            m.quality,
            rule.display(task.input(), task.master().schema())
        );
    }

    // --- RLMiner: the DQN agent grows a rule tree instead. ---
    let mut config = RlMinerConfig::new(1);
    config.train_steps = 800; // tiny data, tiny budget
    config.epsilon = (1.0, 0.05, 500);
    config.k = 10;
    let mut miner = RlMiner::new(task, config);
    let stats = miner.train(task);
    let result = miner.mine(task);
    println!(
        "\nRLMiner trained {} steps ({} episodes, {} fresh rule evaluations);",
        stats.steps, stats.episodes, stats.fresh_evaluations
    );
    println!(
        "inference took {} steps and discovered {} rules; top rules:",
        result.steps, result.discovered
    );
    for (rule, m) in result.rules.iter().take(3) {
        println!(
            "  U={:<6.2} S={:<2} C={:.2} Q={:+.2}  {}",
            m.utility,
            m.support,
            m.certainty,
            m.quality,
            rule.display(task.input(), task.master().schema())
        );
    }

    // --- Repair the input with the discovered rules. ---
    let report = apply_rules(task, &enu.rules_only());
    let quality = scenario.evaluate(&report);
    println!(
        "\nrepair: {} predictions, weighted P={:.2} R={:.2} F1={:.2}",
        report.num_predictions(),
        quality.precision,
        quality.recall,
        quality.f1
    );

    // Show the actual fix for t1 (Kevin's missing infection case).
    let y = task.target().0;
    if let Some(code) = report.predictions[0] {
        println!(
            "t1[Case]: {} -> {}",
            task.input().value(0, y),
            task.input().pool().value(code)
        );
    }
}
