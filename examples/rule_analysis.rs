//! Rule-set analysis: how many rules do you actually need?
//!
//! The paper caps discovery at the top-K = 50 rules because oversized rule
//! sets are hard to review and slow to apply (§II-C). This example mines a
//! rule set, then uses `er_rules::analysis` to show the cumulative-coverage
//! curve, each rule's marginal contribution, and pairwise overlap — the
//! evidence for picking a smaller K.
//!
//! Run: `cargo run --release --example rule_analysis`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn main() {
    let kind = DatasetKind::Covid;
    let scenario = kind.build(ScenarioConfig {
        input_size: 1500,
        master_size: 1100,
        seed: 9,
        ..kind.paper_config()
    });
    let task = &scenario.task;

    let mined = erminer::enuminer::mine(task, EnuMinerConfig::new(scenario.support_threshold));
    let rules = mined.rules_only();
    println!("mined {} rules; analyzing coverage…\n", rules.len());

    let report = coverage(task, &rules);
    println!(
        "the full set can repair {} of {} tuples ({:.0}%)",
        report.covered,
        report.total_rows,
        report.coverage_fraction() * 100.0
    );
    println!("\n rank  support  marginal  cumulative");
    for (i, rc) in report.rules.iter().take(12).enumerate() {
        println!(
            "  {:>3} {:>8} {:>9} {:>11}",
            i + 1,
            rc.supported_rows.len(),
            rc.marginal_rows,
            report.cumulative[i]
        );
    }
    for frac in [0.8, 0.9, 0.95, 1.0] {
        println!(
            "K = {:>2} rules reach {:.0}% of the attainable coverage",
            report.knee(frac),
            frac * 100.0
        );
    }

    if rules.len() >= 2 {
        println!(
            "\noverlap(rule #1, rule #2) = {:.2} (Jaccard on repairable tuples)",
            erminer::rules::analysis::overlap(task, &rules[0], &rules[1])
        );
    }
}
