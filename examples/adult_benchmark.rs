//! Adult scenario: all four miners head to head.
//!
//! Reproduces the flavor of Table III on a scaled-down Adult-like dataset:
//! EnuMiner (exhaustive), EnuMinerH3 (depth-limited heuristic), RLMiner
//! (the paper's contribution), and the CTANE CFD-transfer baseline.
//!
//! Run: `cargo run --release --example adult_benchmark`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;
use std::time::Instant;

fn main() {
    let kind = DatasetKind::Adult;
    // 1/8 of the paper's 40k input keeps this example under a minute.
    let scenario = kind.build(kind.small_config());
    let task = &scenario.task;
    println!(
        "adult scenario: {} input x {} attrs, {} master x {} attrs, η_s = {}\n",
        task.input().num_rows(),
        task.input().num_attrs(),
        task.master().num_rows(),
        task.master().num_attrs(),
        scenario.support_threshold
    );

    let mut rows: Vec<(String, usize, std::time::Duration, WeightedPrf)> = Vec::new();

    // CTANE baseline.
    let t = Instant::now();
    let (ctane_rules, _) = ctane_baseline(task, CtaneConfig::new(scenario.support_threshold / 4));
    let elapsed = t.elapsed();
    let q = scenario.evaluate(&apply_rules(task, &ctane_rules));
    rows.push(("CTANE".into(), ctane_rules.len(), elapsed, q));

    // EnuMiner (full) and EnuMinerH3.
    for (name, config) in [
        ("EnuMiner", EnuMinerConfig::new(scenario.support_threshold)),
        ("EnuMinerH3", EnuMinerConfig::h3(scenario.support_threshold)),
    ] {
        let result = erminer::enuminer::mine(task, config);
        let q = scenario.evaluate(&apply_rules(task, &result.rules_only()));
        println!("{name}: evaluated {} candidate rules", result.evaluated);
        rows.push((name.into(), result.rules.len(), result.elapsed, q));
    }

    // RLMiner.
    let t = Instant::now();
    let mut config = RlMinerConfig::new(scenario.support_threshold);
    config.train_steps = 5000;
    let mut miner = RlMiner::new(task, config);
    let stats = miner.train(task);
    let rl = miner.mine(task);
    let elapsed = t.elapsed();
    println!(
        "RLMiner: {} fresh rule evaluations during training, {} inference steps",
        stats.fresh_evaluations, rl.steps
    );
    let q = scenario.evaluate(&apply_rules(task, &rl.rules_only()));
    rows.push(("RLMiner".into(), rl.rules.len(), elapsed, q));

    println!(
        "\n{:<11} {:>6} {:>10} {:>7} {:>7} {:>7}",
        "method", "rules", "time", "P", "R", "F1"
    );
    for (name, n, time, q) in rows {
        println!(
            "{:<11} {:>6} {:>9.2?} {:>7.2} {:>7.2} {:>7.2}",
            name, n, time, q.precision, q.recall, q.f1
        );
    }
}
