//! Incremental discovery with RLMiner-ft (§V-D3, Figures 10–11).
//!
//! In production both the input and the master data are enriched gradually,
//! so discovery runs repeatedly. Instead of retraining the agent from
//! scratch on every refresh, RLMiner-ft fine-tunes the existing agent for a
//! fraction of the steps. This example grows the input data in three
//! increments and compares retraining vs fine-tuning.
//!
//! Run: `cargo run --release --example incremental_finetune`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn main() {
    let kind = DatasetKind::Covid;
    // Build the *largest* version once; smaller versions are row prefixes,
    // so all versions share one value pool and the encoder stays valid.
    let full = kind.build(ScenarioConfig {
        input_size: 1600,
        master_size: 900,
        seed: 7,
        ..kind.paper_config()
    });
    let sizes = [400usize, 800, 1200, 1600];

    // Train once on the smallest version.
    let initial = full.with_input_prefix(sizes[0]);
    let mut config = RlMinerConfig::new(initial.support_threshold);
    config.train_steps = 3000;
    config.finetune_steps = 800;
    let mut ft_miner = RlMiner::new(&initial.task, config.clone());
    let t0 = ft_miner.train(&initial.task);
    println!(
        "initial training on {} tuples: {} steps in {:.1?}\n",
        sizes[0], t0.steps, t0.elapsed
    );

    println!(
        "{:>6} {:>14} {:>10} {:>14} {:>10}",
        "rows", "ft steps/time", "ft F1", "scratch time", "scratch F1"
    );
    for &n in &sizes[1..] {
        let version = full.with_input_prefix(n);

        // RLMiner-ft: fine-tune the existing agent.
        let ft_stats = ft_miner.fine_tune(&version.task);
        let ft_rules = ft_miner.mine(&version.task);
        let ft_q = version.evaluate(&apply_rules(&version.task, &ft_rules.rules_only()));

        // From-scratch baseline.
        let mut scratch = RlMiner::new(&version.task, config.clone());
        let s_stats = scratch.train(&version.task);
        let s_rules = scratch.mine(&version.task);
        let s_q = version.evaluate(&apply_rules(&version.task, &s_rules.rules_only()));

        println!(
            "{:>6} {:>6}/{:>6.1?} {:>10.2} {:>14.1?} {:>10.2}",
            n, ft_stats.steps, ft_stats.elapsed, ft_q.f1, s_stats.elapsed, s_q.f1
        );
    }
    println!("\nRLMiner-ft reaches comparable F1 at a fraction of the training cost.");
}
