//! Bring your own data: build a mining task from CSV text.
//!
//! Shows the full plumbing a downstream user needs: a shared value pool, two
//! relations loaded from CSV, a name-based schema match, a target attribute
//! pair, and a miner. The same code works with `csv::read_path` on files.
//!
//! Run: `cargo run --release --example custom_csv`

// Example code: panicking on bad setup keeps the walkthrough readable.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;
use erminer::table::csv;
use std::sync::Arc;

const INPUT_CSV: &str = "\
name,city,zip,area_code,plan
alice,HZ,31200,,basic
bob,BJ,10021,010,premium
carol,HZ,31200,571,basic
dave,HZ,,571,basic
erin,SZ,51800,,premium
frank,BJ,10021,010,
grace,HZ,31200,,basic
heidi,SZ,51800,755,premium
";

const MASTER_CSV: &str = "\
city,zip,area_code,plan
HZ,31200,571,basic
BJ,10021,010,premium
SZ,51800,755,premium
HZ,31200,571,basic
BJ,10021,010,premium
";

fn main() {
    // One pool so dictionary codes compare across the two relations.
    let pool = Arc::new(Pool::new());
    let input = csv::read_str("customers", INPUT_CSV, Arc::clone(&pool)).expect("input csv");
    let master = csv::read_str("registry", MASTER_CSV, Arc::clone(&pool)).expect("master csv");

    // Match attributes by (normalized) name; repair `area_code`.
    let matching = SchemaMatch::by_name(input.schema(), master.schema());
    let y = input
        .schema()
        .attr_id("area_code")
        .expect("target in input");
    let ym = master
        .schema()
        .attr_id("area_code")
        .expect("target in master");
    let task = Task::new(input, master, matching, (y, ym));

    // Mine with EnuMiner (tiny data — enumeration is instant).
    let result = erminer::enuminer::mine(&task, EnuMinerConfig::new(2));
    println!("discovered {} rules:", result.rules.len());
    for (rule, m) in &result.rules {
        println!(
            "  U={:<5.2} S={} C={:.2}  {}",
            m.utility,
            m.support,
            m.certainty,
            rule.display(task.input(), task.master().schema())
        );
    }

    // Apply and show the filled-in area codes.
    let report = apply_rules(&task, &result.rules_only());
    println!("\nrepairs:");
    for row in 0..task.input().num_rows() {
        if task.input().is_null(row, y) {
            if let Some(code) = report.predictions[row] {
                let name = task.input().value(row, 0);
                println!(
                    "  {name}: area_code NULL -> {}",
                    task.input().pool().value(code)
                );
            }
        }
    }
}
