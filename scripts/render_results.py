#!/usr/bin/env python3
"""Render results/*.json into the markdown blocks of EXPERIMENTS.md.

Usage: python3 scripts/render_results.py [results_dir] [experiments_md]

Replaces each `<!-- MEASURED:<id> -->` marker with a markdown table built
from `results/<id>.json` (the marker is kept so the script is idempotent —
everything between the marker and the next blank-line-delimited table it
previously wrote is regenerated).
"""
import json
import re
import sys
from pathlib import Path


def fmt(v):
    if isinstance(v, float):
        return f"{v:.3f}".rstrip("0").rstrip(".") if abs(v) < 1000 else f"{v:.1f}"
    return str(v)


def mean_std(d):
    return f"{d['mean']:.2f} ± {d['std']:.2f}"


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |", "|" + "|".join(["---"] * len(headers)) + "|"]
    for r in rows:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out)


def render(exp_id, data):
    if exp_id == "table1":
        return table(
            ["dataset", "#A", "#A_m", "#input", "#master", "η_s", "dirty Y"],
            [
                [r["dataset"], str(r["input_attrs"]), str(r["master_attrs"]),
                 str(r["input_rows"]), str(r["master_rows"]),
                 str(r["support_threshold"]), str(r["dirty_y"])]
                for r in data
            ],
        )
    if exp_id == "table2":
        return table(
            ["dataset", "method", "rules", "LHS mean±std", "LHS max/min",
             "pattern mean±std", "pattern max/min"],
            [
                [r["dataset"], r["method"], str(r["num_rules"]), mean_std(r["lhs"]),
                 f"{r['lhs_max_min'][0]}/{r['lhs_max_min'][1]}", mean_std(r["pattern"]),
                 f"{r['pattern_max_min'][0]}/{r['pattern_max_min'][1]}"]
                for r in data
            ],
        )
    if exp_id == "table3":
        return table(
            ["dataset", "method", "precision", "recall", "F1", "time (s)"],
            [
                [r["dataset"], r["method"], mean_std(r["precision"]),
                 mean_std(r["recall"]), mean_std(r["f1"]), f"{r['seconds']:.2f}"]
                for r in data
            ],
        )
    if exp_id.startswith("fig") and exp_id not in ("fig12",):
        return table(
            ["x", "method", "F1", "precision", "recall", "time (s)", "rules evaluated"],
            [
                [fmt(r["x"]), r["method"], f"{r['f1']:.3f}", f"{r['precision']:.3f}",
                 f"{r['recall']:.3f}", f"{r['seconds']:.2f}", str(r["evaluated"])]
                for r in data
            ],
        )
    if exp_id == "fig12":
        return table(
            ["dataset", "train steps", "train (s)", "ft steps", "ft (s)",
             "inference steps", "inference (s)"],
            [
                [r["dataset"], str(r["train_steps"]), f"{r['train_seconds']:.1f}",
                 str(r["finetune_steps"]), f"{r['finetune_seconds']:.1f}",
                 str(r["inference_steps"]), f"{r['inference_seconds']:.3f}"]
                for r in data
            ],
        )
    if exp_id == "ablate":
        return table(
            ["variant", "F1", "rules", "training reward sum"],
            [
                [r["variant"], f"{r['f1']:.3f}", str(r["rules"]), f"{r['reward_sum']:.1f}"]
                for r in data
            ],
        )
    return "```json\n" + json.dumps(data, indent=1)[:2000] + "\n```"


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    md_path = Path(sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md")
    text = md_path.read_text()
    for f in sorted(results.glob("*.json")):
        exp_id = f.stem
        marker = f"<!-- MEASURED:{exp_id} -->"
        if marker not in text:
            continue
        body = "Measured:\n\n" + render(exp_id, json.loads(f.read_text()))
        # Replace marker + any previously generated block (up to the next
        # heading or end marker).
        pattern = re.escape(marker) + r"(?:\nMeasured:\n\n(?:\|[^\n]*\n)+)?"
        text = re.sub(pattern, marker + "\n" + body + "\n", text)
        print(f"rendered {exp_id}")
    md_path.write_text(text)


if __name__ == "__main__":
    main()
