#!/usr/bin/env bash
# The local mirror of CI: formatting, the clippy lint wall, the full test
# suite (sequential, with miner invariant audits, and with ER_THREADS=4
# worker pools), er-lint over the committed example rule set, the quick
# repair/ingest benchmarks (identity + trajectory checks), and two
# er-serve pipe-mode smokes (repair/append batches, then registry-backed
# repair_csv bulk streaming), plus the sharded serving smokes: the same
# session at --shards 4 (pipe and TCP) must answer byte-identically and
# report shard routing counters. Run from anywhere inside the repo.
#
# BENCH=1 additionally runs the thread-scaling sweep and refreshes
# results/par_sweep.json (release build; a few extra minutes).
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> unsafe_code forbid audit (every workspace crate)"
for f in src/lib.rs crates/*/src/lib.rs; do
    if ! head -1 "$f" | grep -q '#!\[forbid(unsafe_code)\]'; then
        echo "error: $f does not start with #![forbid(unsafe_code)]"
        exit 1
    fi
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets --all-features -- -D warnings"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> diagnostics doc-drift check (registry <-> README table)"
scripts/check_docs.sh

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --features debug-invariants -q"
cargo test --workspace --features debug-invariants -q

echo "==> ER_THREADS=4 cargo test --workspace -q"
ER_THREADS=4 cargo test --workspace -q

echo "==> ER_THREADS=4 cargo test -p er-incr -q (append/rebuild equivalence)"
ER_THREADS=4 cargo test -p er-incr -q

echo "==> experiments lint examples/figure1_rules.json"
cargo run -p er-bench --bin experiments -- lint examples/figure1_rules.json

echo "==> experiments analyze examples/figure1_rules.json (certified, exit 0)"
cargo run -p er-bench --bin experiments -- analyze examples/figure1_rules.json

echo "==> experiments analyze examples/cyclic_rules.json (ER008, exit 1)"
rc=0
cargo run -p er-bench --bin experiments -- analyze examples/cyclic_rules.json \
    --out results/analyze-cyclic.json || rc=$?
[[ "$rc" == 1 ]]

echo "==> experiments analyze examples/conflicting_rules.json (ER009, exit 1)"
rc=0
cargo run -p er-bench --bin experiments -- analyze examples/conflicting_rules.json \
    --out results/analyze-conflicting.json || rc=$?
[[ "$rc" == 1 ]]

echo "==> experiments prove examples/figure1_rules.json (confluent, exit 0)"
proveout=$(cargo run -p er-bench --bin experiments -- prove examples/figure1_rules.json)
echo "$proveout"
[[ "$proveout" == *'CERTIFIED'* ]]
[[ "$proveout" == *'arrival-order vote merges are licensed'* ]]

echo "==> experiments prove examples/nonconfluent_rules.json (ER013 witness, exit 1)"
rc=0
proveout=$(cargo run -p er-bench --bin experiments -- prove examples/nonconfluent_rules.json \
    --out results/prove-nonconfluent.json) || rc=$?
echo "$proveout"
[[ "$rc" == 1 ]]
[[ "$proveout" == *'NOT CERTIFIED'* ]]
[[ "$proveout" == *'error[ER013]'* ]]
[[ "$proveout" == *'two-order witness: master row 2 (Kevin, Sun'* ]]

echo "==> experiments diff v1 v1 (equivalence certified, exit 0)"
same=$(cargo run -p er-bench --bin experiments -- diff \
    examples/figure1_rules.json examples/figure1_rules.json \
    --out results/diff-same.json)
echo "$same"
[[ "$same" == *'CERTIFIED'* ]]

echo "==> experiments diff v1 v2 (ER011 witnesses, exit 0)"
diffout=$(cargo run -p er-bench --bin experiments -- diff \
    examples/figure1_rules.json examples/figure1_rules_v2.json \
    --out results/diff.json)
echo "$diffout"
[[ "$diffout" == *'info[ER011]'* ]]
[[ "$diffout" == *'witness row 0: Kevin, Lees'* ]]
[[ "$diffout" == *'witness row 1: Kyrie, Wang'* ]]
[[ "$diffout" == *'2 verdict changes, 0 errors, 2 infos'* ]]

echo "==> experiments diff v1 v2 --scope Date=2021-12 (ER012, exit 1)"
rc=0
cargo run -p er-bench --bin experiments -- diff \
    examples/figure1_rules.json examples/figure1_rules_v2.json \
    --scope '{"Date":"2021-12"}' --out results/diff-scoped.json || rc=$?
[[ "$rc" == 1 ]]

echo "==> experiments repair_bench --quick (batched == reference, trajectory well-formed)"
benchout=$(cargo run -p er-bench --release --bin experiments -- --quick repair_bench)
echo "$benchout"
[[ "$benchout" == *'byte-identical'* ]]
[[ "$benchout" == *'well-formed'* ]]

echo "==> experiments ingest_bench --quick (chunked == whole-file, trajectory well-formed)"
ingestout=$(cargo run -p er-bench --release --bin experiments -- --quick ingest_bench)
echo "$ingestout"
[[ "$ingestout" == *'byte-identical'* ]]
[[ "$ingestout" == *'well-formed'* ]]

echo "==> experiments serve_bench --quick (socket == pipe, trajectory well-formed)"
serveout=$(cargo run -p er-bench --release --bin experiments -- --quick serve_bench)
echo "$serveout"
[[ "$serveout" == *'byte-identical'* ]]
[[ "$serveout" == *'well-formed'* ]]

echo "==> experiments shard_bench --quick (byte-identical at 1/2/8 shards, trajectory well-formed)"
shardout=$(cargo run -p er-bench --release --bin experiments -- --quick shard_bench)
echo "$shardout"
[[ "$shardout" == *'byte-identical'* ]]
[[ "$shardout" == *'well-formed'* ]]

echo "==> er-serve pipe-mode smoke"
smoke=$(printf '%s\n' \
    '{"op":"ping"}' \
    '{"op":"repair","rows":[["Kevin","HZ",null,null,"325-8455","Male",null,"2021-12","No"]]}' \
    '{"op":"append","rows":[["Lena","Wu","SZ","51800","0755","555-0101","Female","no symptoms","2021-10"]]}' \
    '{"op":"stats"}' \
    | cargo run -q --bin er-serve -- --rules examples/figure1_rules.json)
echo "$smoke"
[[ "$(echo "$smoke" | sed -n 1p)" == *'"ok":true'* ]]
[[ "$(echo "$smoke" | sed -n 2p)" == *'"fixed":1'* ]]
[[ "$(echo "$smoke" | sed -n 2p)" == *'contact with patient'* ]]
[[ "$(echo "$smoke" | sed -n 3p)" == *'"appended":1'* ]]
[[ "$(echo "$smoke" | sed -n 4p)" == *'"appends":1'* ]]
[[ "$(echo "$smoke" | sed -n 4p)" == *'"engine_generation":5'* ]]
[[ "$(echo "$smoke" | sed -n 4p)" == *'"signature_dedup"'* ]]
[[ "$(echo "$smoke" | sed -n 4p)" == *'"confluence_certified":false'* ]]

echo "==> er-serve repair_csv pipe smoke (registry-backed bulk streaming)"
csv_smoke=$(printf '%s\n' \
    '{"op":"repair_csv","path":"examples/figure1_input.csv"}' \
    '{"op":"stats"}' \
    | cargo run -q --bin er-serve -- --rules examples/figure1_rules.json \
        --registry examples/datasets.json --dataset figure1-files)
echo "$csv_smoke"
[[ "$(echo "$csv_smoke" | sed -n 1p)" == *'"op":"repair_csv"'* ]]
[[ "$(echo "$csv_smoke" | sed -n 1p)" == *'"rows":3'* ]]
[[ "$(echo "$csv_smoke" | sed -n 2p)" == *'"ingested_rows"'* ]]
[[ "$(echo "$csv_smoke" | sed -n 2p)" == *'"ingest_chunks"'* ]]

echo "==> er-serve sharded pipe smoke (--shards 4, ER_THREADS=4)"
shard_smoke=$(printf '%s\n' \
    '{"op":"ping"}' \
    '{"op":"repair","rows":[["Kevin","HZ",null,null,"325-8455","Male",null,"2021-12","No"]]}' \
    '{"op":"append","rows":[["Lena","Wu","SZ","51800","0755","555-0101","Female","no symptoms","2021-10"]]}' \
    '{"op":"stats"}' \
    | ER_THREADS=4 cargo run -q --bin er-serve -- --rules examples/figure1_rules.json --shards 4)
echo "$shard_smoke"
# Byte-identical to the unsharded smoke on every non-stats line.
[[ "$(echo "$shard_smoke" | sed -n 1,3p)" == "$(echo "$smoke" | sed -n 1,3p)" ]]
[[ "$(echo "$shard_smoke" | sed -n 4p)" == *'"engine_generation":5'* ]]
[[ "$(echo "$shard_smoke" | sed -n 4p)" == *'"shards":4'* ]]
[[ "$(echo "$shard_smoke" | sed -n 4p)" == *'"shard_routed":1'* ]]
[[ "$(echo "$shard_smoke" | sed -n 4p)" == *'"shard_imbalance"'* ]]
[[ "$(echo "$shard_smoke" | sed -n 4p)" == *'"confluence_certified":false'* ]]

echo "==> er-serve sharded TCP smoke (--shards 4, ER_THREADS=4, event loop)"
tcp_log=$(mktemp)
ER_THREADS=4 cargo run -q --bin er-serve -- --rules examples/figure1_rules.json \
    --shards 4 --workers 4 --tcp 127.0.0.1:0 2>"$tcp_log" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$tcp_log")
    [[ -n "$port" ]] && break
    sleep 0.1
done
[[ -n "$port" ]]
tcp_smoke=$(printf '%s\n' \
    '{"op":"repair","rows":[["Kevin","HZ",null,null,"325-8455","Male",null,"2021-12","No"]]}' \
    '{"op":"stats"}' \
    '{"op":"shutdown"}' \
    | timeout 60 bash -c "exec 3<>/dev/tcp/127.0.0.1/$port; cat >&3; cat <&3")
echo "$tcp_smoke"
[[ "$(echo "$tcp_smoke" | sed -n 1p)" == "$(echo "$smoke" | sed -n 2p)" ]]
[[ "$(echo "$tcp_smoke" | sed -n 2p)" == *'"shards":4'* ]]
[[ "$(echo "$tcp_smoke" | sed -n 2p)" == *'"shard_routed":1'* ]]
[[ "$(echo "$tcp_smoke" | sed -n 3p)" == *'"shutdown"'* ]]
wait "$serve_pid"
rm -f "$tcp_log"

if [[ "${BENCH:-0}" == "1" ]]; then
    echo "==> experiments par_sweep (refreshing results/par_sweep.json)"
    cargo run -p er-bench --release --bin experiments -- par_sweep
fi

echo "All checks passed."
