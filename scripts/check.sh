#!/usr/bin/env bash
# The local mirror of CI: formatting, the clippy lint wall, the full test
# suite (with and without the miner invariant audits), and er-lint over the
# committed example rule set. Run from anywhere inside the repo.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --features debug-invariants -q"
cargo test --workspace --features debug-invariants -q

echo "==> experiments lint examples/figure1_rules.json"
cargo run -p er-bench --bin experiments -- lint examples/figure1_rules.json

echo "All checks passed."
