#!/usr/bin/env bash
# The local mirror of CI: formatting, the clippy lint wall, the full test
# suite (sequential, with miner invariant audits, and with ER_THREADS=4
# worker pools), and er-lint over the committed example rule set. Run from
# anywhere inside the repo.
#
# BENCH=1 additionally runs the thread-scaling sweep and refreshes
# results/par_sweep.json (release build; a few extra minutes).
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --features debug-invariants -q"
cargo test --workspace --features debug-invariants -q

echo "==> ER_THREADS=4 cargo test --workspace -q"
ER_THREADS=4 cargo test --workspace -q

echo "==> experiments lint examples/figure1_rules.json"
cargo run -p er-bench --bin experiments -- lint examples/figure1_rules.json

if [[ "${BENCH:-0}" == "1" ]]; then
    echo "==> experiments par_sweep (refreshing results/par_sweep.json)"
    cargo run -p er-bench --release --bin experiments -- par_sweep
fi

echo "All checks passed."
