#!/usr/bin/env bash
# Doc-drift gate: the single-source DiagnosticCode registry
# (crates/lint/src/diag.rs) and the README diagnostics table must agree in
# BOTH directions — every registered code has a documented table row, and
# every table row documents a registered code. A new diagnostic landing
# without its README row (or a row surviving a code's removal) fails CI.
# Run from anywhere inside the repo; standalone or via scripts/check.sh.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

# Registry codes: the `DiagnosticCode::ErNNN => "ERNNN"` arms of as_str().
registry=$(grep -oE '=> "ER[0-9]{3}"' crates/lint/src/diag.rs \
    | grep -oE 'ER[0-9]{3}' | sort -u)
[[ -n "$registry" ]] || { echo "error: no codes found in the registry"; exit 1; }

# Documented codes: the `| \`ERNNN\` | severity | ...` rows of the README
# diagnostics table.
documented=$(grep -oE '^\| `ER[0-9]{3}` \|' README.md \
    | grep -oE 'ER[0-9]{3}' | sort -u)
[[ -n "$documented" ]] || { echo "error: no diagnostics table rows in README.md"; exit 1; }

status=0
undocumented=$(comm -23 <(echo "$registry") <(echo "$documented"))
if [[ -n "$undocumented" ]]; then
    echo "error: registered in crates/lint/src/diag.rs but missing a README diagnostics table row:"
    echo "$undocumented"
    status=1
fi
unregistered=$(comm -13 <(echo "$registry") <(echo "$documented"))
if [[ -n "$unregistered" ]]; then
    echo "error: documented in the README diagnostics table but not in crates/lint/src/diag.rs:"
    echo "$unregistered"
    status=1
fi

if [[ "$status" == 0 ]]; then
    count=$(echo "$registry" | wc -l | tr -d ' ')
    echo "doc-drift: OK — $count diagnostic codes, registry and README agree"
fi
exit "$status"
