//! Property-based tests for the relational substrate.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_table::{csv, Attribute, Pool, RelationBuilder, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Arbitrary cell values, biased toward collisions (shared pool codes).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        4 => (0i64..20).prop_map(Value::Int),
        2 => (0u8..10).prop_map(|v| Value::Float(v as f64 / 2.0)),
        6 => "[a-z]{0,6}".prop_map(Value::str),
        // CSV-hostile strings: quotes, commas, newlines.
        2 => prop::sample::select(vec!["a,b", "he said \"hi\"", "multi\nline", ""])
            .prop_map(Value::str),
    ]
}

fn arb_rows(cols: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(arb_value(), cols), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interning is stable: the same value always gets the same code, and
    /// decode(intern(v)) == v.
    #[test]
    fn pool_round_trip(values in prop::collection::vec(arb_value(), 1..100)) {
        let pool = Pool::new();
        let codes: Vec<_> = values.iter().map(|v| pool.intern(v.clone())).collect();
        for (v, &c) in values.iter().zip(&codes) {
            prop_assert_eq!(pool.intern(v.clone()), c);
            prop_assert_eq!(pool.value(c), v.clone());
        }
        // Equal values share codes; distinct values don't.
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                prop_assert_eq!(codes[i] == codes[j], a == b, "{:?} vs {:?}", values[i], values[j]);
            }
        }
    }

    /// Relation cells decode to exactly what was inserted.
    #[test]
    fn relation_cells_round_trip(rows in arb_rows(3)) {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("C"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let rel = b.finish();
        for (r, row) in rows.iter().enumerate() {
            for (a, v) in row.iter().enumerate() {
                prop_assert_eq!(rel.value(r, a), v.clone());
            }
        }
    }

    /// gather is a faithful projection of the chosen rows.
    #[test]
    fn gather_projects_rows(rows in arb_rows(2), picks in prop::collection::vec(0usize..29, 0..10)) {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![Attribute::categorical("A"), Attribute::categorical("B")],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let rel = b.finish();
        let picks: Vec<usize> = picks.into_iter().filter(|&p| p < rel.num_rows()).collect();
        let g = rel.gather(&picks);
        prop_assert_eq!(g.num_rows(), picks.len());
        for (i, &p) in picks.iter().enumerate() {
            for a in 0..2 {
                prop_assert_eq!(g.code(i, a), rel.code(p, a));
            }
        }
    }

    /// CSV write→read round-trips every relation, including quotes, commas
    /// and newlines in values. (Numeric values come back as strings —
    /// compare by rendering, which is what CSV can promise.)
    #[test]
    fn csv_round_trip(rows in arb_rows(3)) {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("C"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let rel = b.finish();
        let text = csv::write_str(&rel);
        let pool2 = Arc::new(Pool::new());
        let back = csv::read_str("t", &text, pool2).unwrap();
        prop_assert_eq!(back.num_rows(), rel.num_rows());
        for r in 0..rel.num_rows() {
            for a in 0..3 {
                // NULL and "" both render as "", which CSV cannot tell apart.
                let got = back.value(r, a).render().into_owned();
                let want = rel.value(r, a).render().into_owned();
                prop_assert_eq!(got, want, "cell ({}, {})", r, a);
            }
        }
    }

    /// KeyIndex::get returns exactly the rows whose key matches.
    #[test]
    fn key_index_is_exact(rows in arb_rows(2)) {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![Attribute::categorical("A"), Attribute::categorical("B")],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let rel = b.finish();
        let idx = er_table::KeyIndex::build(&rel, &[0, 1]);
        for r in 0..rel.num_rows() {
            let c0 = rel.code(r, 0);
            let c1 = rel.code(r, 1);
            if c0 == er_table::NULL_CODE || c1 == er_table::NULL_CODE {
                continue;
            }
            let hits = idx.get(&[c0, c1]);
            prop_assert!(hits.contains(&r), "row {} missing from its own key", r);
            for &h in hits {
                prop_assert_eq!(rel.code(h, 0), c0);
                prop_assert_eq!(rel.code(h, 1), c1);
            }
        }
    }

    /// PLI classes partition exactly the rows sharing a value, and
    /// intersection equals building on the pair.
    #[test]
    fn pli_intersection_consistent(rows in arb_rows(2)) {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![Attribute::categorical("A"), Attribute::categorical("B")],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        for row in &rows {
            b.push_row(row.clone()).unwrap();
        }
        let rel = b.finish();
        let pa = er_table::Pli::build(&rel, 0);
        let pb = er_table::Pli::build(&rel, 1);
        let pab = pa.intersect(&pb);
        // Every class of the intersection agrees on both columns.
        for class in pab.classes() {
            let first = class[0];
            for &r in class {
                prop_assert_eq!(rel.code(r, 0), rel.code(first, 0));
                prop_assert_eq!(rel.code(r, 1), rel.code(first, 1));
            }
        }
        // error(π_AB) ≤ min(error(π_A), error(π_B)).
        prop_assert!(pab.error() <= pa.error().min(pb.error()));
    }
}
