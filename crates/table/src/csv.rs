//! Dependency-free CSV reader/writer.
//!
//! Supports RFC-4180-style quoting (embedded commas, quotes, and newlines),
//! a mandatory header row, and two loading modes:
//!
//! * [`read_str`] — every attribute is categorical; empty fields become NULL.
//! * [`read_str_with_schema`] — the caller supplies a [`Schema`]; fields of
//!   continuous attributes are parsed as integers/floats.
//!
//! The paper's real datasets (Adult, Covid-19, Nursery, Location) can be
//! loaded through this module when their CSVs are on disk; the experiment
//! harness falls back to the synthetic generators otherwise.

use crate::error::{Error, Result};
use crate::pool::Pool;
use crate::relation::{Relation, RelationBuilder};
use crate::schema::{Attribute, Schema};
use crate::value::Value;
use std::path::Path;
use std::sync::Arc;

/// The terminator of one record found by [`RecordScanner::find`].
///
/// `buf[..end]` is the record body (terminator excluded); `buf[..next]` is
/// the consumed prefix including the terminator (`\n`, `\r\n`, or a lone
/// `\r`). `end == next` only for a final record with no trailing newline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// Byte offset one past the record body.
    pub end: usize,
    /// Byte offset one past the record terminator.
    pub next: usize,
}

/// Incremental, quote-aware record-boundary scanner.
///
/// Both the in-memory [`read_str`] path and er-ingest's chunked reader split
/// input into records with this scanner, so the two paths agree byte-for-byte
/// on where records end — the chunked-equals-whole-file identity holds by
/// construction, not by parallel maintenance of two state machines.
///
/// The scanner only finds boundaries; it does not validate quoting. It
/// toggles quote state on every `"` byte, which classifies escaped quotes
/// (`""`) correctly for boundary purposes: the pair toggles twice and no
/// line break can intervene. Field-level validation (stray quotes inside
/// unquoted fields, escape pairs) happens in [`split_record`].
///
/// Call [`find`](Self::find) on a growing buffer: on `None`, append more
/// bytes to the *same* buffer and call again — scanning resumes where it
/// stopped rather than rescanning. On `Some(span)`, drain `buf[..span.next]`
/// and start the next record at offset 0.
#[derive(Debug, Default, Clone)]
pub struct RecordScanner {
    in_quotes: bool,
    scanned: usize,
}

impl RecordScanner {
    /// A scanner at the start of a record, outside any quoted field.
    pub fn new() -> Self {
        Self::default()
    }

    /// Find the terminator of the first record in `buf`.
    ///
    /// `eof` means no further bytes will ever arrive: a trailing record
    /// without a newline is then returned, and a trailing `\r` is a complete
    /// terminator (with more data pending it could be half of a `\r\n`, so
    /// the scanner waits). Returns `None` when the buffer holds no complete
    /// record — either more data is needed, or (`eof` with
    /// [`in_quotes`](Self::in_quotes) true) a quoted field never closed.
    pub fn find(&mut self, buf: &[u8], eof: bool) -> Option<RecordSpan> {
        let mut i = self.scanned;
        while i < buf.len() {
            let b = buf[i];
            if self.in_quotes {
                if b == b'"' {
                    self.in_quotes = false;
                }
            } else {
                match b {
                    b'"' => self.in_quotes = true,
                    b'\n' => {
                        self.scanned = 0;
                        return Some(RecordSpan {
                            end: i,
                            next: i + 1,
                        });
                    }
                    b'\r' => {
                        if i + 1 < buf.len() {
                            let next = i + 1 + usize::from(buf[i + 1] == b'\n');
                            self.scanned = 0;
                            return Some(RecordSpan { end: i, next });
                        }
                        if eof {
                            self.scanned = 0;
                            return Some(RecordSpan {
                                end: i,
                                next: i + 1,
                            });
                        }
                        // The \r may be half of a CRLF split across reads:
                        // resume here once the next byte is visible.
                        self.scanned = i;
                        return None;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if eof && !buf.is_empty() && !self.in_quotes {
            self.scanned = 0;
            return Some(RecordSpan {
                end: buf.len(),
                next: buf.len(),
            });
        }
        self.scanned = buf.len();
        None
    }

    /// True when the last scanned byte sits inside an open quoted field.
    pub fn in_quotes(&self) -> bool {
        self.in_quotes
    }
}

/// Split one record body (terminator already stripped by [`RecordScanner`])
/// into raw string fields, validating RFC-4180 quoting. `base_line` is the
/// 1-based line number where the record starts, used in error reports; line
/// breaks inside quoted fields advance it.
pub fn split_record(record: &str, base_line: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = base_line;
    let mut chars = record.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(Error::Csv {
                            line,
                            message: "quote inside unquoted field".to_string(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => fields.push(std::mem::take(&mut field)),
                '\r' | '\n' => {
                    // Unreachable from scanner-delimited bodies (a line break
                    // outside quotes terminates the record), but a caller
                    // passing raw text deserves a typed error, not data loss.
                    return Err(Error::Csv {
                        line,
                        message: "bare line break inside record".to_string(),
                    });
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line,
            message: "unterminated quoted field".to_string(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Parse CSV text into rows of raw string fields. The first record is the
/// header. Empty input yields an error. Records end on `\n`, `\r\n`, or a
/// lone `\r` (classic-Mac exports) — previously lone `\r` was swallowed,
/// silently merging every record into one.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let bytes = text.as_bytes();
    let mut records = Vec::new();
    let mut scanner = RecordScanner::new();
    let mut pos = 0usize;
    let mut line = 1usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let Some(span) = scanner.find(rest, true) else {
            // Only reachable when a quoted field never closes before EOF.
            let line = line + rest.iter().filter(|&&b| b == b'\n').count();
            return Err(Error::Csv {
                line,
                message: "unterminated quoted field".to_string(),
            });
        };
        records.push(split_record(&text[pos..pos + span.end], line)?);
        line += rest[..span.next].iter().filter(|&&b| b == b'\n').count();
        pos += span.next;
    }
    if records.is_empty() {
        return Err(Error::Csv {
            line: 1,
            message: "empty csv input".to_string(),
        });
    }
    Ok(records)
}

/// Validate an inferred header before handing it to [`Schema::new`] (which
/// treats duplicates as caller bugs and panics): untrusted CSV input must
/// surface schema-inference failures as typed errors instead.
pub fn check_header(header: &[String]) -> Result<()> {
    for (i, h) in header.iter().enumerate() {
        let name = h.trim();
        if name.is_empty() {
            return Err(Error::Csv {
                line: 1,
                message: format!("header column {} has an empty name", i + 1),
            });
        }
        if header[..i].iter().any(|prev| prev.trim() == name) {
            return Err(Error::Csv {
                line: 1,
                message: format!("duplicate header column {name:?}"),
            });
        }
    }
    Ok(())
}

/// Read CSV text with an inferred all-categorical schema named `name`.
/// Empty fields become NULL. Malformed headers (duplicate or empty column
/// names) are reported as [`Error::Csv`] rather than panicking.
pub fn read_str(name: &str, text: &str, pool: Arc<Pool>) -> Result<Relation> {
    let records = parse_records(text)?;
    let header = &records[0];
    check_header(header)?;
    let schema = Arc::new(Schema::new(
        name,
        header
            .iter()
            .map(|h| Attribute::categorical(h.trim()))
            .collect(),
    ));
    build_rows(schema, &records[1..], pool)
}

/// Read CSV text against an explicit schema. The header must match the
/// schema's attribute names in order. Continuous attributes are parsed
/// numerically (integer first, then float).
pub fn read_str_with_schema(text: &str, schema: Arc<Schema>, pool: Arc<Pool>) -> Result<Relation> {
    let records = parse_records(text)?;
    let header = &records[0];
    if header.len() != schema.arity() {
        return Err(Error::Csv {
            line: 1,
            message: format!(
                "header has {} columns, schema expects {}",
                header.len(),
                schema.arity()
            ),
        });
    }
    for (i, h) in header.iter().enumerate() {
        if h.trim() != schema.attr(i).name {
            return Err(Error::Csv {
                line: 1,
                message: format!(
                    "header column {} is {:?}, schema expects {:?}",
                    i,
                    h.trim(),
                    schema.attr(i).name
                ),
            });
        }
    }
    build_rows(schema, &records[1..], pool)
}

fn build_rows(schema: Arc<Schema>, records: &[Vec<String>], pool: Arc<Pool>) -> Result<Relation> {
    let mut b = RelationBuilder::new(Arc::clone(&schema), pool);
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != schema.arity() {
            return Err(Error::Csv {
                line: i + 2,
                message: format!("row has {} fields, expected {}", rec.len(), schema.arity()),
            });
        }
        let mut row = Vec::with_capacity(rec.len());
        for (attr, raw) in rec.iter().enumerate() {
            row.push(parse_field(raw, schema.attr(attr).is_continuous()));
        }
        b.push_row(row).map_err(|e| Error::Csv {
            line: i + 2,
            message: e.to_string(),
        })?;
    }
    Ok(b.finish())
}

/// Parse one raw field into a [`Value`]: trimmed, empty means NULL, and
/// continuous attributes try integer then float (unparsable numerics become
/// NULL — real-world CSVs are dirty, that is the point). Shared with
/// er-ingest so the chunked path normalizes cells identically.
pub fn parse_field(raw: &str, continuous: bool) -> Value {
    let raw = raw.trim();
    if raw.is_empty() {
        return Value::Null;
    }
    if continuous {
        if let Ok(v) = raw.parse::<i64>() {
            return Value::Int(v);
        }
        if let Ok(v) = raw.parse::<f64>() {
            return Value::Float(v);
        }
        // Unparsable numeric cell: treat as missing rather than aborting the
        // whole load — real-world CSVs are dirty, that is the point.
        return Value::Null;
    }
    Value::str(raw)
}

/// Read a CSV file with an inferred all-categorical schema. Bytes that are
/// not valid UTF-8 are decoded lossily (invalid sequences become U+FFFD)
/// instead of failing the load — real-world exports mix encodings, and a
/// replacement character in one cell beats rejecting the whole file.
pub fn read_path(path: impl AsRef<Path>, pool: Arc<Pool>) -> Result<Relation> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let text = String::from_utf8_lossy(&bytes);
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation");
    read_str(name, &text, pool)
}

/// Serialize a relation back to CSV text (header + rows, NULL as empty).
pub fn write_str(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    write_record(&mut out, header.iter().copied());
    for row in 0..rel.num_rows() {
        let values: Vec<String> = (0..rel.num_attrs())
            .map(|a| rel.value(row, a).render().into_owned())
            .collect();
        write_record(&mut out, values.iter().map(String::as_str));
    }
    out
}

/// Write a relation to a CSV file.
pub fn write_path(rel: &Relation, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, write_str(rel))?;
    Ok(())
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn simple_read() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "City,ZIP\nHZ,31200\nBJ,10021\n", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.schema().attr(0).name, "City");
        assert_eq!(r.value(1, 1), Value::str("10021"));
    }

    #[test]
    fn empty_fields_are_null() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\nx,\n,y\n", pool).unwrap();
        assert!(r.is_null(0, 1));
        assert!(r.is_null(1, 0));
    }

    #[test]
    fn quoted_fields() {
        let pool = Arc::new(Pool::new());
        let r = read_str(
            "t",
            "A,B\n\"a,b\",\"he said \"\"hi\"\"\"\n\"multi\nline\",z\n",
            pool,
        )
        .unwrap();
        assert_eq!(r.value(0, 0), Value::str("a,b"));
        assert_eq!(r.value(0, 1), Value::str("he said \"hi\""));
        assert_eq!(r.value(1, 0), Value::str("multi\nline"));
    }

    #[test]
    fn crlf_line_endings() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\r\nx,y\r\n", pool).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 1), Value::str("y"));
    }

    #[test]
    fn cr_only_line_endings_split_records() {
        // Classic-Mac / legacy-export line endings. The old reader swallowed
        // lone \r, silently merging every record into one giant row — a
        // silent arity change. Each \r must terminate a record.
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\rx,y\rz,w\r", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.value(0, 0), Value::str("x"));
        assert_eq!(r.value(1, 1), Value::str("w"));
    }

    #[test]
    fn cr_only_without_trailing_terminator() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\rx,y\rz,w", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.value(1, 0), Value::str("z"));
    }

    #[test]
    fn mixed_line_endings() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\r\nx,y\rz,w\n", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.value(0, 1), Value::str("y"));
        assert_eq!(r.value(1, 0), Value::str("z"));
    }

    #[test]
    fn quoted_cr_stays_literal_and_round_trips() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\n\"has\rcr\",y\n", Arc::clone(&pool)).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Value::str("has\rcr"));
        // The writer must quote \r, or the round trip re-splits the record.
        let out = write_str(&r);
        let r2 = read_str("t", &out, pool).unwrap();
        assert_eq!(r2.num_rows(), 1);
        assert_eq!(r2.value(0, 0), Value::str("has\rcr"));
    }

    #[test]
    fn scanner_resumes_across_partial_reads() {
        // A CRLF split across two reads must not yield a phantom empty
        // record, and a quoted newline must not end the record.
        let mut scanner = RecordScanner::new();
        let mut buf: Vec<u8> = b"a,\"x\ny\"\r".to_vec();
        assert_eq!(scanner.find(&buf, false), None); // trailing \r: wait
        buf.extend_from_slice(b"\nb,c\n");
        let span = scanner.find(&buf, false).unwrap();
        assert_eq!(&buf[..span.end], b"a,\"x\ny\"");
        assert_eq!(span.next, span.end + 2); // consumed both \r and \n
        buf.drain(..span.next);
        let span = scanner.find(&buf, false).unwrap();
        assert_eq!(&buf[..span.end], b"b,c");
    }

    #[test]
    fn scanner_flushes_final_record_at_eof() {
        let mut scanner = RecordScanner::new();
        let buf = b"tail,rec";
        assert_eq!(scanner.find(buf, false), None);
        let span = scanner.find(buf, true).unwrap();
        assert_eq!((span.end, span.next), (8, 8));
        assert_eq!(scanner.find(&[], true), None); // nothing after the tail
    }

    #[test]
    fn scanner_reports_open_quote_at_eof() {
        let mut scanner = RecordScanner::new();
        assert_eq!(scanner.find(b"\"oops", true), None);
        assert!(scanner.in_quotes());
    }

    #[test]
    fn missing_trailing_newline() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A\nx\ny", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
    }

    #[test]
    fn ragged_row_rejected() {
        let pool = Arc::new(Pool::new());
        let err = read_str("t", "A,B\nx\n", pool).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 2, .. }));
    }

    #[test]
    fn schema_read_parses_numbers() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![Attribute::categorical("Name"), Attribute::continuous("Age")],
        ));
        let r = read_str_with_schema(
            "Name,Age\nkevin,30\nrobin,29.5\nnull-age,\nbad,xx\n",
            schema,
            pool,
        )
        .unwrap();
        assert_eq!(r.value(0, 1), Value::int(30));
        assert_eq!(r.value(1, 1), Value::float(29.5));
        assert!(r.is_null(2, 1));
        assert!(r.is_null(3, 1)); // unparsable numeric → NULL
        assert_eq!(r.schema().attr(1).dtype, DataType::Continuous);
    }

    #[test]
    fn schema_read_rejects_wrong_header() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        assert!(read_str_with_schema("B\nx\n", schema, pool).is_err());
    }

    #[test]
    fn round_trip() {
        let pool = Arc::new(Pool::new());
        let text = "A,B\nx,\"a,b\"\n,plain\n";
        let r = read_str("t", text, Arc::clone(&pool)).unwrap();
        let out = write_str(&r);
        let r2 = read_str("t", &out, pool).unwrap();
        assert_eq!(r2.num_rows(), r.num_rows());
        for row in 0..r.num_rows() {
            for a in 0..r.num_attrs() {
                assert_eq!(r.value(row, a), r2.value(row, a));
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        let pool = Arc::new(Pool::new());
        assert!(read_str("t", "", pool).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let pool = Arc::new(Pool::new());
        assert!(read_str("t", "A\n\"oops\n", pool).is_err());
    }

    #[test]
    fn duplicate_header_is_a_typed_error() {
        let pool = Arc::new(Pool::new());
        let err = read_str("t", "City,ZIP,City\nHZ,31200,HZ\n", pool).unwrap_err();
        match err {
            Error::Csv { line: 1, message } => assert!(message.contains("duplicate")),
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn empty_header_name_is_a_typed_error() {
        let pool = Arc::new(Pool::new());
        let err = read_str("t", "City,,ZIP\nHZ,x,31200\n", pool).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 1, .. }));
    }

    #[test]
    fn non_utf8_file_loads_lossily() {
        let dir = std::env::temp_dir().join(format!("er_csv_lossy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latin1.csv");
        // "City\nMünchen\n" in Latin-1: 0xFC is not valid UTF-8.
        std::fs::write(&path, b"City\nM\xFCnchen\n").unwrap();
        let pool = Arc::new(Pool::new());
        let r = read_path(&path, pool).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Value::str("M\u{FFFD}nchen"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
