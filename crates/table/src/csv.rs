//! Dependency-free CSV reader/writer.
//!
//! Supports RFC-4180-style quoting (embedded commas, quotes, and newlines),
//! a mandatory header row, and two loading modes:
//!
//! * [`read_str`] — every attribute is categorical; empty fields become NULL.
//! * [`read_str_with_schema`] — the caller supplies a [`Schema`]; fields of
//!   continuous attributes are parsed as integers/floats.
//!
//! The paper's real datasets (Adult, Covid-19, Nursery, Location) can be
//! loaded through this module when their CSVs are on disk; the experiment
//! harness falls back to the synthetic generators otherwise.

use crate::error::{Error, Result};
use crate::pool::Pool;
use crate::relation::{Relation, RelationBuilder};
use crate::schema::{Attribute, Schema};
use crate::value::Value;
use std::path::Path;
use std::sync::Arc;

/// Parse CSV text into rows of raw string fields. The first record is the
/// header. Empty input yields an error.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(Error::Csv {
                            line,
                            message: "quote inside unquoted field".to_string(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; the following '\n' ends the record.
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line,
            message: "unterminated quoted field".to_string(),
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any || records.is_empty() {
        return Err(Error::Csv {
            line: 1,
            message: "empty csv input".to_string(),
        });
    }
    Ok(records)
}

/// Validate an inferred header before handing it to [`Schema::new`] (which
/// treats duplicates as caller bugs and panics): untrusted CSV input must
/// surface schema-inference failures as typed errors instead.
fn check_header(header: &[String]) -> Result<()> {
    for (i, h) in header.iter().enumerate() {
        let name = h.trim();
        if name.is_empty() {
            return Err(Error::Csv {
                line: 1,
                message: format!("header column {} has an empty name", i + 1),
            });
        }
        if header[..i].iter().any(|prev| prev.trim() == name) {
            return Err(Error::Csv {
                line: 1,
                message: format!("duplicate header column {name:?}"),
            });
        }
    }
    Ok(())
}

/// Read CSV text with an inferred all-categorical schema named `name`.
/// Empty fields become NULL. Malformed headers (duplicate or empty column
/// names) are reported as [`Error::Csv`] rather than panicking.
pub fn read_str(name: &str, text: &str, pool: Arc<Pool>) -> Result<Relation> {
    let records = parse_records(text)?;
    let header = &records[0];
    check_header(header)?;
    let schema = Arc::new(Schema::new(
        name,
        header
            .iter()
            .map(|h| Attribute::categorical(h.trim()))
            .collect(),
    ));
    build_rows(schema, &records[1..], pool)
}

/// Read CSV text against an explicit schema. The header must match the
/// schema's attribute names in order. Continuous attributes are parsed
/// numerically (integer first, then float).
pub fn read_str_with_schema(text: &str, schema: Arc<Schema>, pool: Arc<Pool>) -> Result<Relation> {
    let records = parse_records(text)?;
    let header = &records[0];
    if header.len() != schema.arity() {
        return Err(Error::Csv {
            line: 1,
            message: format!(
                "header has {} columns, schema expects {}",
                header.len(),
                schema.arity()
            ),
        });
    }
    for (i, h) in header.iter().enumerate() {
        if h.trim() != schema.attr(i).name {
            return Err(Error::Csv {
                line: 1,
                message: format!(
                    "header column {} is {:?}, schema expects {:?}",
                    i,
                    h.trim(),
                    schema.attr(i).name
                ),
            });
        }
    }
    build_rows(schema, &records[1..], pool)
}

fn build_rows(schema: Arc<Schema>, records: &[Vec<String>], pool: Arc<Pool>) -> Result<Relation> {
    let mut b = RelationBuilder::new(Arc::clone(&schema), pool);
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != schema.arity() {
            return Err(Error::Csv {
                line: i + 2,
                message: format!("row has {} fields, expected {}", rec.len(), schema.arity()),
            });
        }
        let mut row = Vec::with_capacity(rec.len());
        for (attr, raw) in rec.iter().enumerate() {
            row.push(parse_field(raw, schema.attr(attr).is_continuous()));
        }
        b.push_row(row).map_err(|e| Error::Csv {
            line: i + 2,
            message: e.to_string(),
        })?;
    }
    Ok(b.finish())
}

fn parse_field(raw: &str, continuous: bool) -> Value {
    let raw = raw.trim();
    if raw.is_empty() {
        return Value::Null;
    }
    if continuous {
        if let Ok(v) = raw.parse::<i64>() {
            return Value::Int(v);
        }
        if let Ok(v) = raw.parse::<f64>() {
            return Value::Float(v);
        }
        // Unparsable numeric cell: treat as missing rather than aborting the
        // whole load — real-world CSVs are dirty, that is the point.
        return Value::Null;
    }
    Value::str(raw)
}

/// Read a CSV file with an inferred all-categorical schema. Bytes that are
/// not valid UTF-8 are decoded lossily (invalid sequences become U+FFFD)
/// instead of failing the load — real-world exports mix encodings, and a
/// replacement character in one cell beats rejecting the whole file.
pub fn read_path(path: impl AsRef<Path>, pool: Arc<Pool>) -> Result<Relation> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let text = String::from_utf8_lossy(&bytes);
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation");
    read_str(name, &text, pool)
}

/// Serialize a relation back to CSV text (header + rows, NULL as empty).
pub fn write_str(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    write_record(&mut out, header.iter().copied());
    for row in 0..rel.num_rows() {
        let values: Vec<String> = (0..rel.num_attrs())
            .map(|a| rel.value(row, a).render().into_owned())
            .collect();
        write_record(&mut out, values.iter().map(String::as_str));
    }
    out
}

/// Write a relation to a CSV file.
pub fn write_path(rel: &Relation, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, write_str(rel))?;
    Ok(())
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn simple_read() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "City,ZIP\nHZ,31200\nBJ,10021\n", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.schema().attr(0).name, "City");
        assert_eq!(r.value(1, 1), Value::str("10021"));
    }

    #[test]
    fn empty_fields_are_null() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\nx,\n,y\n", pool).unwrap();
        assert!(r.is_null(0, 1));
        assert!(r.is_null(1, 0));
    }

    #[test]
    fn quoted_fields() {
        let pool = Arc::new(Pool::new());
        let r = read_str(
            "t",
            "A,B\n\"a,b\",\"he said \"\"hi\"\"\"\n\"multi\nline\",z\n",
            pool,
        )
        .unwrap();
        assert_eq!(r.value(0, 0), Value::str("a,b"));
        assert_eq!(r.value(0, 1), Value::str("he said \"hi\""));
        assert_eq!(r.value(1, 0), Value::str("multi\nline"));
    }

    #[test]
    fn crlf_line_endings() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A,B\r\nx,y\r\n", pool).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 1), Value::str("y"));
    }

    #[test]
    fn missing_trailing_newline() {
        let pool = Arc::new(Pool::new());
        let r = read_str("t", "A\nx\ny", pool).unwrap();
        assert_eq!(r.num_rows(), 2);
    }

    #[test]
    fn ragged_row_rejected() {
        let pool = Arc::new(Pool::new());
        let err = read_str("t", "A,B\nx\n", pool).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 2, .. }));
    }

    #[test]
    fn schema_read_parses_numbers() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![Attribute::categorical("Name"), Attribute::continuous("Age")],
        ));
        let r = read_str_with_schema(
            "Name,Age\nkevin,30\nrobin,29.5\nnull-age,\nbad,xx\n",
            schema,
            pool,
        )
        .unwrap();
        assert_eq!(r.value(0, 1), Value::int(30));
        assert_eq!(r.value(1, 1), Value::float(29.5));
        assert!(r.is_null(2, 1));
        assert!(r.is_null(3, 1)); // unparsable numeric → NULL
        assert_eq!(r.schema().attr(1).dtype, DataType::Continuous);
    }

    #[test]
    fn schema_read_rejects_wrong_header() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        assert!(read_str_with_schema("B\nx\n", schema, pool).is_err());
    }

    #[test]
    fn round_trip() {
        let pool = Arc::new(Pool::new());
        let text = "A,B\nx,\"a,b\"\n,plain\n";
        let r = read_str("t", text, Arc::clone(&pool)).unwrap();
        let out = write_str(&r);
        let r2 = read_str("t", &out, pool).unwrap();
        assert_eq!(r2.num_rows(), r.num_rows());
        for row in 0..r.num_rows() {
            for a in 0..r.num_attrs() {
                assert_eq!(r.value(row, a), r2.value(row, a));
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        let pool = Arc::new(Pool::new());
        assert!(read_str("t", "", pool).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let pool = Arc::new(Pool::new());
        assert!(read_str("t", "A\n\"oops\n", pool).is_err());
    }

    #[test]
    fn duplicate_header_is_a_typed_error() {
        let pool = Arc::new(Pool::new());
        let err = read_str("t", "City,ZIP,City\nHZ,31200,HZ\n", pool).unwrap_err();
        match err {
            Error::Csv { line: 1, message } => assert!(message.contains("duplicate")),
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn empty_header_name_is_a_typed_error() {
        let pool = Arc::new(Pool::new());
        let err = read_str("t", "City,,ZIP\nHZ,x,31200\n", pool).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 1, .. }));
    }

    #[test]
    fn non_utf8_file_loads_lossily() {
        let dir = std::env::temp_dir().join(format!("er_csv_lossy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latin1.csv");
        // "City\nMünchen\n" in Latin-1: 0xFC is not valid UTF-8.
        std::fs::write(&path, b"City\nM\xFCnchen\n").unwrap();
        let pool = Arc::new(Pool::new());
        let r = read_path(&path, pool).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Value::str("M\u{FFFD}nchen"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
