//! Dictionary-encoded columnar relations.

use crate::error::{Error, Result};
use crate::pool::{Code, Pool, NULL_CODE};
use crate::schema::{AttrId, Schema};
use crate::value::Value;
use std::sync::Arc;

/// Index of a row within a relation.
pub type RowId = usize;

/// A columnar, dictionary-encoded relation.
///
/// Cells are stored as [`Code`]s in per-attribute column vectors; the codes
/// are allocated by a [`Pool`] shared across relations, so cross-relation
/// value equality is code equality. The pool and schema are reference-counted
/// and shared by derived relations ([`Relation::gather`]).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    pool: Arc<Pool>,
    columns: Vec<Vec<Code>>,
    num_rows: usize,
    /// Monotonically increasing growth counter: bumped once per appended row
    /// ([`Relation::push_row`], [`Relation::append`],
    /// [`RelationBuilder::push_codes`]). Indexes record the generation they
    /// were built or delta-updated at, so a stale index — one probed after
    /// the relation grew underneath it — is detectable (and, under the
    /// `debug-invariants` feature, a panic). In-place cell overwrites
    /// ([`Relation::set`]) do not bump it: the counter tracks *growth*, the
    /// master-data append path of §V-D3, not repairs.
    generation: u64,
}

impl Relation {
    /// An empty relation over `schema` using `pool` for encoding.
    pub fn empty(schema: Arc<Schema>, pool: Arc<Pool>) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Relation {
            schema,
            pool,
            columns,
            num_rows: 0,
            generation: 0,
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The value pool used for encoding.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.schema.arity()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The growth generation: how many rows have been appended since the
    /// relation was created. Monotonically increasing; never reset.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Dictionary code of the cell at (`row`, `attr`).
    ///
    /// # Panics
    /// Panics if `row` or `attr` is out of bounds.
    #[inline]
    pub fn code(&self, row: RowId, attr: AttrId) -> Code {
        self.columns[attr][row]
    }

    /// Decoded value of the cell at (`row`, `attr`).
    pub fn value(&self, row: RowId, attr: AttrId) -> Value {
        self.pool.value(self.code(row, attr))
    }

    /// Whether the cell at (`row`, `attr`) is NULL.
    #[inline]
    pub fn is_null(&self, row: RowId, attr: AttrId) -> bool {
        self.code(row, attr) == NULL_CODE
    }

    /// The raw code column for `attr`. Hot-path accessor for miners.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &[Code] {
        &self.columns[attr]
    }

    /// All decoded values of one row.
    pub fn row_values(&self, row: RowId) -> Vec<Value> {
        (0..self.num_attrs()).map(|a| self.value(row, a)).collect()
    }

    /// Overwrite the cell at (`row`, `attr`) with `value` (interning it).
    /// Used by the repair engine and the error injector.
    pub fn set(&mut self, row: RowId, attr: AttrId, value: Value) -> Result<()> {
        if row >= self.num_rows {
            return Err(Error::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        self.check_type(attr, &value)?;
        let code = self.pool.intern(value);
        self.columns[attr][row] = code;
        Ok(())
    }

    /// Overwrite the cell at (`row`, `attr`) with an already-encoded code.
    ///
    /// # Panics
    /// Panics if `row` or `attr` is out of bounds.
    pub fn set_code(&mut self, row: RowId, attr: AttrId, code: Code) {
        self.columns[attr][row] = code;
    }

    /// Append all rows of `other` (same schema object, same pool) — the
    /// incremental-enrichment path of §V-D3.
    ///
    /// # Panics
    /// Panics if the schemas or pools differ (the codes would be
    /// meaningless otherwise).
    pub fn append(&mut self, other: &Relation) {
        assert!(
            Arc::ptr_eq(&self.schema, &other.schema),
            "append requires the same schema"
        );
        assert!(
            Arc::ptr_eq(&self.pool, &other.pool),
            "append requires the same pool"
        );
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from_slice(src);
        }
        self.num_rows += other.num_rows;
        self.generation += other.num_rows as u64;
    }

    /// Project onto a subset of attributes, producing a relation over a new
    /// schema (attribute order follows `attrs`). Shares the pool.
    ///
    /// # Panics
    /// Panics if any attribute id is out of range.
    pub fn project(&self, name: &str, attrs: &[AttrId]) -> Relation {
        let schema = Arc::new(Schema::new(
            name,
            attrs.iter().map(|&a| self.schema.attr(a).clone()).collect(),
        ));
        let columns = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Relation {
            schema,
            pool: Arc::clone(&self.pool),
            columns,
            num_rows: self.num_rows,
            generation: 0,
        }
    }

    /// Build a new relation from a subset (or re-ordering, or multiset) of
    /// this relation's rows. Shares the schema and pool; copies the codes.
    pub fn gather(&self, rows: &[RowId]) -> Relation {
        let columns = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r]).collect())
            .collect();
        Relation {
            schema: Arc::clone(&self.schema),
            pool: Arc::clone(&self.pool),
            columns,
            num_rows: rows.len(),
            generation: 0,
        }
    }

    /// Sorted distinct non-NULL codes appearing in `attr`'s column — the
    /// active domain `dom(A)` of the attribute in this relation.
    pub fn distinct_codes(&self, attr: AttrId) -> Vec<Code> {
        let mut codes: Vec<Code> = self.columns[attr]
            .iter()
            .copied()
            .filter(|&c| c != NULL_CODE)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Size of the active domain of `attr` (distinct non-NULL values).
    pub fn domain_size(&self, attr: AttrId) -> usize {
        self.distinct_codes(attr).len()
    }

    /// `(min, max)` over the numeric values of `attr`, ignoring NULLs and
    /// non-numeric cells. `None` when the column has no numeric value.
    pub fn numeric_bounds(&self, attr: AttrId) -> Option<(f64, f64)> {
        let mut bounds: Option<(f64, f64)> = None;
        for code in self.distinct_codes(attr) {
            if let Some(v) = self.pool.value(code).as_f64() {
                bounds = Some(match bounds {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        bounds
    }

    /// Number of NULL cells in `attr`'s column.
    pub fn null_count(&self, attr: AttrId) -> usize {
        self.columns[attr]
            .iter()
            .filter(|&&c| c == NULL_CODE)
            .count()
    }

    fn check_type(&self, attr: AttrId, value: &Value) -> Result<()> {
        let a = self.schema.attr(attr);
        if a.is_continuous() && !value.is_null() && value.as_f64().is_none() {
            return Err(Error::TypeMismatch {
                attr: a.name.clone(),
                expected: "numeric or NULL",
                got: format!("{value:?}"),
            });
        }
        Ok(())
    }

    /// Validate one row against the schema without committing it: arity and
    /// continuous-attribute typing, exactly the checks [`Relation::push_row`]
    /// performs before interning anything. Lets callers validate a whole
    /// batch up front so a mid-batch failure cannot leave a partial append.
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (attr, value) in row.iter().enumerate() {
            self.check_type(attr, value)?;
        }
        Ok(())
    }

    /// Append one row of values to the relation, interning them through the
    /// shared pool — the serve-mode path for folding externally supplied
    /// rows into an existing dictionary-encoded relation without a rebuild.
    /// Validates arity and continuous-attribute typing like
    /// [`RelationBuilder::push_row`]; a failed validation leaves the
    /// relation (rows, columns, generation) untouched.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.push_row_internal(row)
    }

    /// Append one row from a borrowed slice, cloning each cell only at the
    /// interning boundary. The serve front end iterates a reusable batch
    /// buffer as `&[Value]` windows; this avoids materializing a `Vec` per
    /// row on the hot path. Same validation and atomicity as
    /// [`push_row`](Self::push_row).
    pub fn push_row_ref(&mut self, row: &[Value]) -> Result<()> {
        self.validate_row(row)?;
        for (attr, value) in row.iter().enumerate() {
            let code = self.pool.intern(value.clone());
            self.columns[attr].push(code);
        }
        self.num_rows += 1;
        self.generation += 1;
        Ok(())
    }

    /// Append a batch of rows atomically: every row is validated before any
    /// row is committed, so an error (reported for the first offending row)
    /// leaves the relation unmodified. Returns the [`RowId`] of the first
    /// appended row — the `from_row` the index delta-update paths
    /// ([`crate::KeyIndex::apply_append`] and friends) take.
    pub fn push_rows(&mut self, rows: &[Vec<Value>]) -> Result<RowId> {
        for row in rows {
            self.validate_row(row)?;
        }
        let from_row = self.num_rows;
        for row in rows {
            for (attr, value) in row.iter().enumerate() {
                let code = self.pool.intern(value.clone());
                self.columns[attr].push(code);
            }
            self.num_rows += 1;
            self.generation += 1;
        }
        Ok(from_row)
    }

    fn push_row_internal(&mut self, row: Vec<Value>) -> Result<()> {
        self.validate_row(&row)?;
        for (attr, value) in row.into_iter().enumerate() {
            let code = self.pool.intern(value);
            self.columns[attr].push(code);
        }
        self.num_rows += 1;
        self.generation += 1;
        Ok(())
    }
}

/// Incremental construction of a [`Relation`].
///
/// Rows are validated (arity, continuous-attribute typing) as they are pushed
/// so a malformed source fails at the offending row, not at query time.
#[derive(Debug)]
pub struct RelationBuilder {
    rel: Relation,
}

impl RelationBuilder {
    /// Start building a relation over `schema`, encoding through `pool`.
    pub fn new(schema: Arc<Schema>, pool: Arc<Pool>) -> Self {
        RelationBuilder {
            rel: Relation::empty(schema, pool),
        }
    }

    /// Append one row of values.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.rel.push_row_internal(row)
    }

    /// Append one row of pre-encoded codes (no type checking: the codes are
    /// assumed to come from the same pool).
    ///
    /// # Panics
    /// Panics if the arity differs from the schema's.
    pub fn push_codes(&mut self, row: &[Code]) {
        assert_eq!(
            row.len(),
            self.rel.schema.arity(),
            "code row arity mismatch"
        );
        for (attr, &code) in row.iter().enumerate() {
            self.rel.columns[attr].push(code);
        }
        self.rel.num_rows += 1;
        self.rel.generation += 1;
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rel.num_rows
    }

    /// Whether no rows have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rel.num_rows == 0
    }

    /// Finish and return the relation.
    pub fn finish(self) -> Relation {
        self.rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn fixture() -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("ZIP"),
                Attribute::continuous("Age"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        b.push_row(vec![Value::str("HZ"), Value::str("31200"), Value::int(30)])
            .unwrap();
        b.push_row(vec![Value::str("BJ"), Value::str("10021"), Value::int(41)])
            .unwrap();
        b.push_row(vec![Value::str("HZ"), Value::Null, Value::float(29.5)])
            .unwrap();
        b.finish()
    }

    #[test]
    fn basic_shape() {
        let r = fixture();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.num_attrs(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn cell_access_round_trips() {
        let r = fixture();
        assert_eq!(r.value(0, 0), Value::str("HZ"));
        assert_eq!(r.value(1, 1), Value::str("10021"));
        assert_eq!(r.value(2, 2), Value::float(29.5));
        assert!(r.is_null(2, 1));
        assert_eq!(
            r.row_values(1),
            vec![Value::str("BJ"), Value::str("10021"), Value::int(41)]
        );
    }

    #[test]
    fn shared_pool_gives_equal_codes_for_equal_values() {
        let r = fixture();
        assert_eq!(r.code(0, 0), r.code(2, 0)); // both "HZ"
        assert_ne!(r.code(0, 0), r.code(1, 0));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let mut b = RelationBuilder::new(schema, pool);
        let err = b.push_row(vec![Value::int(1), Value::int(2)]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn continuous_type_enforced() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::continuous("Age")]));
        let mut b = RelationBuilder::new(schema, pool);
        assert!(b.push_row(vec![Value::str("old")]).is_err());
        assert!(b.push_row(vec![Value::Null]).is_ok());
        assert!(b.push_row(vec![Value::int(3)]).is_ok());
    }

    #[test]
    fn set_updates_cell() {
        let mut r = fixture();
        r.set(2, 1, Value::str("31200")).unwrap();
        assert_eq!(r.value(2, 1), Value::str("31200"));
        assert_eq!(r.code(2, 1), r.code(0, 1));
        assert!(r.set(99, 0, Value::Null).is_err());
    }

    #[test]
    fn gather_subsets_rows() {
        let r = fixture();
        let g = r.gather(&[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.value(0, 0), Value::str("HZ"));
        assert_eq!(g.value(1, 2), Value::int(30));
        // Shares the pool: codes must be identical.
        assert_eq!(g.code(1, 0), r.code(0, 0));
    }

    #[test]
    fn distinct_codes_exclude_null() {
        let r = fixture();
        assert_eq!(r.domain_size(0), 2); // HZ, BJ
        assert_eq!(r.domain_size(1), 2); // 31200, 10021 (NULL excluded)
        assert_eq!(r.null_count(1), 1);
        assert_eq!(r.null_count(0), 0);
    }

    #[test]
    fn numeric_bounds() {
        let r = fixture();
        let (lo, hi) = r.numeric_bounds(2).unwrap();
        assert_eq!(lo, 29.5);
        assert_eq!(hi, 41.0);
        assert_eq!(r.numeric_bounds(0), None); // strings
    }

    #[test]
    fn push_row_appends_without_rebuild() {
        let mut r = fixture();
        let schema = Arc::clone(r.schema());
        let pool = Arc::clone(r.pool());
        r.push_row(vec![Value::str("SZ"), Value::str("51800"), Value::int(50)])
            .unwrap();
        assert_eq!(r.num_rows(), 4);
        assert_eq!(r.value(3, 0), Value::str("SZ"));
        // Schema and pool objects are untouched (no rebuild).
        assert!(Arc::ptr_eq(r.schema(), &schema));
        assert!(Arc::ptr_eq(r.pool(), &pool));
        // Validation still applies.
        assert!(r.push_row(vec![Value::str("only-one")]).is_err());
        assert!(r
            .push_row(vec![Value::str("SZ"), Value::Null, Value::str("notnum")])
            .is_err());
        assert_eq!(r.num_rows(), 4);
    }

    #[test]
    fn generation_counts_appended_rows() {
        let mut r = fixture();
        assert_eq!(r.generation(), 3); // the builder pushed 3 rows
        r.push_row(vec![Value::str("SZ"), Value::Null, Value::int(7)])
            .unwrap();
        assert_eq!(r.generation(), 4);
        // Failed pushes leave the generation untouched.
        assert!(r.push_row(vec![Value::str("only-one")]).is_err());
        assert_eq!(r.generation(), 4);
        // In-place overwrites are not growth: the counter tracks appends.
        r.set(0, 0, Value::str("BJ")).unwrap();
        assert_eq!(r.generation(), 4);
        // Derived relations start their own history.
        assert_eq!(r.gather(&[0, 1]).generation(), 0);
        assert_eq!(r.project("p", &[0]).generation(), 0);
        // Clones carry the counter with them.
        assert_eq!(r.clone().generation(), 4);
    }

    #[test]
    fn push_rows_is_atomic_across_the_batch() {
        let mut r = fixture();
        let gen = r.generation();
        // Row 1 of the batch has a type error: nothing commits, not even the
        // valid row 0.
        let err = r
            .push_rows(&[
                vec![Value::str("SZ"), Value::str("51800"), Value::int(50)],
                vec![Value::str("GZ"), Value::Null, Value::str("notnum")],
            ])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.generation(), gen);
        // Arity errors are equally atomic.
        assert!(r
            .push_rows(&[vec![Value::Null, Value::Null, Value::Null], vec![]])
            .is_err());
        assert_eq!(r.num_rows(), 3);
        // A valid batch commits every row and returns the first new row id.
        let from = r
            .push_rows(&[
                vec![Value::str("SZ"), Value::str("51800"), Value::int(50)],
                vec![Value::Null, Value::Null, Value::Null],
            ])
            .unwrap();
        assert_eq!(from, 3);
        assert_eq!(r.num_rows(), 5);
        assert_eq!(r.generation(), gen + 2);
        assert!(r.is_null(4, 0) && r.is_null(4, 1) && r.is_null(4, 2));
    }

    #[test]
    fn push_row_interns_new_codes_mid_append() {
        let mut r = fixture();
        let before = r.pool().len();
        // A value never seen by the pool gets a fresh code...
        r.push_row(vec![Value::str("Atlantis"), Value::Null, Value::Null])
            .unwrap();
        assert!(r.pool().len() > before);
        // ...while already-interned values reuse their code exactly.
        r.push_row(vec![Value::str("HZ"), Value::str("31200"), Value::Null])
            .unwrap();
        assert_eq!(r.code(4, 0), r.code(0, 0));
        assert_eq!(r.code(4, 1), r.code(0, 1));
    }

    #[test]
    fn push_codes_bumps_generation() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let code = pool.intern(Value::str("x"));
        let mut b = RelationBuilder::new(schema, pool);
        b.push_codes(&[code]);
        b.push_codes(&[NULL_CODE]);
        let r = b.finish();
        assert_eq!(r.generation(), 2);
        assert!(r.is_null(1, 0));
        assert_eq!(r.value(0, 0), Value::str("x"));
    }

    #[test]
    #[should_panic(expected = "code row arity mismatch")]
    fn push_codes_rejects_wrong_arity_before_committing() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let mut b = RelationBuilder::new(schema, pool);
        b.push_codes(&[1, 2]);
    }

    #[test]
    fn append_extends_rows() {
        let mut a = fixture();
        let b = a.gather(&[0, 1]);
        a.append(&b);
        assert_eq!(a.num_rows(), 5);
        assert_eq!(a.value(3, 0), Value::str("HZ"));
        assert_eq!(a.value(4, 1), Value::str("10021"));
    }

    #[test]
    #[should_panic(expected = "append requires the same pool")]
    fn append_rejects_foreign_pool() {
        let mut a = fixture();
        // Same schema *object* required too — build a twin with a new pool
        // but reuse a's schema Arc to hit the pool check.
        let pool = Arc::new(Pool::new());
        let other = Relation::empty(Arc::clone(a.schema()), pool);
        a.append(&other);
    }

    #[test]
    fn project_reorders_attributes() {
        let r = fixture();
        let p = r.project("slim", &[2, 0]);
        assert_eq!(p.num_attrs(), 2);
        assert_eq!(p.schema().attr(0).name, "Age");
        assert_eq!(p.schema().attr(1).name, "City");
        assert_eq!(p.num_rows(), r.num_rows());
        assert_eq!(p.code(1, 1), r.code(1, 0));
        // Shares the pool.
        assert!(Arc::ptr_eq(p.pool(), r.pool()));
    }

    #[test]
    fn empty_relation() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let r = Relation::empty(schema, pool);
        assert!(r.is_empty());
        assert_eq!(r.distinct_codes(0), Vec::<Code>::new());
    }
}
