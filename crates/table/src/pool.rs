//! Global value interner.
//!
//! Every distinct [`Value`] that enters the system is assigned a dense `u32`
//! [`Code`] by a [`Pool`]. Relations store codes, not values, which makes the
//! inner loops of rule measure evaluation (billions of cell comparisons over a
//! mining run) integer comparisons with no string traffic.
//!
//! One pool is shared by *both* the input and the master relation of a mining
//! task, so `t[A] == t_m[A_m]` reduces to `code == code` even though the two
//! cells live in different relations with different schemas. This mirrors how
//! dictionary-encoded column stores share dictionaries across scans.
//!
//! NULL never enters the pool: it is represented by the reserved sentinel
//! [`NULL_CODE`]. Editing-rule semantics never treat NULL as equal to anything
//! (including another NULL) when matching LHS values, and keeping it out of
//! the dictionary makes that invariant impossible to violate by accident.

use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Dense dictionary code for an interned value.
pub type Code = u32;

/// Reserved code for NULL cells. Never allocated to a real value.
pub const NULL_CODE: Code = u32::MAX;

#[derive(Default)]
struct PoolInner {
    values: Vec<Value>,
    map: HashMap<Value, Code>,
}

/// Append-only, thread-safe value interner.
///
/// Interning takes a write lock; lookups take a read lock. The mining hot
/// paths never touch the pool at all — they operate on codes — so the lock is
/// only contended during data loading.
#[derive(Default)]
pub struct Pool {
    inner: RwLock<PoolInner>,
}

impl Pool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `v`, returning its code. NULL maps to [`NULL_CODE`] without
    /// touching the dictionary.
    ///
    /// Safe under concurrency: after the read-locked fast path misses, the
    /// presence check is repeated under the *write* lock before allocating.
    /// Two threads racing to intern the same new value both observe the
    /// same code — without the re-check, the loser of the race would
    /// allocate a second code for the value and split the dictionary.
    pub fn intern(&self, v: Value) -> Code {
        if v.is_null() {
            return NULL_CODE;
        }
        // Fast path: already interned.
        if let Some(&c) = self.inner.read().map.get(&v) {
            return c;
        }
        let mut inner = self.inner.write();
        // Re-check under the write lock: another thread may have interned
        // `v` between our read miss and this write acquisition.
        if let Some(&c) = inner.map.get(&v) {
            return c;
        }
        let code = inner.values.len() as Code;
        assert!(
            code < NULL_CODE,
            "value pool exhausted (2^32 - 1 distinct values)"
        );
        inner.values.push(v.clone());
        inner.map.insert(v, code);
        code
    }

    /// Look up the code of `v` without interning. NULL reports [`NULL_CODE`].
    pub fn code_of(&self, v: &Value) -> Option<Code> {
        if v.is_null() {
            return Some(NULL_CODE);
        }
        self.inner.read().map.get(v).copied()
    }

    /// Decode a code back to its value. [`NULL_CODE`] decodes to
    /// [`Value::Null`].
    ///
    /// # Panics
    /// Panics if `code` was never allocated by this pool.
    pub fn value(&self, code: Code) -> Value {
        if code == NULL_CODE {
            return Value::Null;
        }
        self.inner.read().values[code as usize].clone()
    }

    /// Number of distinct non-NULL values interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().values.len()
    }

    /// Whether the pool has interned any value yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let p = Pool::new();
        let a = p.intern(Value::str("HZ"));
        let b = p.intern(Value::str("HZ"));
        assert_eq!(a, b);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn distinct_values_get_distinct_codes() {
        let p = Pool::new();
        let a = p.intern(Value::str("HZ"));
        let b = p.intern(Value::str("BJ"));
        let c = p.intern(Value::int(571));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn null_uses_sentinel_and_skips_dictionary() {
        let p = Pool::new();
        assert_eq!(p.intern(Value::Null), NULL_CODE);
        assert_eq!(p.len(), 0);
        assert_eq!(p.value(NULL_CODE), Value::Null);
        assert_eq!(p.code_of(&Value::Null), Some(NULL_CODE));
    }

    #[test]
    fn round_trip() {
        let p = Pool::new();
        for v in [Value::str("x"), Value::int(-9), Value::float(2.5)] {
            let c = p.intern(v.clone());
            assert_eq!(p.value(c), v);
        }
    }

    #[test]
    fn code_of_unknown_is_none() {
        let p = Pool::new();
        assert_eq!(p.code_of(&Value::str("missing")), None);
    }

    #[test]
    fn int_and_string_spellings_differ() {
        let p = Pool::new();
        let as_int = p.intern(Value::int(571));
        let as_str = p.intern(Value::str("571"));
        assert_ne!(as_int, as_str);
    }

    #[test]
    fn concurrent_interning_converges() {
        use std::sync::Arc;
        let p = Arc::new(Pool::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| p.intern(Value::int(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Code>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(p.len(), 100);
    }

    /// The check-then-act race on a brand-new value: many threads released
    /// simultaneously to intern the *same* fresh value must converge on one
    /// code per value — the write-locked re-check is what prevents double
    /// allocation.
    #[test]
    fn same_new_value_race_allocates_one_code() {
        use std::sync::{Arc, Barrier};
        const THREADS: usize = 8;
        const VALUES: i64 = 200;
        let p = Arc::new(Pool::new());
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let p = Arc::clone(&p);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    // Line every thread up so each fresh value is interned
                    // by as many racers as the scheduler allows.
                    barrier.wait();
                    (0..VALUES)
                        .map(|i| p.intern(Value::int(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Code>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread observed the same code for every value...
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        // ...exactly one code per distinct value was allocated, densely...
        assert_eq!(p.len(), VALUES as usize);
        let mut codes = results[0].clone();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), VALUES as usize);
        assert!(codes.iter().all(|&c| (c as usize) < VALUES as usize));
        // ...and every code decodes back to its value.
        for (i, &c) in results[0].iter().enumerate() {
            assert_eq!(p.value(c), Value::int(i as i64));
        }
    }

    /// Concurrent readers (`code_of`, `value`, `len`) racing writers must
    /// always observe a consistent dictionary (codes only ever grow, and a
    /// visible code always decodes).
    #[test]
    fn readers_race_writers_consistently() {
        use std::sync::Arc;
        let p = Arc::new(Pool::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for i in 0..200i64 {
                        p.intern(Value::int(i + t * 200));
                    }
                });
            }
            for _ in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for i in 0..200i64 {
                        if let Some(c) = p.code_of(&Value::int(i)) {
                            assert_eq!(p.value(c), Value::int(i));
                        }
                        assert!(p.len() <= 800);
                    }
                });
            }
        });
        assert_eq!(p.len(), 800);
    }
}
