//! Error type shared by the relational substrate.

use std::fmt;

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by relation construction, CSV parsing, or lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A row had a different number of cells than the schema has attributes.
    ArityMismatch {
        /// Number of attributes declared by the schema.
        expected: usize,
        /// Number of cells actually supplied.
        got: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending row index.
        row: usize,
        /// Number of rows in the relation.
        len: usize,
    },
    /// A value's type did not match the attribute's declared [`crate::DataType`].
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Human-readable description of what was expected.
        expected: &'static str,
        /// Debug rendering of the offending value.
        got: String,
    },
    /// An incremental `apply_append` was requested on a structure that
    /// cannot accept it (e.g. a derived PLI that retains no groups).
    NotAppendable(String),
    /// CSV input was malformed.
    Csv {
        /// 1-based line number of the problem.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error, stringified (so the error stays `Clone + PartialEq`).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} attributes, row has {got}"
                )
            }
            Error::UnknownAttribute(name) => write!(f, "unknown attribute: {name:?}"),
            Error::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for relation with {len} rows")
            }
            Error::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch on attribute {attr:?}: expected {expected}, got {got}"
                )
            }
            Error::NotAppendable(msg) => write!(f, "not appendable: {msg}"),
            Error::Csv { line, message } => write!(f, "csv parse error at line {line}: {message}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}
