//! Column statistics.
//!
//! Lightweight per-column summaries used across the workspace: value
//! frequency histograms (CTANE's constant-item selection, the condition
//! space's equi-depth grouping), null fractions (identifier/quality
//! heuristics), and distinct counts.

use crate::error::{Error, Result};
use crate::pool::{Code, NULL_CODE};
use crate::relation::Relation;
use crate::schema::AttrId;
use std::collections::HashMap;

/// Frequency histogram of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// `(code, count)` sorted by descending count, ties by ascending code.
    pub frequencies: Vec<(Code, usize)>,
    /// Number of NULL cells.
    pub nulls: usize,
    /// Number of rows.
    pub rows: usize,
}

impl ColumnStats {
    /// Compute the stats of `attr` in `rel`.
    pub fn compute(rel: &Relation, attr: AttrId) -> Self {
        let mut counts: HashMap<Code, usize> = HashMap::new();
        let mut nulls = 0usize;
        for &c in rel.column(attr) {
            if c == NULL_CODE {
                nulls += 1;
            } else {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        let mut frequencies: Vec<(Code, usize)> = counts.into_iter().collect();
        frequencies.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ColumnStats {
            frequencies,
            nulls,
            rows: rel.num_rows(),
        }
    }

    /// Fold rows `from_row..rel.num_rows()` of `attr` into the histogram in
    /// place — the append-aware path for grown master data. `from_row` must
    /// be the row count the stats were computed (or last updated) over; the
    /// result — including the descending-count, ascending-code order — is
    /// then equal to a fresh [`ColumnStats::compute`] over the grown
    /// relation.
    pub fn update_rows(&mut self, rel: &Relation, attr: AttrId, from_row: usize) -> Result<()> {
        if from_row != self.rows || from_row > rel.num_rows() {
            return Err(Error::RowOutOfBounds {
                row: from_row,
                len: self.rows,
            });
        }
        for &c in &rel.column(attr)[from_row..] {
            if c == NULL_CODE {
                self.nulls += 1;
            } else {
                match self.frequencies.iter_mut().find(|(code, _)| *code == c) {
                    Some(entry) => entry.1 += 1,
                    None => self.frequencies.push((c, 1)),
                }
            }
        }
        self.frequencies
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.rows = rel.num_rows();
        Ok(())
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> usize {
        self.frequencies.len()
    }

    /// Fraction of NULL cells.
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }

    /// The `k` most frequent codes, descending.
    pub fn top_k(&self, k: usize) -> Vec<Code> {
        self.frequencies.iter().take(k).map(|&(c, _)| c).collect()
    }

    /// Frequency of one code (0 if absent).
    pub fn frequency(&self, code: Code) -> usize {
        self.frequencies
            .iter()
            .find(|&&(c, _)| c == code)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// Whether the column looks like a row identifier: distinct values
    /// exceed `fraction` of the (non-NULL) rows.
    pub fn is_identifier_like(&self, fraction: f64) -> bool {
        let non_null = self.rows.saturating_sub(self.nulls).max(1);
        self.distinct() as f64 > fraction * non_null as f64
    }

    /// Shannon entropy of the value distribution (bits). High entropy with
    /// many distinct values ⇒ poor pattern-condition candidate.
    pub fn entropy(&self) -> f64 {
        let total: usize = self.frequencies.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        self.frequencies
            .iter()
            .map(|&(_, n)| {
                let p = n as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::{Attribute, Schema};
    use crate::value::Value;
    use crate::Pool;
    use std::sync::Arc;

    fn rel() -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let mut b = RelationBuilder::new(schema, pool);
        for v in ["x", "x", "x", "y", "y", "z"] {
            b.push_row(vec![Value::str(v)]).unwrap();
        }
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        b.finish()
    }

    #[test]
    fn frequencies_sorted_desc() {
        let r = rel();
        let s = ColumnStats::compute(&r, 0);
        assert_eq!(s.distinct(), 3);
        assert_eq!(s.frequencies[0].1, 3); // x
        assert_eq!(s.frequencies[1].1, 2); // y
        assert_eq!(s.frequencies[2].1, 1); // z
        assert_eq!(s.nulls, 2);
        assert_eq!(s.rows, 8);
    }

    #[test]
    fn null_fraction_and_top_k() {
        let r = rel();
        let s = ColumnStats::compute(&r, 0);
        assert!((s.null_fraction() - 0.25).abs() < 1e-12);
        let top = s.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(r.pool().value(top[0]), Value::str("x"));
    }

    #[test]
    fn frequency_lookup() {
        let r = rel();
        let s = ColumnStats::compute(&r, 0);
        let x = r.pool().code_of(&Value::str("x")).unwrap();
        assert_eq!(s.frequency(x), 3);
        assert_eq!(s.frequency(9999), 0);
    }

    #[test]
    fn identifier_detection() {
        let r = rel();
        let s = ColumnStats::compute(&r, 0);
        // 3 distinct over 6 non-null rows = 0.5.
        assert!(s.is_identifier_like(0.4));
        assert!(!s.is_identifier_like(0.6));
    }

    #[test]
    fn entropy_bounds() {
        let r = rel();
        let s = ColumnStats::compute(&r, 0);
        // 3 values → entropy ≤ log2(3).
        assert!(s.entropy() > 0.0);
        assert!(s.entropy() <= 3f64.log2() + 1e-12);
    }

    #[test]
    fn update_rows_equals_compute_from_scratch() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let mut b = RelationBuilder::new(schema, pool);
        for v in ["x", "x", "y"] {
            b.push_row(vec![Value::str(v)]).unwrap();
        }
        let mut r = b.finish();
        let mut s = ColumnStats::compute(&r, 0);
        let from = r.num_rows();
        // Appends grow an existing code past the leader, introduce a new
        // code, and add a NULL — exercising every update path.
        for v in [
            Value::str("y"),
            Value::str("y"),
            Value::str("w"),
            Value::Null,
        ] {
            r.push_row(vec![v]).unwrap();
        }
        s.update_rows(&r, 0, from).unwrap();
        let fresh = ColumnStats::compute(&r, 0);
        assert_eq!(s.frequencies, fresh.frequencies);
        assert_eq!(s.nulls, fresh.nulls);
        assert_eq!(s.rows, fresh.rows);
        // And the wrong boundary is rejected.
        assert!(s.update_rows(&r, 0, 0).is_err());
    }

    #[test]
    fn empty_column() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new("t", vec![Attribute::categorical("A")]));
        let r = Relation::empty(schema, pool);
        let s = ColumnStats::compute(&r, 0);
        assert_eq!(s.distinct(), 0);
        assert_eq!(s.null_fraction(), 0.0);
        assert_eq!(s.entropy(), 0.0);
    }
}
