//! Typed cell values.
//!
//! [`Value`] is the user-facing representation of a single cell. Inside a
//! [`crate::Relation`] cells are stored as dictionary codes (see
//! [`crate::Pool`]); `Value` is what you get back out and what you put in.
//!
//! Floats are compared and hashed by their bit pattern so that `Value` can be
//! used as a dictionary key. This means `NaN == NaN` at the dictionary level
//! (both intern to the same code) and `-0.0 != 0.0`, which is exactly the
//! behaviour we want for *dictionary identity*, as opposed to numeric
//! comparison (use [`Value::as_f64`] for that).

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style NULL / missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, hashed/compared by bit pattern.
    Float(f64),
    /// Interned string. `Arc` keeps clones cheap: values circulate between
    /// dictionaries, pattern tuples and repair candidates constantly.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Self {
        Value::Float(v)
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value the way the CSV writer does: NULL becomes the empty
    /// string, everything else its display form.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Str(s) => Cow::Borrowed(s),
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Float(v) => Cow::Owned(format_float(*v)),
        }
    }
}

/// Format a float without trailing noise: integral floats print as `3`, not
/// `3.0000000001`-style artifacts from repeated parse/print round-trips.
fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(v) => {
                state.write_u8(1);
                state.write_i64(*v);
            }
            Value::Float(v) => {
                state.write_u8(2);
                state.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{}", format_float(*v)),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equality() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
    }

    #[test]
    fn float_bit_equality() {
        assert_eq!(Value::float(f64::NAN), Value::float(f64::NAN));
        assert_ne!(Value::float(0.0), Value::float(-0.0));
        assert_eq!(Value::float(1.5), Value::float(1.5));
    }

    #[test]
    fn int_and_float_are_distinct() {
        assert_ne!(Value::int(1), Value::float(1.0));
        assert_ne!(hash_of(&Value::int(1)), hash_of(&Value::float(1.0)));
    }

    #[test]
    fn hash_consistent_with_eq() {
        let a = Value::str("HZ");
        let b = Value::str("HZ");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::int(7).as_f64(), Some(7.0));
        assert_eq!(Value::float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn render_forms() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::int(-3).render(), "-3");
        assert_eq!(Value::float(3.0).render(), "3");
        assert_eq!(Value::float(3.25).render(), "3.25");
        assert_eq!(Value::str("a b").render(), "a b");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("BJ").to_string(), "BJ");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(2.0f64), Value::float(2.0));
        assert_eq!(Value::from("owned".to_string()), Value::str("owned"));
    }
}
