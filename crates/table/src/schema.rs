//! Schemas and attributes.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Index of an attribute within its schema.
pub type AttrId = usize;

/// Physical/semantic type of an attribute.
///
/// `Categorical` and `Continuous` drive RLMiner's state encoding: categorical
/// attributes contribute `|dom(A)|` (possibly prefix-reduced) dimensions,
/// continuous ones contribute `N_split` range dimensions (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Discrete values compared by equality (strings, codes, small ints).
    Categorical,
    /// Ordered numeric values, bucketed into ranges for pattern conditions.
    Continuous,
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Semantic type; see [`DataType`].
    pub dtype: DataType,
}

impl Attribute {
    /// A categorical (discrete) attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            dtype: DataType::Categorical,
        }
    }

    /// A continuous (numeric, range-bucketed) attribute.
    pub fn continuous(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            dtype: DataType::Continuous,
        }
    }

    /// Whether the attribute is continuous.
    pub fn is_continuous(&self) -> bool {
        self.dtype == DataType::Continuous
    }
}

/// An ordered list of attributes with a relation name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Create a schema.
    ///
    /// # Panics
    /// Panics if two attributes share a name — schemas are always authored by
    /// code (generators, CSV headers), so a duplicate is a programming error.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        let schema = Schema {
            name: name.into(),
            attrs,
        };
        for (i, a) in schema.attrs.iter().enumerate() {
            for b in &schema.attrs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate attribute name {:?}", a.name);
            }
        }
        schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id]
    }

    /// Resolve an attribute name to its id.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// Iterate `(id, attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "reg",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("ZIP"),
                Attribute::continuous("Age"),
            ],
        )
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.attr_id("City").unwrap(), 0);
        assert_eq!(s.attr_id("Age").unwrap(), 2);
        assert!(matches!(s.attr_id("Nope"), Err(Error::UnknownAttribute(_))));
    }

    #[test]
    fn arity_and_access() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(1).name, "ZIP");
        assert!(s.attr(2).is_continuous());
        assert!(!s.attr(0).is_continuous());
        assert_eq!(s.name(), "reg");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        Schema::new(
            "bad",
            vec![Attribute::categorical("A"), Attribute::categorical("A")],
        );
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let s = schema();
        let ids: Vec<_> = s.iter().map(|(i, a)| (i, a.name.clone())).collect();
        assert_eq!(ids[0], (0, "City".to_string()));
        assert_eq!(ids[2], (2, "Age".to_string()));
    }
}
