//! Hash and partition indexes over relations.
//!
//! * [`KeyIndex`] — maps a composite key (codes of a list of attributes) to
//!   the rows carrying it. The workhorse behind editing-rule support /
//!   certainty evaluation: the master relation is indexed on `X_m` once, then
//!   every input tuple probes it.
//! * [`GroupIndex`] — like `KeyIndex` but aggregates a target attribute into
//!   per-key value counts, which is exactly the `count(v, φ)` statistic of
//!   the certainty measure.
//! * [`Pli`] — stripped partition (position list index) used by the CTANE
//!   CFD miner: equivalence classes of rows under one or more attributes,
//!   singleton classes removed.

use crate::pool::{Code, NULL_CODE};
use crate::relation::{Relation, RowId};
use crate::schema::AttrId;
use std::collections::HashMap;

/// Composite-key hash index: `codes(attrs)` → rows.
///
/// Rows where any key attribute is NULL are excluded: editing-rule semantics
/// never match through NULLs.
#[derive(Debug, Clone)]
pub struct KeyIndex {
    attrs: Vec<AttrId>,
    map: HashMap<Vec<Code>, Vec<RowId>>,
}

impl KeyIndex {
    /// Build the index over `rel` keyed on `attrs` (in the given order).
    pub fn build(rel: &Relation, attrs: &[AttrId]) -> Self {
        Self::build_over(rel, attrs, 0..rel.num_rows())
    }

    /// Build the index over a subset of rows.
    pub fn build_over(
        rel: &Relation,
        attrs: &[AttrId],
        rows: impl IntoIterator<Item = RowId>,
    ) -> Self {
        let mut map: HashMap<Vec<Code>, Vec<RowId>> = HashMap::new();
        'rows: for row in rows {
            let mut key = Vec::with_capacity(attrs.len());
            for &a in attrs {
                let c = rel.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            map.entry(key).or_default().push(row);
        }
        KeyIndex {
            attrs: attrs.to_vec(),
            map,
        }
    }

    /// The key attributes this index was built on.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Rows whose key equals `key`, or an empty slice.
    pub fn get(&self, key: &[Code]) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Probe with the key extracted from `(probe_rel, row)` over
    /// `probe_attrs` (which must parallel the index's key attributes). Returns
    /// `None` if any probe cell is NULL.
    pub fn probe(
        &self,
        probe_rel: &Relation,
        row: RowId,
        probe_attrs: &[AttrId],
    ) -> Option<&[RowId]> {
        debug_assert_eq!(probe_attrs.len(), self.attrs.len());
        let mut key = Vec::with_capacity(probe_attrs.len());
        for &a in probe_attrs {
            let c = probe_rel.code(row, a);
            if c == NULL_CODE {
                return None;
            }
            key.push(c);
        }
        Some(self.get(&key))
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(key, rows)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Code>, &Vec<RowId>)> {
        self.map.iter()
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * every key has the arity of `attrs` and contains no NULL code;
    /// * every key maps to a non-empty row list;
    /// * each row id is `< num_rows` and appears under exactly one key (the
    ///   buckets form a disjoint cover of the indexed, NULL-free rows).
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self, num_rows: usize) {
        let mut seen = std::collections::HashSet::new();
        for (key, rows) in &self.map {
            assert_eq!(key.len(), self.attrs.len(), "KeyIndex: key arity mismatch");
            assert!(
                !key.contains(&NULL_CODE),
                "KeyIndex: NULL code inside a key"
            );
            assert!(!rows.is_empty(), "KeyIndex: empty bucket for key {key:?}");
            for &r in rows {
                assert!(
                    r < num_rows,
                    "KeyIndex: row id {r} out of bounds ({num_rows} rows)"
                );
                assert!(seen.insert(r), "KeyIndex: row {r} appears under two keys");
            }
        }
    }
}

/// Composite-key index aggregating a target attribute's value counts.
///
/// `get(key)` returns, for master tuples `t_m` with `t_m[X_m] = key`, the
/// multiset of `t_m[Y_m]` values as `(code, count)` pairs — the candidate-fix
/// distribution `Cand(t, φ)` of the paper's certainty measure. NULL target
/// values are counted under [`NULL_CODE`]; callers decide how to treat them
/// (the measure layer excludes them from candidate fixes).
#[derive(Debug, Clone)]
pub struct GroupIndex {
    map: HashMap<Vec<Code>, Vec<(Code, u32)>>,
}

impl GroupIndex {
    /// Build over `rel`: key on `key_attrs`, aggregate counts of `target`.
    pub fn build(rel: &Relation, key_attrs: &[AttrId], target: AttrId) -> Self {
        Self::build_over(rel, key_attrs, target, 0..rel.num_rows())
    }

    /// Build over a subset of rows.
    pub fn build_over(
        rel: &Relation,
        key_attrs: &[AttrId],
        target: AttrId,
        rows: impl IntoIterator<Item = RowId>,
    ) -> Self {
        let mut counts: HashMap<Vec<Code>, HashMap<Code, u32>> = HashMap::new();
        'rows: for row in rows {
            let mut key = Vec::with_capacity(key_attrs.len());
            for &a in key_attrs {
                let c = rel.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            *counts
                .entry(key)
                .or_default()
                .entry(rel.code(row, target))
                .or_insert(0) += 1;
        }
        let map = counts
            .into_iter()
            .map(|(k, vs)| {
                let mut pairs: Vec<(Code, u32)> = vs.into_iter().collect();
                // Deterministic order: highest count first, ties by code.
                pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                (k, pairs)
            })
            .collect();
        GroupIndex { map }
    }

    /// Candidate-fix distribution for `key`: `(target code, count)` sorted by
    /// descending count. Empty slice when the key is absent.
    pub fn get(&self, key: &[Code]) -> &[(Code, u32)] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * no key contains a NULL code (NULL-keyed rows are skipped at build);
    /// * every distribution is non-empty with strictly positive counts;
    /// * distributions are sorted by descending count, ties by ascending code
    ///   (the determinism contract [`GroupIndex::get`] documents);
    /// * no code repeats within one distribution.
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        for (key, dist) in &self.map {
            assert!(
                !key.contains(&NULL_CODE),
                "GroupIndex: NULL code inside a key"
            );
            assert!(
                !dist.is_empty(),
                "GroupIndex: empty distribution for key {key:?}"
            );
            for w in dist.windows(2) {
                assert!(
                    w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                    "GroupIndex: distribution not sorted (desc count, asc code): {dist:?}"
                );
            }
            for &(_, n) in dist {
                assert!(
                    n > 0,
                    "GroupIndex: zero count in distribution for key {key:?}"
                );
            }
        }
    }
}

/// Stripped partition (position list index).
///
/// The rows of a relation are grouped into equivalence classes by the values
/// of an attribute set; classes of size 1 are stripped. CTANE uses PLI
/// refinement to check FD/CFD validity levelwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pli {
    classes: Vec<Vec<RowId>>,
    num_rows: usize,
}

impl Pli {
    /// Build the PLI of a single attribute. NULL forms its own class (NULL is
    /// equal to NULL for *partitioning* purposes — CFDs over master data
    /// treat NULL as just another constant).
    pub fn build(rel: &Relation, attr: AttrId) -> Self {
        let mut groups: HashMap<Code, Vec<RowId>> = HashMap::new();
        for row in 0..rel.num_rows() {
            groups.entry(rel.code(row, attr)).or_default().push(row);
        }
        Self::from_classes(groups.into_values().collect(), rel.num_rows())
    }

    /// Build from explicit equivalence classes (singletons are stripped and
    /// classes are sorted for determinism).
    pub fn from_classes(mut classes: Vec<Vec<RowId>>, num_rows: usize) -> Self {
        classes.retain(|c| c.len() > 1);
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort_unstable_by(|a, b| a[0].cmp(&b[0]));
        Pli { classes, num_rows }
    }

    /// The stripped equivalence classes.
    pub fn classes(&self) -> &[Vec<RowId>] {
        &self.classes
    }

    /// Number of rows of the underlying relation.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Error count `e(π)`: rows minus number of classes they'd collapse to —
    /// i.e. `Σ (|class| - 1)` over stripped classes. An FD `X → Y` holds iff
    /// `error(π_X)` equals `error(π_{X∪Y})` refined... CTANE uses the simpler
    /// criterion exposed by [`Pli::refines`].
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Intersect (product) with another PLI: the partition under the union of
    /// the two attribute sets.
    pub fn intersect(&self, other: &Pli) -> Pli {
        // Map each row to its class id in `other` (usize::MAX = singleton).
        let mut class_of = vec![usize::MAX; self.num_rows];
        for (cid, class) in other.classes.iter().enumerate() {
            for &r in class {
                class_of[r] = cid;
            }
        }
        let mut out = Vec::new();
        for class in &self.classes {
            let mut sub: HashMap<usize, Vec<RowId>> = HashMap::new();
            for &r in class {
                let cid = class_of[r];
                if cid != usize::MAX {
                    sub.entry(cid).or_default().push(r);
                }
            }
            out.extend(sub.into_values());
        }
        Pli::from_classes(out, self.num_rows)
    }

    /// Whether this partition refines `target`: every class of `self` lies
    /// inside one class of `target` (treating stripped singletons of `target`
    /// as their own classes). This is the FD validity test: `X → Y` holds iff
    /// `π_X` refines `π_{X ∪ {Y}}` — equivalently iff intersecting with
    /// `π_Y` does not split any class of `π_X`.
    pub fn refines(&self, target: &Pli) -> bool {
        let mut class_of = vec![usize::MAX; self.num_rows];
        for (cid, class) in target.classes.iter().enumerate() {
            for &r in class {
                class_of[r] = cid;
            }
        }
        #[cfg(feature = "debug-invariants")]
        {
            self.check_invariants();
            target.check_invariants();
        }
        for class in &self.classes {
            let first = class_of[class[0]];
            for &r in &class[1..] {
                if class_of[r] != first || first == usize::MAX {
                    return false;
                }
            }
            // A whole class mapped to "singleton" in target is impossible:
            // if two rows agree on X they cannot both be singletons in X∪Y
            // unless they disagree on Y — which the loop above catches via
            // usize::MAX != usize::MAX being false... handle explicitly:
            if first == usize::MAX && class.len() > 1 {
                return false;
            }
        }
        true
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * every class has at least 2 rows (singletons are stripped);
    /// * classes are strictly sorted internally and ordered by first element;
    /// * every row id is `< num_rows`;
    /// * classes are pairwise disjoint — together with the stripped
    ///   singletons they form a disjoint cover of the row ids.
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        let mut seen = std::collections::HashSet::new();
        let mut prev_first: Option<RowId> = None;
        for class in &self.classes {
            assert!(
                class.len() >= 2,
                "Pli: singleton class survived stripping: {class:?}"
            );
            for w in class.windows(2) {
                assert!(w[0] < w[1], "Pli: class not strictly sorted: {class:?}");
            }
            if let Some(p) = prev_first {
                assert!(p < class[0], "Pli: classes not ordered by first element");
            }
            prev_first = Some(class[0]);
            for &r in class {
                assert!(
                    r < self.num_rows,
                    "Pli: row id {r} out of bounds ({} rows)",
                    self.num_rows
                );
                assert!(seen.insert(r), "Pli: row {r} appears in two classes");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;
    use crate::schema::{Attribute, Schema};
    use crate::value::Value;
    use std::sync::Arc;

    fn rel(rows: &[(&str, &str, &str)]) -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("C"),
            ],
        ));
        let mut b = crate::relation::RelationBuilder::new(schema, pool);
        for (a, bb, c) in rows {
            let to_v = |s: &str| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::str(s.to_string())
                }
            };
            b.push_row(vec![to_v(a), to_v(bb), to_v(c)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn key_index_groups_rows() {
        let r = rel(&[("x", "1", "p"), ("x", "1", "q"), ("y", "2", "p")]);
        let idx = KeyIndex::build(&r, &[0, 1]);
        assert_eq!(idx.num_keys(), 2);
        let key = vec![r.code(0, 0), r.code(0, 1)];
        assert_eq!(idx.get(&key), &[0, 1]);
        assert_eq!(idx.get(&[999, 999]), &[] as &[RowId]);
    }

    #[test]
    fn key_index_skips_null_keys() {
        let r = rel(&[("x", "", "p"), ("x", "1", "q")]);
        let idx = KeyIndex::build(&r, &[0, 1]);
        assert_eq!(idx.num_keys(), 1);
    }

    #[test]
    fn key_index_probe_cross_relation() {
        // Two relations over the same pool: probe one with the other's row.
        let pool = Arc::new(Pool::new());
        let s1 = Arc::new(Schema::new("in", vec![Attribute::categorical("City")]));
        let s2 = Arc::new(Schema::new("m", vec![Attribute::categorical("Town")]));
        let mut b1 = crate::relation::RelationBuilder::new(s1, Arc::clone(&pool));
        b1.push_row(vec![Value::str("HZ")]).unwrap();
        let input = b1.finish();
        let mut b2 = crate::relation::RelationBuilder::new(s2, pool);
        b2.push_row(vec![Value::str("HZ")]).unwrap();
        b2.push_row(vec![Value::str("BJ")]).unwrap();
        let master = b2.finish();
        let idx = KeyIndex::build(&master, &[0]);
        let hit = idx.probe(&input, 0, &[0]).unwrap();
        assert_eq!(hit, &[0]);
    }

    #[test]
    fn group_index_counts_targets() {
        let r = rel(&[
            ("x", "1", "p"),
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("y", "2", "p"),
        ]);
        let g = GroupIndex::build(&r, &[0], 2);
        let key = vec![r.code(0, 0)];
        let dist = g.get(&key);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].1, 2); // "p" twice, sorted first
        assert_eq!(dist[1].1, 1);
    }

    #[test]
    fn group_index_null_target_counted_under_sentinel() {
        let r = rel(&[("x", "1", ""), ("x", "1", "q")]);
        let g = GroupIndex::build(&r, &[0], 2);
        let dist = g.get(&[r.code(0, 0)]);
        assert_eq!(dist.len(), 2);
        assert!(dist.iter().any(|&(c, n)| c == NULL_CODE && n == 1));
    }

    #[test]
    fn pli_strips_singletons() {
        let r = rel(&[("x", "1", "p"), ("x", "2", "q"), ("y", "3", "r")]);
        let p = Pli::build(&r, 0);
        assert_eq!(p.classes().len(), 1);
        assert_eq!(p.classes()[0], vec![0, 1]);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn pli_intersection() {
        let r = rel(&[
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("x", "2", "p"),
            ("y", "1", "p"),
        ]);
        let pa = Pli::build(&r, 0); // {0,1,2}
        let pb = Pli::build(&r, 1); // {0,1,3}
        let pab = pa.intersect(&pb); // {0,1}
        assert_eq!(pab.classes(), &[vec![0, 1]]);
    }

    #[test]
    fn fd_validity_via_refines() {
        // A -> C holds; B -> C does not.
        let r = rel(&[("x", "1", "p"), ("x", "2", "p"), ("y", "1", "q")]);
        let pa = Pli::build(&r, 0);
        let pb = Pli::build(&r, 1);
        let pc = Pli::build(&r, 2);
        assert!(pa.refines(&pa.intersect(&pc)));
        assert!(!pb.refines(&pb.intersect(&pc)));
    }

    #[test]
    fn refines_handles_singleton_targets() {
        // Rows 0,1 agree on A but have distinct C values that are themselves
        // singletons in C's PLI — A -> C must be invalid.
        let r = rel(&[("x", "1", "p"), ("x", "2", "q")]);
        let pa = Pli::build(&r, 0);
        let pc = Pli::build(&r, 2);
        assert!(!pa.refines(&pa.intersect(&pc)));
    }
}
