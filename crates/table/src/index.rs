//! Hash and partition indexes over relations.
//!
//! * [`KeyIndex`] — maps a composite key (codes of a list of attributes) to
//!   the rows carrying it. The workhorse behind editing-rule support /
//!   certainty evaluation: the master relation is indexed on `X_m` once, then
//!   every input tuple probes it.
//! * [`GroupIndex`] — like `KeyIndex` but aggregates a target attribute into
//!   per-key value counts, which is exactly the `count(v, φ)` statistic of
//!   the certainty measure.
//! * [`Pli`] — stripped partition (position list index) used by the CTANE
//!   CFD miner: equivalence classes of rows under one or more attributes,
//!   singleton classes removed.
//!
//! All three indexes are **append-aware**: they record the relation's
//! [`Relation::generation`] (and row count) at build time, and
//! `apply_append(rel, from_row)` folds newly appended rows in without a
//! rebuild, producing state identical to a fresh build over the grown
//! relation (the `er-incr` crate's equivalence suite enforces this at
//! several thread counts). Under the `debug-invariants` feature,
//! `assert_fresh(rel)` panics when an index is probed against a relation
//! that has grown past the index's recorded generation — the silent
//! stale-read bug `push_row` made possible.

use crate::error::{Error, Result};
use crate::pool::{Code, NULL_CODE};
use crate::relation::{Relation, RowId};
use crate::schema::AttrId;
use std::collections::HashMap;

/// Composite-key hash index: `codes(attrs)` → rows.
///
/// Rows where any key attribute is NULL are excluded: editing-rule semantics
/// never match through NULLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyIndex {
    attrs: Vec<AttrId>,
    map: HashMap<Vec<Code>, Vec<RowId>>,
    /// Relation rows covered (the exclusive upper bound of indexed row ids).
    rows: usize,
    /// [`Relation::generation`] at build / last `apply_append`.
    generation: u64,
}

impl KeyIndex {
    /// Build the index over `rel` keyed on `attrs` (in the given order).
    pub fn build(rel: &Relation, attrs: &[AttrId]) -> Self {
        Self::build_over(rel, attrs, 0..rel.num_rows())
    }

    /// Build the index over a subset of rows.
    pub fn build_over(
        rel: &Relation,
        attrs: &[AttrId],
        rows: impl IntoIterator<Item = RowId>,
    ) -> Self {
        let mut map: HashMap<Vec<Code>, Vec<RowId>> = HashMap::new();
        'rows: for row in rows {
            let mut key = Vec::with_capacity(attrs.len());
            for &a in attrs {
                let c = rel.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            map.entry(key).or_default().push(row);
        }
        KeyIndex {
            attrs: attrs.to_vec(),
            map,
            rows: rel.num_rows(),
            generation: rel.generation(),
        }
    }

    /// Fold rows `from_row..rel.num_rows()` into the index in place — the
    /// delta-maintenance path for appended master data. `from_row` must be
    /// the relation's row count when the index was last built or updated
    /// (i.e. the value [`Relation::push_rows`] returns); the result is then
    /// identical to a fresh [`KeyIndex::build`] over the grown relation.
    pub fn apply_append(&mut self, rel: &Relation, from_row: RowId) -> Result<()> {
        if from_row != self.rows || from_row > rel.num_rows() {
            return Err(Error::RowOutOfBounds {
                row: from_row,
                len: self.rows,
            });
        }
        'rows: for row in from_row..rel.num_rows() {
            let mut key = Vec::with_capacity(self.attrs.len());
            for &a in &self.attrs {
                let c = rel.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            self.map.entry(key).or_default().push(row);
        }
        self.rows = rel.num_rows();
        self.generation = rel.generation();
        Ok(())
    }

    /// The [`Relation::generation`] this index was built or last
    /// delta-updated at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Panic if `rel` has grown past the generation this index was built or
    /// updated at — a probe now would silently miss the appended rows.
    /// Available under the `debug-invariants` feature; call it at probe
    /// sites that own both the index and the relation.
    #[cfg(feature = "debug-invariants")]
    pub fn assert_fresh(&self, rel: &Relation) {
        assert_eq!(
            self.generation,
            rel.generation(),
            "KeyIndex: stale index (built at generation {}, relation is at {})",
            self.generation,
            rel.generation()
        );
    }

    /// The key attributes this index was built on.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Rows whose key equals `key`, or an empty slice.
    pub fn get(&self, key: &[Code]) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Probe with the key extracted from `(probe_rel, row)` over
    /// `probe_attrs` (which must parallel the index's key attributes). Returns
    /// `None` if any probe cell is NULL.
    pub fn probe(
        &self,
        probe_rel: &Relation,
        row: RowId,
        probe_attrs: &[AttrId],
    ) -> Option<&[RowId]> {
        debug_assert_eq!(probe_attrs.len(), self.attrs.len());
        let mut key = Vec::with_capacity(probe_attrs.len());
        for &a in probe_attrs {
            let c = probe_rel.code(row, a);
            if c == NULL_CODE {
                return None;
            }
            key.push(c);
        }
        Some(self.get(&key))
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(key, rows)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Code>, &Vec<RowId>)> {
        self.map.iter()
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * every key has the arity of `attrs` and contains no NULL code;
    /// * every key maps to a non-empty row list;
    /// * each row id is `< num_rows` and appears under exactly one key (the
    ///   buckets form a disjoint cover of the indexed, NULL-free rows).
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self, num_rows: usize) {
        let mut seen = std::collections::HashSet::new();
        for (key, rows) in &self.map {
            assert_eq!(key.len(), self.attrs.len(), "KeyIndex: key arity mismatch");
            assert!(
                !key.contains(&NULL_CODE),
                "KeyIndex: NULL code inside a key"
            );
            assert!(!rows.is_empty(), "KeyIndex: empty bucket for key {key:?}");
            for &r in rows {
                assert!(
                    r < num_rows,
                    "KeyIndex: row id {r} out of bounds ({num_rows} rows)"
                );
                assert!(seen.insert(r), "KeyIndex: row {r} appears under two keys");
            }
        }
    }
}

/// Deterministic distribution order: highest count first, ties by code.
/// Shared by [`GroupIndex::build_over`] and [`GroupIndex::apply_append`] so
/// the incremental path re-sorts with exactly the rebuild comparator.
fn sort_distribution(pairs: &mut [(Code, u32)]) {
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
}

/// Composite-key index aggregating a target attribute's value counts.
///
/// `get(key)` returns, for master tuples `t_m` with `t_m[X_m] = key`, the
/// multiset of `t_m[Y_m]` values as `(code, count)` pairs — the candidate-fix
/// distribution `Cand(t, φ)` of the paper's certainty measure. NULL target
/// values are counted under [`NULL_CODE`]; callers decide how to treat them
/// (the measure layer excludes them from candidate fixes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupIndex {
    key_attrs: Vec<AttrId>,
    target: AttrId,
    map: HashMap<Vec<Code>, Vec<(Code, u32)>>,
    /// Relation rows covered (the exclusive upper bound of aggregated rows).
    rows: usize,
    /// [`Relation::generation`] at build / last `apply_append`.
    generation: u64,
}

impl GroupIndex {
    /// Build over `rel`: key on `key_attrs`, aggregate counts of `target`.
    pub fn build(rel: &Relation, key_attrs: &[AttrId], target: AttrId) -> Self {
        Self::build_over(rel, key_attrs, target, 0..rel.num_rows())
    }

    /// Build over a subset of rows.
    pub fn build_over(
        rel: &Relation,
        key_attrs: &[AttrId],
        target: AttrId,
        rows: impl IntoIterator<Item = RowId>,
    ) -> Self {
        let mut counts: HashMap<Vec<Code>, HashMap<Code, u32>> = HashMap::new();
        'rows: for row in rows {
            let mut key = Vec::with_capacity(key_attrs.len());
            for &a in key_attrs {
                let c = rel.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            *counts
                .entry(key)
                .or_default()
                .entry(rel.code(row, target))
                .or_insert(0) += 1;
        }
        let map = counts
            .into_iter()
            .map(|(k, vs)| {
                let mut pairs: Vec<(Code, u32)> = vs.into_iter().collect();
                sort_distribution(&mut pairs);
                (k, pairs)
            })
            .collect();
        GroupIndex {
            key_attrs: key_attrs.to_vec(),
            target,
            map,
            rows: rel.num_rows(),
            generation: rel.generation(),
        }
    }

    /// Fold rows `from_row..rel.num_rows()` into the aggregated counts in
    /// place. `from_row` must be the relation's row count when the index was
    /// last built or updated; the result — including each distribution's
    /// deterministic (descending count, ascending code) order — is then
    /// identical to a fresh [`GroupIndex::build`] over the grown relation.
    /// Only distributions an appended row actually touches are re-sorted.
    pub fn apply_append(&mut self, rel: &Relation, from_row: RowId) -> Result<()> {
        if from_row != self.rows || from_row > rel.num_rows() {
            return Err(Error::RowOutOfBounds {
                row: from_row,
                len: self.rows,
            });
        }
        let mut dirty: Vec<Vec<Code>> = Vec::new();
        'rows: for row in from_row..rel.num_rows() {
            let mut key = Vec::with_capacity(self.key_attrs.len());
            for &a in &self.key_attrs {
                let c = rel.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            let code = rel.code(row, self.target);
            let dist = self.map.entry(key.clone()).or_default();
            match dist.iter_mut().find(|(c, _)| *c == code) {
                Some(entry) => entry.1 += 1,
                None => dist.push((code, 1)),
            }
            if !dirty.contains(&key) {
                dirty.push(key);
            }
        }
        for key in dirty {
            // The entry was created or touched just above.
            if let Some(dist) = self.map.get_mut(&key) {
                sort_distribution(dist);
            }
        }
        self.rows = rel.num_rows();
        self.generation = rel.generation();
        Ok(())
    }

    /// The [`Relation::generation`] this index was built or last
    /// delta-updated at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Panic if `rel` has grown past the generation this index was built or
    /// updated at (see [`KeyIndex::assert_fresh`]).
    #[cfg(feature = "debug-invariants")]
    pub fn assert_fresh(&self, rel: &Relation) {
        assert_eq!(
            self.generation,
            rel.generation(),
            "GroupIndex: stale index (built at generation {}, relation is at {})",
            self.generation,
            rel.generation()
        );
    }

    /// Candidate-fix distribution for `key`: `(target code, count)` sorted by
    /// descending count. Empty slice when the key is absent.
    pub fn get(&self, key: &[Code]) -> &[(Code, u32)] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * no key contains a NULL code (NULL-keyed rows are skipped at build);
    /// * every distribution is non-empty with strictly positive counts;
    /// * distributions are sorted by descending count, ties by ascending code
    ///   (the determinism contract [`GroupIndex::get`] documents);
    /// * no code repeats within one distribution.
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        for (key, dist) in &self.map {
            assert!(
                !key.contains(&NULL_CODE),
                "GroupIndex: NULL code inside a key"
            );
            assert!(
                !dist.is_empty(),
                "GroupIndex: empty distribution for key {key:?}"
            );
            for w in dist.windows(2) {
                assert!(
                    w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                    "GroupIndex: distribution not sorted (desc count, asc code): {dist:?}"
                );
            }
            for &(_, n) in dist {
                assert!(
                    n > 0,
                    "GroupIndex: zero count in distribution for key {key:?}"
                );
            }
        }
    }
}

/// Stripped partition (position list index).
///
/// The rows of a relation are grouped into equivalence classes by the values
/// of an attribute set; classes of size 1 are stripped. CTANE uses PLI
/// refinement to check FD/CFD validity levelwise.
#[derive(Debug, Clone)]
pub struct Pli {
    classes: Vec<Vec<RowId>>,
    num_rows: usize,
    /// Retained per-code groups (singletons included) for single-attribute
    /// PLIs — the state `apply_append` needs to re-derive the stripped
    /// classes without a full scan. `None` for derived PLIs
    /// ([`Pli::from_classes`], [`Pli::intersect`]), which are not appendable.
    groups: Option<(AttrId, HashMap<Code, Vec<RowId>>)>,
    /// [`Relation::generation`] at build / last `apply_append` (0 for
    /// derived PLIs).
    generation: u64,
}

/// Equality compares the partition itself — the stripped classes and the row
/// count — so a derived PLI equals a built one when they describe the same
/// partition, regardless of retained append state.
impl PartialEq for Pli {
    fn eq(&self, other: &Self) -> bool {
        self.classes == other.classes && self.num_rows == other.num_rows
    }
}

impl Eq for Pli {}

impl Pli {
    /// Build the PLI of a single attribute. NULL forms its own class (NULL is
    /// equal to NULL for *partitioning* purposes — CFDs over master data
    /// treat NULL as just another constant).
    pub fn build(rel: &Relation, attr: AttrId) -> Self {
        let mut groups: HashMap<Code, Vec<RowId>> = HashMap::new();
        for row in 0..rel.num_rows() {
            groups.entry(rel.code(row, attr)).or_default().push(row);
        }
        let mut pli = Self::from_classes(groups.values().cloned().collect(), rel.num_rows());
        pli.groups = Some((attr, groups));
        pli.generation = rel.generation();
        pli
    }

    /// Build from explicit equivalence classes (singletons are stripped and
    /// classes are sorted for determinism).
    pub fn from_classes(mut classes: Vec<Vec<RowId>>, num_rows: usize) -> Self {
        classes.retain(|c| c.len() > 1);
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort_unstable_by(|a, b| a[0].cmp(&b[0]));
        Pli {
            classes,
            num_rows,
            groups: None,
            generation: 0,
        }
    }

    /// Fold rows `from_row..rel.num_rows()` into the partition in place.
    /// Only available on single-attribute PLIs built with [`Pli::build`]
    /// (derived PLIs do not retain the per-code groups required); `from_row`
    /// must be the relation's row count when the PLI was last built or
    /// updated. The resulting stripped classes are identical to a fresh
    /// [`Pli::build`] over the grown relation.
    pub fn apply_append(&mut self, rel: &Relation, from_row: RowId) -> Result<()> {
        let Some((attr, groups)) = &mut self.groups else {
            return Err(Error::NotAppendable(
                "derived Pli (from_classes/intersect) retains no groups".into(),
            ));
        };
        if from_row != self.num_rows || from_row > rel.num_rows() {
            return Err(Error::RowOutOfBounds {
                row: from_row,
                len: self.num_rows,
            });
        }
        for row in from_row..rel.num_rows() {
            groups.entry(rel.code(row, *attr)).or_default().push(row);
        }
        // Re-derive the stripped classes from the (already sorted — rows are
        // appended in increasing order) groups, exactly as `build` does.
        let mut classes: Vec<Vec<RowId>> =
            groups.values().filter(|c| c.len() > 1).cloned().collect();
        classes.sort_unstable_by(|a, b| a[0].cmp(&b[0]));
        self.classes = classes;
        self.num_rows = rel.num_rows();
        self.generation = rel.generation();
        Ok(())
    }

    /// The [`Relation::generation`] this PLI was built or last delta-updated
    /// at (0 for derived PLIs).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Panic if `rel` has grown past the generation this PLI was built or
    /// updated at (see [`KeyIndex::assert_fresh`]).
    #[cfg(feature = "debug-invariants")]
    pub fn assert_fresh(&self, rel: &Relation) {
        assert_eq!(
            self.generation,
            rel.generation(),
            "Pli: stale partition (built at generation {}, relation is at {})",
            self.generation,
            rel.generation()
        );
    }

    /// The stripped equivalence classes.
    pub fn classes(&self) -> &[Vec<RowId>] {
        &self.classes
    }

    /// Number of rows of the underlying relation.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Error count `e(π)`: rows minus number of classes they'd collapse to —
    /// i.e. `Σ (|class| - 1)` over stripped classes. An FD `X → Y` holds iff
    /// `error(π_X)` equals `error(π_{X∪Y})` refined... CTANE uses the simpler
    /// criterion exposed by [`Pli::refines`].
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Intersect (product) with another PLI: the partition under the union of
    /// the two attribute sets.
    pub fn intersect(&self, other: &Pli) -> Pli {
        // Map each row to its class id in `other` (usize::MAX = singleton).
        let mut class_of = vec![usize::MAX; self.num_rows];
        for (cid, class) in other.classes.iter().enumerate() {
            for &r in class {
                class_of[r] = cid;
            }
        }
        let mut out = Vec::new();
        for class in &self.classes {
            let mut sub: HashMap<usize, Vec<RowId>> = HashMap::new();
            for &r in class {
                let cid = class_of[r];
                if cid != usize::MAX {
                    sub.entry(cid).or_default().push(r);
                }
            }
            out.extend(sub.into_values());
        }
        Pli::from_classes(out, self.num_rows)
    }

    /// Whether this partition refines `target`: every class of `self` lies
    /// inside one class of `target` (treating stripped singletons of `target`
    /// as their own classes). This is the FD validity test: `X → Y` holds iff
    /// `π_X` refines `π_{X ∪ {Y}}` — equivalently iff intersecting with
    /// `π_Y` does not split any class of `π_X`.
    pub fn refines(&self, target: &Pli) -> bool {
        let mut class_of = vec![usize::MAX; self.num_rows];
        for (cid, class) in target.classes.iter().enumerate() {
            for &r in class {
                class_of[r] = cid;
            }
        }
        #[cfg(feature = "debug-invariants")]
        {
            self.check_invariants();
            target.check_invariants();
        }
        for class in &self.classes {
            let first = class_of[class[0]];
            for &r in &class[1..] {
                if class_of[r] != first || first == usize::MAX {
                    return false;
                }
            }
            // A whole class mapped to "singleton" in target is impossible:
            // if two rows agree on X they cannot both be singletons in X∪Y
            // unless they disagree on Y — which the loop above catches via
            // usize::MAX != usize::MAX being false... handle explicitly:
            if first == usize::MAX && class.len() > 1 {
                return false;
            }
        }
        true
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * every class has at least 2 rows (singletons are stripped);
    /// * classes are strictly sorted internally and ordered by first element;
    /// * every row id is `< num_rows`;
    /// * classes are pairwise disjoint — together with the stripped
    ///   singletons they form a disjoint cover of the row ids.
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        let mut seen = std::collections::HashSet::new();
        let mut prev_first: Option<RowId> = None;
        for class in &self.classes {
            assert!(
                class.len() >= 2,
                "Pli: singleton class survived stripping: {class:?}"
            );
            for w in class.windows(2) {
                assert!(w[0] < w[1], "Pli: class not strictly sorted: {class:?}");
            }
            if let Some(p) = prev_first {
                assert!(p < class[0], "Pli: classes not ordered by first element");
            }
            prev_first = Some(class[0]);
            for &r in class {
                assert!(
                    r < self.num_rows,
                    "Pli: row id {r} out of bounds ({} rows)",
                    self.num_rows
                );
                assert!(seen.insert(r), "Pli: row {r} appears in two classes");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;
    use crate::schema::{Attribute, Schema};
    use crate::value::Value;
    use std::sync::Arc;

    fn rel(rows: &[(&str, &str, &str)]) -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("C"),
            ],
        ));
        let mut b = crate::relation::RelationBuilder::new(schema, pool);
        for (a, bb, c) in rows {
            let to_v = |s: &str| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::str(s.to_string())
                }
            };
            b.push_row(vec![to_v(a), to_v(bb), to_v(c)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn key_index_groups_rows() {
        let r = rel(&[("x", "1", "p"), ("x", "1", "q"), ("y", "2", "p")]);
        let idx = KeyIndex::build(&r, &[0, 1]);
        assert_eq!(idx.num_keys(), 2);
        let key = vec![r.code(0, 0), r.code(0, 1)];
        assert_eq!(idx.get(&key), &[0, 1]);
        assert_eq!(idx.get(&[999, 999]), &[] as &[RowId]);
    }

    #[test]
    fn key_index_skips_null_keys() {
        let r = rel(&[("x", "", "p"), ("x", "1", "q")]);
        let idx = KeyIndex::build(&r, &[0, 1]);
        assert_eq!(idx.num_keys(), 1);
    }

    #[test]
    fn key_index_probe_cross_relation() {
        // Two relations over the same pool: probe one with the other's row.
        let pool = Arc::new(Pool::new());
        let s1 = Arc::new(Schema::new("in", vec![Attribute::categorical("City")]));
        let s2 = Arc::new(Schema::new("m", vec![Attribute::categorical("Town")]));
        let mut b1 = crate::relation::RelationBuilder::new(s1, Arc::clone(&pool));
        b1.push_row(vec![Value::str("HZ")]).unwrap();
        let input = b1.finish();
        let mut b2 = crate::relation::RelationBuilder::new(s2, pool);
        b2.push_row(vec![Value::str("HZ")]).unwrap();
        b2.push_row(vec![Value::str("BJ")]).unwrap();
        let master = b2.finish();
        let idx = KeyIndex::build(&master, &[0]);
        let hit = idx.probe(&input, 0, &[0]).unwrap();
        assert_eq!(hit, &[0]);
    }

    #[test]
    fn group_index_counts_targets() {
        let r = rel(&[
            ("x", "1", "p"),
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("y", "2", "p"),
        ]);
        let g = GroupIndex::build(&r, &[0], 2);
        let key = vec![r.code(0, 0)];
        let dist = g.get(&key);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].1, 2); // "p" twice, sorted first
        assert_eq!(dist[1].1, 1);
    }

    #[test]
    fn group_index_null_target_counted_under_sentinel() {
        let r = rel(&[("x", "1", ""), ("x", "1", "q")]);
        let g = GroupIndex::build(&r, &[0], 2);
        let dist = g.get(&[r.code(0, 0)]);
        assert_eq!(dist.len(), 2);
        assert!(dist.iter().any(|&(c, n)| c == NULL_CODE && n == 1));
    }

    #[test]
    fn pli_strips_singletons() {
        let r = rel(&[("x", "1", "p"), ("x", "2", "q"), ("y", "3", "r")]);
        let p = Pli::build(&r, 0);
        assert_eq!(p.classes().len(), 1);
        assert_eq!(p.classes()[0], vec![0, 1]);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn pli_intersection() {
        let r = rel(&[
            ("x", "1", "p"),
            ("x", "1", "q"),
            ("x", "2", "p"),
            ("y", "1", "p"),
        ]);
        let pa = Pli::build(&r, 0); // {0,1,2}
        let pb = Pli::build(&r, 1); // {0,1,3}
        let pab = pa.intersect(&pb); // {0,1}
        assert_eq!(pab.classes(), &[vec![0, 1]]);
    }

    #[test]
    fn fd_validity_via_refines() {
        // A -> C holds; B -> C does not.
        let r = rel(&[("x", "1", "p"), ("x", "2", "p"), ("y", "1", "q")]);
        let pa = Pli::build(&r, 0);
        let pb = Pli::build(&r, 1);
        let pc = Pli::build(&r, 2);
        assert!(pa.refines(&pa.intersect(&pc)));
        assert!(!pb.refines(&pb.intersect(&pc)));
    }

    #[test]
    fn refines_handles_singleton_targets() {
        // Rows 0,1 agree on A but have distinct C values that are themselves
        // singletons in C's PLI — A -> C must be invalid.
        let r = rel(&[("x", "1", "p"), ("x", "2", "q")]);
        let pa = Pli::build(&r, 0);
        let pc = Pli::build(&r, 2);
        assert!(!pa.refines(&pa.intersect(&pc)));
    }

    /// Push `extra` onto `r` (empty strings are NULLs) and return the row
    /// count before the append — the `from_row` an incremental update needs.
    fn grow(r: &mut Relation, extra: &[(&str, &str, &str)]) -> RowId {
        let from_row = r.num_rows();
        for (a, b, c) in extra {
            let to_v = |s: &str| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::str(s.to_string())
                }
            };
            r.push_row(vec![to_v(a), to_v(b), to_v(c)]).unwrap();
        }
        from_row
    }

    #[test]
    fn key_index_append_equals_rebuild() {
        let mut r = rel(&[("x", "1", "p"), ("y", "2", "q")]);
        let mut idx = KeyIndex::build(&r, &[0, 1]);
        // New key, existing key, and a NULL-key row that must be skipped.
        let from = grow(&mut r, &[("x", "1", "r"), ("z", "9", "s"), ("x", "", "t")]);
        idx.apply_append(&r, from).unwrap();
        assert_eq!(idx, KeyIndex::build(&r, &[0, 1]));
        assert_eq!(idx.generation(), r.generation());
    }

    #[test]
    fn group_index_append_equals_rebuild_including_resort() {
        let mut r = rel(&[("x", "1", "p"), ("x", "1", "q"), ("x", "1", "q")]);
        let mut g = GroupIndex::build(&r, &[0], 2);
        // Two more "p"s flip the distribution's order: p overtakes q.
        let from = grow(&mut r, &[("x", "1", "p"), ("x", "1", "p"), ("y", "2", "")]);
        g.apply_append(&r, from).unwrap();
        assert_eq!(g, GroupIndex::build(&r, &[0], 2));
        let dist = g.get(&[r.code(0, 0)]);
        assert_eq!(dist[0], (r.code(0, 2), 3)); // p first after the re-sort
        assert_eq!(g.generation(), r.generation());
    }

    #[test]
    fn pli_append_equals_rebuild_and_promotes_singletons() {
        let mut r = rel(&[("x", "1", "p"), ("y", "2", "q")]);
        let mut p = Pli::build(&r, 0);
        assert!(p.classes().is_empty()); // both rows are singletons
                                         // "y" gains a partner: its stripped singleton must become a class.
        let from = grow(&mut r, &[("y", "3", "r"), ("z", "4", "s")]);
        p.apply_append(&r, from).unwrap();
        assert_eq!(p, Pli::build(&r, 0));
        assert_eq!(p.classes(), &[vec![1, 2]]);
        assert_eq!(p.generation(), r.generation());
    }

    #[test]
    fn apply_append_rejects_wrong_from_row() {
        let mut r = rel(&[("x", "1", "p"), ("y", "2", "q")]);
        let mut idx = KeyIndex::build(&r, &[0]);
        let _ = grow(&mut r, &[("z", "3", "r")]);
        // Claiming the wrong append boundary would corrupt the index.
        assert!(idx.apply_append(&r, 0).is_err());
        assert!(idx.apply_append(&r, 3).is_err());
        assert!(idx.apply_append(&r, 2).is_ok());
    }

    #[test]
    fn derived_pli_is_not_appendable() {
        let mut r = rel(&[("x", "1", "p"), ("x", "1", "q")]);
        let mut derived = Pli::build(&r, 0).intersect(&Pli::build(&r, 1));
        let from = grow(&mut r, &[("x", "1", "r")]);
        assert!(matches!(
            derived.apply_append(&r, from),
            Err(Error::NotAppendable(_))
        ));
    }

    #[test]
    fn empty_append_is_a_no_op() {
        let r = rel(&[("x", "1", "p"), ("x", "1", "q")]);
        let mut idx = KeyIndex::build(&r, &[0]);
        let mut g = GroupIndex::build(&r, &[0], 2);
        let mut p = Pli::build(&r, 0);
        let n = r.num_rows();
        idx.apply_append(&r, n).unwrap();
        g.apply_append(&r, n).unwrap();
        p.apply_append(&r, n).unwrap();
        assert_eq!(idx, KeyIndex::build(&r, &[0]));
        assert_eq!(g, GroupIndex::build(&r, &[0], 2));
        assert_eq!(p, Pli::build(&r, 0));
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    #[should_panic(expected = "stale index")]
    fn stale_index_probe_panics_under_debug_invariants() {
        let mut r = rel(&[("x", "1", "p")]);
        let idx = KeyIndex::build(&r, &[0]);
        let _ = grow(&mut r, &[("y", "2", "q")]);
        idx.assert_fresh(&r);
    }
}
