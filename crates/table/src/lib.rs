#![forbid(unsafe_code)]
//! # er-table — relational substrate for editing-rule discovery
//!
//! This crate provides the in-memory relational layer every other crate in the
//! workspace builds on:
//!
//! * [`Value`] — a typed cell value (`Null`, `Int`, `Float`, `Str`) with
//!   bit-exact float hashing so every value can live in a dictionary.
//! * [`Pool`] — a global, append-only value interner. All relations created
//!   from the same pool share value codes, so cross-relation equality
//!   (`t[X] = t_m[X_m]`, the heart of editing-rule semantics) is a cheap
//!   `u32` comparison.
//! * [`Schema`] / [`Attribute`] — named, typed attributes with a
//!   `continuous` flag consumed by RLMiner's state encoder.
//! * [`Relation`] — a dictionary-encoded columnar table with O(1) cell
//!   access, row gather/sampling, and in-place cell updates (used by the
//!   repair engine and the error injector).
//! * [`index`] — hash indexes over attribute lists and stripped partition
//!   (PLI) indexes used by the CFD miner.
//! * [`csv`] — a dependency-free CSV reader/writer for loading the real
//!   datasets when available.
//!
//! ```
//! use er_table::{Pool, Schema, Attribute, RelationBuilder, Value};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(Pool::new());
//! let schema = Arc::new(Schema::new(
//!     "people",
//!     vec![
//!         Attribute::categorical("city"),
//!         Attribute::categorical("zip"),
//!     ],
//! ));
//! let mut b = RelationBuilder::new(schema, Arc::clone(&pool));
//! b.push_row(vec![Value::str("HZ"), Value::str("31200")]).unwrap();
//! b.push_row(vec![Value::str("BJ"), Value::Null]).unwrap();
//! let rel = b.finish();
//! assert_eq!(rel.num_rows(), 2);
//! assert_eq!(rel.value(0, 0), Value::str("HZ"));
//! assert!(rel.is_null(1, 1));
//! ```

pub mod csv;
pub mod error;
pub mod index;
pub mod pool;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod value;

pub use error::{Error, Result};
pub use index::{GroupIndex, KeyIndex, Pli};
pub use pool::{Code, Pool, NULL_CODE};
pub use relation::{Relation, RelationBuilder, RowId};
pub use schema::{AttrId, Attribute, DataType, Schema};
pub use stats::ColumnStats;
pub use value::Value;
