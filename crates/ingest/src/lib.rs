#![forbid(unsafe_code)]
//! er-ingest — out-of-core streaming ingestion and the dataset registry.
//!
//! The layer between raw bytes and the repair engine. Three pieces:
//!
//! * [`ChunkReader`] — splits any byte source into chunks of whole records
//!   under a memory bound, using the *same* record-boundary state machine as
//!   the in-memory CSV loader ([`er_table::csv::RecordScanner`]), with typed
//!   [`IngestError`]s for bad UTF-8, truncated input, and oversized records.
//! * [`RowStream`] / [`ingest_relation`] / [`ingest_append`] — format-aware
//!   (CSV or NDJSON) streaming with schema inference or an explicit-schema
//!   override. Record parsing fans out across an er-par pool; every pool
//!   interning and index update happens sequentially in record order, so a
//!   chunked load is byte-identical to a whole-file build at any thread
//!   count (enforced by `tests/equivalence.rs` at 1/2/8 threads).
//! * [`DatasetRegistry`] — named dataset configs (generator shape, error
//!   model, scale knob, or an on-disk CSV pair) behind one [`Dataset`]
//!   trait, so `experiments` and `er-serve` sweep scenarios by name.
//!
//! DESIGN.md §15 documents the pipeline and the chunk-commit determinism
//! argument.

mod chunk;
mod error;
mod registry;
mod stream;

pub use chunk::{Chunk, ChunkConfig, ChunkReader};
pub use error::IngestError;
pub use registry::{Dataset, DatasetRegistry, ScaleKnobs};
pub use stream::{
    ingest_append, ingest_relation, Format, IngestConfig, IngestStats, RowStream, SchemaMode,
};
