//! A registry of named dataset configs.
//!
//! Everything the experiment harness and the serve CLI can load — the
//! synthetic generators, the paper's Figure-1 example, and on-disk CSV pairs
//! streamed through the chunked loader — lives behind one [`Dataset`] trait,
//! so scenarios are swept by *name* with a scale knob and a seed instead of
//! per-source plumbing. Extra datasets come from a JSON config file (see
//! `examples/datasets.json` and the README registry reference).

use crate::error::IngestError;
use crate::stream::{ingest_relation, Format, IngestConfig, SchemaMode};
use er_datagen::{CsvScenarioOptions, DatasetKind, NoiseConfig, Scenario, ScenarioConfig};
use er_table::Pool;
use serde_json::Value as Json;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The sweep axes every dataset accepts.
#[derive(Debug, Clone, Copy)]
pub struct ScaleKnobs {
    /// Multiplier on the dataset's base input/master sizes (generators
    /// only; file-backed datasets have the size their files have).
    pub scale: f64,
    /// Sampling/noise seed (generators only).
    pub seed: u64,
}

impl Default for ScaleKnobs {
    fn default() -> Self {
        ScaleKnobs {
            scale: 1.0,
            seed: 1,
        }
    }
}

/// One named dataset the harness can build on demand.
pub trait Dataset: Send + Sync {
    /// Registry lookup key.
    fn name(&self) -> &str;
    /// One-line human description for listings.
    fn describe(&self) -> String;
    /// Materialize the scenario at the given scale/seed.
    fn build(&self, knobs: &ScaleKnobs) -> Result<Scenario, IngestError>;
}

/// The paper's worked Figure-1 example (fixed size; knobs ignored).
struct Figure1Dataset;

impl Dataset for Figure1Dataset {
    fn name(&self) -> &str {
        "figure1"
    }

    fn describe(&self) -> String {
        "the paper's Figure-1 worked example (3 input + 4 master rows, fixed)".to_string()
    }

    fn build(&self, _knobs: &ScaleKnobs) -> Result<Scenario, IngestError> {
        Ok(er_datagen::figure1())
    }
}

/// A synthetic generator with optional config-file overrides.
struct SyntheticDataset {
    name: String,
    kind: DatasetKind,
    /// Extra multiplier from the config entry, composed with the knob.
    base_scale: f64,
    noise: Option<NoiseConfig>,
    labelled: Option<bool>,
}

impl SyntheticDataset {
    fn plain(kind: DatasetKind) -> Self {
        SyntheticDataset {
            name: kind.name().to_string(),
            kind,
            base_scale: 1.0,
            noise: None,
            labelled: None,
        }
    }
}

/// Scale a base size, keeping at least a workable floor of rows.
fn scaled(base: usize, factor: f64) -> usize {
    ((base as f64 * factor) as usize).max(16)
}

impl Dataset for SyntheticDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> String {
        let base = self.kind.small_config();
        format!(
            "synthetic {} (base {}x{} rows, scalable)",
            self.kind.name(),
            scaled(base.input_size, self.base_scale),
            scaled(base.master_size, self.base_scale),
        )
    }

    fn build(&self, knobs: &ScaleKnobs) -> Result<Scenario, IngestError> {
        let base = self.kind.small_config();
        let factor = self.base_scale * knobs.scale;
        let config = ScenarioConfig {
            input_size: scaled(base.input_size, factor),
            master_size: scaled(base.master_size, factor),
            noise: self.noise.unwrap_or(base.noise),
            labelled: self.labelled.unwrap_or(base.labelled),
            seed: knobs.seed,
            ..base
        };
        Ok(self.kind.build(config))
    }
}

/// An on-disk CSV pair streamed through the chunked loader.
struct FileDataset {
    name: String,
    input: PathBuf,
    master: PathBuf,
    options: CsvScenarioOptions,
    config: IngestConfig,
}

impl Dataset for FileDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> String {
        format!(
            "csv pair {} + {} (chunked streaming load)",
            self.input.display(),
            self.master.display()
        )
    }

    fn build(&self, _knobs: &ScaleKnobs) -> Result<Scenario, IngestError> {
        let pool = Arc::new(Pool::new());
        let open = |path: &Path| {
            std::fs::File::open(path).map_err(|e| IngestError::Schema {
                message: format!("cannot open {}: {e}", path.display()),
            })
        };
        let stem = |path: &Path| {
            path.file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("relation")
                .to_string()
        };
        let (input, _) = ingest_relation(
            &stem(&self.input),
            open(&self.input)?,
            Arc::clone(&pool),
            &self.config,
        )?;
        let (master, _) =
            ingest_relation(&stem(&self.master), open(&self.master)?, pool, &self.config)?;
        er_datagen::scenario_from_relations(input, master, &self.options).map_err(|e| {
            IngestError::Schema {
                message: e.to_string(),
            }
        })
    }
}

/// Named datasets, looked up by exact name.
pub struct DatasetRegistry {
    entries: Vec<Box<dyn Dataset>>,
}

impl DatasetRegistry {
    /// The built-in catalog: `figure1` plus the four paper datasets
    /// (`adult`, `covid`, `nursery`, `location`) as scalable generators.
    pub fn builtin() -> Self {
        let mut entries: Vec<Box<dyn Dataset>> = vec![Box::new(Figure1Dataset)];
        for kind in DatasetKind::all() {
            entries.push(Box::new(SyntheticDataset::plain(kind)));
        }
        DatasetRegistry { entries }
    }

    /// Add (or shadow — later registrations win) a dataset.
    pub fn register(&mut self, dataset: Box<dyn Dataset>) {
        self.entries.retain(|d| d.name() != dataset.name());
        self.entries.push(dataset);
    }

    /// Look up a dataset by name.
    pub fn get(&self, name: &str) -> Option<&dyn Dataset> {
        self.entries
            .iter()
            .find(|d| d.name() == name)
            .map(|d| d.as_ref())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|d| d.name()).collect()
    }

    /// Build a named scenario, with a typed unknown-name error that lists
    /// what the registry actually holds.
    pub fn build(&self, name: &str, knobs: &ScaleKnobs) -> Result<Scenario, IngestError> {
        match self.get(name) {
            Some(d) => d.build(knobs),
            None => Err(IngestError::Schema {
                message: format!(
                    "unknown dataset {name:?}; registered: {}",
                    self.names().join(", ")
                ),
            }),
        }
    }

    /// Extend the registry from a JSON config file.
    ///
    /// ```json
    /// {"datasets": [
    ///   {"name": "covid-4x", "generator": "covid", "scale": 4.0,
    ///    "noise_rate": 0.15, "labelled": true},
    ///   {"name": "mine", "input": "data/in.csv", "master": "data/master.csv",
    ///    "target": "Condition", "master_target": "Condition",
    ///    "match": [["Name", "Name"]], "support": 5, "chunk_bytes": 1048576}
    /// ]}
    /// ```
    ///
    /// Generator entries reference a built-in generator by name and may
    /// override scale, noise rate, and labelling; file entries name a CSV
    /// pair (paths relative to the config file) plus the target attribute
    /// and optional match pairs / support threshold / chunk size.
    pub fn load_config(&mut self, path: impl AsRef<Path>) -> Result<usize, IngestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| IngestError::Schema {
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        self.extend_from_json(&text, base)
    }

    /// [`load_config`](Self::load_config) on already-read text; `base`
    /// anchors relative CSV paths. Returns how many datasets were added.
    pub fn extend_from_json(&mut self, text: &str, base: &Path) -> Result<usize, IngestError> {
        let bad = |message: String| IngestError::Schema { message };
        let json: Json =
            serde_json::from_str(text).map_err(|e| bad(format!("config parse: {e}")))?;
        let Some(list) = json.get("datasets").and_then(|d| d.as_array()) else {
            return Err(bad("config must have a \"datasets\" array".to_string()));
        };
        let mut added = 0usize;
        for (i, entry) in list.iter().enumerate() {
            let at = |field: &str| format!("datasets[{i}].{field}");
            let name = entry
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| bad(format!("{} must be a string", at("name"))))?
                .to_string();
            if let Some(generator) = entry.get("generator") {
                let gen_name = generator
                    .as_str()
                    .ok_or_else(|| bad(format!("{} must be a string", at("generator"))))?;
                let kind = DatasetKind::all()
                    .into_iter()
                    .find(|k| k.name() == gen_name)
                    .ok_or_else(|| {
                        bad(format!(
                            "{}: unknown generator {gen_name:?}",
                            at("generator")
                        ))
                    })?;
                let noise = number(entry, "noise_rate")?.map(NoiseConfig::rate);
                let labelled = match entry.get("labelled") {
                    None => None,
                    Some(Json::Bool(b)) => Some(*b),
                    Some(other) => {
                        return Err(bad(format!(
                            "{} must be a bool, got {}",
                            at("labelled"),
                            other.kind()
                        )))
                    }
                };
                self.register(Box::new(SyntheticDataset {
                    name,
                    kind,
                    base_scale: number(entry, "scale")?.unwrap_or(1.0),
                    noise,
                    labelled,
                }));
            } else if entry.get("input").is_some() {
                let path_field = |field: &str| -> Result<PathBuf, IngestError> {
                    let raw = entry
                        .get(field)
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| bad(format!("{} must be a string", at(field))))?;
                    Ok(base.join(raw))
                };
                let target = entry
                    .get("target")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| bad(format!("{} must be a string", at("target"))))?;
                let master_target = entry
                    .get("master_target")
                    .and_then(|v| v.as_str())
                    .unwrap_or(target);
                let mut options = CsvScenarioOptions::new(name.clone(), target, master_target);
                if let Some(pairs) = entry.get("match") {
                    let pairs = pairs
                        .as_array()
                        .ok_or_else(|| bad(format!("{} must be an array", at("match"))))?;
                    for pair in pairs {
                        match pair.as_array() {
                            Some([a, b]) => match (a.as_str(), b.as_str()) {
                                (Some(a), Some(b)) => {
                                    options.match_pairs.push((a.to_string(), b.to_string()));
                                }
                                _ => {
                                    return Err(bad(format!(
                                        "{} entries must be string pairs",
                                        at("match")
                                    )))
                                }
                            },
                            _ => {
                                return Err(bad(format!(
                                    "{} entries must be [input, master] pairs",
                                    at("match")
                                )))
                            }
                        }
                    }
                }
                options.support_threshold = integer(entry, "support")?;
                let mut config = IngestConfig {
                    format: Format::Csv,
                    schema: SchemaMode::Infer,
                    ..IngestConfig::default()
                };
                if let Some(bytes) = integer(entry, "chunk_bytes")? {
                    config.chunk.chunk_bytes = bytes;
                }
                self.register(Box::new(FileDataset {
                    name,
                    input: path_field("input")?,
                    master: path_field("master")?,
                    options,
                    config,
                }));
            } else {
                return Err(bad(format!(
                    "datasets[{i}] needs either \"generator\" or \"input\"/\"master\""
                )));
            }
            added += 1;
        }
        Ok(added)
    }
}

fn number(entry: &Json, field: &str) -> Result<Option<f64>, IngestError> {
    match entry.get(field) {
        None => Ok(None),
        Some(Json::Int(i)) => Ok(Some(*i as f64)),
        Some(Json::UInt(u)) => Ok(Some(*u as f64)),
        Some(Json::Float(f)) => Ok(Some(*f)),
        Some(other) => Err(IngestError::Schema {
            message: format!("{field} must be a number, got {}", other.kind()),
        }),
    }
}

fn integer(entry: &Json, field: &str) -> Result<Option<usize>, IngestError> {
    match entry.get(field) {
        None => Ok(None),
        Some(Json::Int(i)) if *i >= 0 => Ok(Some(*i as usize)),
        Some(Json::UInt(u)) => usize::try_from(*u)
            .map(Some)
            .map_err(|_| IngestError::Schema {
                message: format!("{field} out of range"),
            }),
        Some(other) => Err(IngestError::Schema {
            message: format!(
                "{field} must be a non-negative integer, got {}",
                other.kind()
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names() {
        let reg = DatasetRegistry::builtin();
        let names = reg.names();
        assert!(names.contains(&"figure1"));
        assert!(names.contains(&"adult"));
        assert!(names.contains(&"covid"));
        assert!(names.contains(&"nursery"));
        assert!(names.contains(&"location"));
    }

    #[test]
    fn builds_by_name_with_knobs() {
        let reg = DatasetRegistry::builtin();
        let knobs = ScaleKnobs {
            scale: 0.5,
            seed: 3,
        };
        let small = reg.build("covid", &knobs).unwrap();
        let big = reg
            .build(
                "covid",
                &ScaleKnobs {
                    scale: 1.0,
                    seed: 3,
                },
            )
            .unwrap();
        assert!(small.task.input().num_rows() < big.task.input().num_rows());
    }

    #[test]
    fn same_name_and_knobs_is_deterministic() {
        let reg = DatasetRegistry::builtin();
        let knobs = ScaleKnobs::default();
        let a = reg.build("nursery", &knobs).unwrap();
        let b = reg.build("nursery", &knobs).unwrap();
        assert_eq!(a.task.input().num_rows(), b.task.input().num_rows());
        for row in 0..a.task.input().num_rows() {
            for attr in 0..a.task.input().num_attrs() {
                assert_eq!(
                    a.task.input().value(row, attr),
                    b.task.input().value(row, attr)
                );
            }
        }
    }

    #[test]
    fn unknown_name_lists_catalog() {
        let reg = DatasetRegistry::builtin();
        let err = reg.build("nope", &ScaleKnobs::default()).unwrap_err();
        assert!(err.to_string().contains("figure1"));
    }

    #[test]
    fn config_registers_generator_variants() {
        let mut reg = DatasetRegistry::builtin();
        let added = reg
            .extend_from_json(
                r#"{"datasets": [
                    {"name": "covid-tiny", "generator": "covid",
                     "scale": 0.25, "noise_rate": 0.3, "labelled": true}
                ]}"#,
                Path::new("."),
            )
            .unwrap();
        assert_eq!(added, 1);
        let scenario = reg.build("covid-tiny", &ScaleKnobs::default()).unwrap();
        assert!(scenario.task.input().num_rows() > 0);
    }

    #[test]
    fn config_rejects_malformed_entries() {
        let mut reg = DatasetRegistry::builtin();
        assert!(reg
            .extend_from_json(r#"{"datasets": [{"name": "x"}]}"#, Path::new("."))
            .is_err());
        assert!(reg
            .extend_from_json(r#"{"nope": 1}"#, Path::new("."))
            .is_err());
    }
}
