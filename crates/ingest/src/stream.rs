//! Format-aware streaming: chunked records → typed relation rows.
//!
//! [`RowStream`] resolves a schema from the first record (or validates an
//! explicit one), then turns each [`ChunkReader`] chunk into a batch of
//! [`Value`] rows. Record parsing inside a chunk fans out across an er-par
//! [`WorkerPool`] — parsing touches no shared state, so any thread count
//! yields the same rows in the same order — and all pool interning happens
//! sequentially in the caller's commit, which is what makes chunked ingest
//! byte-identical to a whole-file build (DESIGN.md §15).

use crate::chunk::{Chunk, ChunkConfig, ChunkReader};
use crate::error::IngestError;
use er_incr::IncrEngine;
use er_par::WorkerPool;
use er_table::csv::{check_header, parse_field, split_record};
use er_table::{Attribute, Pool, Relation, RelationBuilder, Schema, Value};
use serde_json::Value as Json;
use std::io::Read;
use std::sync::Arc;

/// Input wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// RFC-4180 CSV with a mandatory header record.
    Csv,
    /// Newline-delimited JSON: one object (or, under an explicit schema,
    /// one positional array) per line.
    Ndjson,
}

/// Where the schema comes from.
#[derive(Debug, Clone)]
pub enum SchemaMode {
    /// Infer an all-categorical schema from the CSV header or the first
    /// NDJSON object's key order.
    Infer,
    /// Use this schema; the CSV header (or NDJSON keys) must match its
    /// attribute names, and continuous attributes parse numerically.
    Explicit(Arc<Schema>),
}

/// Knobs for one streaming load.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Wire format. Default CSV.
    pub format: Format,
    /// Schema source. Default inference.
    pub schema: SchemaMode,
    /// Chunking and record-size bounds.
    pub chunk: ChunkConfig,
    /// Worker threads for intra-chunk record parsing (0 = `ER_THREADS` or
    /// sequential). Output is identical at any setting.
    pub threads: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            format: Format::Csv,
            schema: SchemaMode::Infer,
            chunk: ChunkConfig::default(),
            threads: 0,
        }
    }
}

/// Counters for one completed (or in-flight) load.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Data rows produced (header excluded).
    pub rows: usize,
    /// Chunks committed.
    pub chunks: usize,
    /// Input bytes consumed.
    pub bytes: usize,
    /// High-water mark of the raw byte buffer (the bounded-memory claim).
    pub peak_buffer_bytes: usize,
    /// Largest number of rows resident in a single chunk batch.
    pub peak_chunk_rows: usize,
}

/// A record-level parse failure, attributed to a record number by the
/// sequential commit loop (the parallel parse phase has no global indices).
enum RecordError {
    Csv(String),
    Json(String),
    Arity { expected: usize, got: usize },
    Cell { attr: usize, message: String },
}

impl RecordError {
    fn at(self, record: usize) -> IngestError {
        match self {
            RecordError::Csv(message) => IngestError::Csv { record, message },
            RecordError::Json(message) => IngestError::Json { record, message },
            RecordError::Arity { expected, got } => IngestError::ArityMismatch {
                record,
                expected,
                got,
            },
            RecordError::Cell { attr, message } => IngestError::UnparseableCell {
                record,
                attr,
                message,
            },
        }
    }
}

/// Streams a byte source as schema-typed row batches.
pub struct RowStream<R> {
    reader: ChunkReader<R>,
    format: Format,
    requested: SchemaMode,
    name: String,
    pool: WorkerPool,
    schema: Option<Arc<Schema>>,
    header_seen: bool,
    stats: IngestStats,
}

impl<R: Read> RowStream<R> {
    /// Wrap a byte source. `name` names the inferred schema (explicit
    /// schemas keep their own name).
    pub fn new(name: &str, src: R, config: &IngestConfig) -> Self {
        let reader = match config.format {
            Format::Csv => ChunkReader::new(src, config.chunk.clone()),
            Format::Ndjson => ChunkReader::new_lines(src, config.chunk.clone()),
        };
        RowStream {
            reader,
            format: config.format,
            requested: config.schema.clone(),
            name: name.to_string(),
            pool: WorkerPool::new(config.threads),
            schema: None,
            header_seen: false,
            stats: IngestStats::default(),
        }
    }

    /// The resolved schema — available once the first batch (or a
    /// header-only file) has been read.
    pub fn schema(&self) -> Option<&Arc<Schema>> {
        self.schema.as_ref()
    }

    /// Counters so far. `peak_buffer_bytes` is live even mid-stream.
    pub fn stats(&self) -> IngestStats {
        let mut stats = self.stats.clone();
        stats.peak_buffer_bytes = self.reader.peak_buffer_bytes();
        stats
    }

    /// Pull the next batch of typed rows, or `None` at end of input.
    /// Batches arrive in file order; rows within a batch in record order.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Vec<Value>>>, IngestError> {
        loop {
            let Some(chunk) = self.reader.next_chunk()? else {
                if !self.header_seen {
                    // A zero-record CSV has no header to infer from; an
                    // explicit schema makes an empty file a valid empty load.
                    match (&self.requested, self.format) {
                        (SchemaMode::Explicit(schema), _) => {
                            self.schema = Some(Arc::clone(schema));
                            self.header_seen = true;
                        }
                        (SchemaMode::Infer, _) => {
                            return Err(IngestError::Schema {
                                message: "empty input: nothing to infer a schema from".to_string(),
                            });
                        }
                    }
                }
                return Ok(None);
            };
            self.stats.bytes += chunk.bytes;
            let skip = if self.header_seen {
                0
            } else {
                let skip = self.resolve_schema(&chunk)?;
                self.header_seen = true;
                skip
            };
            if chunk.records.len() <= skip {
                self.stats.chunks += 1;
                continue; // header-only chunk: keep pulling
            }
            let rows = self.parse_chunk(&chunk, skip)?;
            self.stats.chunks += 1;
            self.stats.rows += rows.len();
            self.stats.peak_chunk_rows = self.stats.peak_chunk_rows.max(rows.len());
            return Ok(Some(rows));
        }
    }

    /// Resolve the schema from the first chunk; returns how many leading
    /// records of that chunk are header (1 for CSV, 0 for NDJSON).
    fn resolve_schema(&mut self, chunk: &Chunk) -> Result<usize, IngestError> {
        match self.format {
            Format::Csv => {
                let header = split_record(&chunk.records[0], 1).map_err(|e| IngestError::Csv {
                    record: chunk.first_record,
                    message: csv_message(e),
                })?;
                match &self.requested {
                    SchemaMode::Explicit(schema) => {
                        check_against_schema(&header, schema)?;
                        self.schema = Some(Arc::clone(schema));
                    }
                    SchemaMode::Infer => {
                        check_header(&header).map_err(|e| IngestError::Schema {
                            message: csv_message(e),
                        })?;
                        self.schema = Some(Arc::new(Schema::new(
                            &self.name,
                            header
                                .iter()
                                .map(|h| Attribute::categorical(h.trim()))
                                .collect(),
                        )));
                    }
                }
                Ok(1)
            }
            Format::Ndjson => {
                match &self.requested {
                    SchemaMode::Explicit(schema) => self.schema = Some(Arc::clone(schema)),
                    SchemaMode::Infer => {
                        let json: Json = serde_json::from_str(&chunk.records[0]).map_err(|e| {
                            IngestError::Json {
                                record: chunk.first_record,
                                message: e.to_string(),
                            }
                        })?;
                        let Some(fields) = json.as_object() else {
                            return Err(IngestError::Schema {
                                message: format!(
                                    "schema inference needs an object record, got {}",
                                    json.kind()
                                ),
                            });
                        };
                        let keys: Vec<String> = fields.iter().map(|(k, _)| k.clone()).collect();
                        check_header(&keys).map_err(|e| IngestError::Schema {
                            message: csv_message(e),
                        })?;
                        self.schema = Some(Arc::new(Schema::new(
                            &self.name,
                            keys.iter()
                                .map(|k| Attribute::categorical(k.as_str()))
                                .collect(),
                        )));
                    }
                }
                Ok(0)
            }
        }
    }

    fn parse_chunk(&self, chunk: &Chunk, skip: usize) -> Result<Vec<Vec<Value>>, IngestError> {
        let Some(schema) = self.schema.as_ref() else {
            return Err(IngestError::Schema {
                message: "internal: parse before schema resolution".to_string(),
            });
        };
        let format = self.format;
        let records = &chunk.records[skip..];
        let parsed: Vec<Result<Vec<Value>, RecordError>> = self
            .pool
            .map(records, |body| parse_record(body, format, schema));
        let mut rows = Vec::with_capacity(parsed.len());
        for (i, row) in parsed.into_iter().enumerate() {
            rows.push(row.map_err(|e| e.at(chunk.first_record + skip + i))?);
        }
        Ok(rows)
    }
}

/// Extract the message of a table-layer CSV error without its line number —
/// the streaming path reports record numbers, which stay meaningful across
/// chunk boundaries where intra-record line numbers do not.
fn csv_message(e: er_table::Error) -> String {
    match e {
        er_table::Error::Csv { message, .. } => message,
        other => other.to_string(),
    }
}

fn check_against_schema(header: &[String], schema: &Schema) -> Result<(), IngestError> {
    if header.len() != schema.arity() {
        return Err(IngestError::Schema {
            message: format!(
                "header has {} columns, schema expects {}",
                header.len(),
                schema.arity()
            ),
        });
    }
    for (i, h) in header.iter().enumerate() {
        if h.trim() != schema.attr(i).name {
            return Err(IngestError::Schema {
                message: format!(
                    "header column {} is {:?}, schema expects {:?}",
                    i,
                    h.trim(),
                    schema.attr(i).name
                ),
            });
        }
    }
    Ok(())
}

fn parse_record(body: &str, format: Format, schema: &Schema) -> Result<Vec<Value>, RecordError> {
    match format {
        Format::Csv => parse_csv_record(body, schema),
        Format::Ndjson => parse_ndjson_record(body, schema),
    }
}

fn parse_csv_record(body: &str, schema: &Schema) -> Result<Vec<Value>, RecordError> {
    let fields = split_record(body, 1).map_err(|e| RecordError::Csv(csv_message(e)))?;
    if fields.len() != schema.arity() {
        return Err(RecordError::Arity {
            expected: schema.arity(),
            got: fields.len(),
        });
    }
    Ok(fields
        .iter()
        .enumerate()
        .map(|(attr, raw)| parse_field(raw, schema.attr(attr).is_continuous()))
        .collect())
}

fn parse_ndjson_record(body: &str, schema: &Schema) -> Result<Vec<Value>, RecordError> {
    let json: Json = serde_json::from_str(body).map_err(|e| RecordError::Json(e.to_string()))?;
    match &json {
        Json::Array(items) => {
            if items.len() != schema.arity() {
                return Err(RecordError::Arity {
                    expected: schema.arity(),
                    got: items.len(),
                });
            }
            items
                .iter()
                .enumerate()
                .map(|(attr, v)| {
                    json_cell(v, schema.attr(attr).is_continuous())
                        .map_err(|message| RecordError::Cell { attr, message })
                })
                .collect()
        }
        Json::Object(fields) => {
            for (key, _) in fields {
                if !schema.attributes().iter().any(|a| a.name == *key) {
                    return Err(RecordError::Json(format!("unknown key {key:?}")));
                }
            }
            schema
                .attributes()
                .iter()
                .enumerate()
                .map(|(attr, a)| match json.get(&a.name) {
                    None => Ok(Value::Null),
                    Some(v) => json_cell(v, a.is_continuous())
                        .map_err(|message| RecordError::Cell { attr, message }),
                })
                .collect()
        }
        other => Err(RecordError::Json(format!(
            "expected object or array record, got {}",
            other.kind()
        ))),
    }
}

/// Convert one NDJSON cell, normalizing NULLs exactly like the CSV path:
/// JSON `null` and blank strings both become [`Value::Null`], and string
/// cells go through the same [`parse_field`] the CSV loader uses.
fn json_cell(v: &Json, continuous: bool) -> Result<Value, String> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Str(s) => Ok(parse_field(s, continuous)),
        Json::Int(i) => Ok(if continuous {
            Value::Int(*i)
        } else {
            Value::str(i.to_string())
        }),
        Json::UInt(u) => match i64::try_from(*u) {
            Ok(i) => Ok(if continuous {
                Value::Int(i)
            } else {
                Value::str(i.to_string())
            }),
            Err(_) => Err(format!("integer {u} out of i64 range")),
        },
        Json::Float(f) => Ok(if continuous {
            Value::Float(*f)
        } else {
            Value::str(format!("{f}"))
        }),
        Json::Bool(_) | Json::Array(_) | Json::Object(_) => {
            Err(format!("cannot ingest a {} cell", v.kind()))
        }
    }
}

/// Stream a source into a fresh [`Relation`] chunk by chunk.
///
/// Record parsing fans out across the configured worker pool, but every
/// [`Pool`] interning happens here, sequentially, in record order — so the
/// result (dictionary order, column codes, generation) is byte-identical to
/// [`er_table::csv::read_str`] on the concatenated file at any thread count.
pub fn ingest_relation<R: Read>(
    name: &str,
    src: R,
    pool: Arc<Pool>,
    config: &IngestConfig,
) -> Result<(Relation, IngestStats), IngestError> {
    let mut stream = RowStream::new(name, src, config);
    let mut builder: Option<RelationBuilder> = None;
    let mut committed = 0usize;
    while let Some(rows) = stream.next_batch()? {
        if builder.is_none() {
            builder = stream
                .schema()
                .map(|s| RelationBuilder::new(Arc::clone(s), Arc::clone(&pool)));
        }
        let Some(b) = builder.as_mut() else {
            return Err(IngestError::Schema {
                message: "internal: rows before schema resolution".to_string(),
            });
        };
        for row in rows {
            b.push_row(row).map_err(|e| IngestError::Append {
                message: format!("row {}: {e}", committed + 1),
            })?;
            committed += 1;
        }
    }
    let builder = match builder {
        Some(b) => b,
        None => match stream.schema() {
            // Header-only file (or empty NDJSON under an explicit schema):
            // a valid zero-row relation.
            Some(s) => RelationBuilder::new(Arc::clone(s), pool),
            None => {
                return Err(IngestError::Schema {
                    message: "no schema resolved from empty input".to_string(),
                })
            }
        },
    };
    Ok((builder.finish(), stream.stats()))
}

/// Stream a source into a warm [`IncrEngine`] chunk by chunk.
///
/// The source must carry master-schema records; each chunk commits through
/// [`IncrEngine::append_rows`], delta-updating the warmed indexes. The
/// resulting master (pool, columns, generation, indexes) is byte-identical
/// to appending all rows at once, and — by `apply_append`'s
/// equals-rebuild contract — to a whole-file rebuild.
pub fn ingest_append<R: Read>(
    engine: &mut IncrEngine,
    src: R,
    config: &IngestConfig,
) -> Result<IngestStats, IngestError> {
    let schema = Arc::clone(engine.master().schema());
    let mut config = config.clone();
    config.schema = SchemaMode::Explicit(schema);
    let mut stream = RowStream::new("append", src, &config);
    while let Some(rows) = stream.next_batch()? {
        engine.append_rows(&rows).map_err(|e| IngestError::Append {
            message: e.to_string(),
        })?;
    }
    Ok(stream.stats())
}
