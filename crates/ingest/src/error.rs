//! Typed ingestion errors.
//!
//! Every failure names the 1-based record number (header included) where it
//! happened, so a multi-gigabyte load that dies on record 48-million is
//! debuggable without bisecting the file.

use std::fmt;

/// Errors from chunked streaming ingestion.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A record is not valid UTF-8. Unlike the lossy whole-file loader, the
    /// streaming path refuses rather than silently substituting U+FFFD:
    /// out-of-core loads are production feeds, not exploratory ones.
    BadUtf8 {
        /// 1-based record number (the header is record 1).
        record: usize,
    },
    /// A record has the wrong number of fields for the schema.
    ArityMismatch {
        /// 1-based record number.
        record: usize,
        /// Fields the schema expects.
        expected: usize,
        /// Fields the record actually has.
        got: usize,
    },
    /// A cell could not be converted to a relation value (NDJSON booleans,
    /// nested arrays/objects, unsigned integers beyond `i64`).
    UnparseableCell {
        /// 1-based record number.
        record: usize,
        /// 0-based attribute index of the offending cell.
        attr: usize,
        /// What was wrong with it.
        message: String,
    },
    /// No record terminator within the configured per-record byte budget.
    /// Bounded-memory ingestion cannot buffer an unbounded record, so a
    /// missing newline in a corrupt feed surfaces here instead of as OOM.
    OversizedRecord {
        /// 1-based record number.
        record: usize,
        /// The configured `max_record_bytes`.
        limit: usize,
    },
    /// EOF arrived inside an open quoted field — the file was cut off
    /// mid-record (a partial upload or a truncated download).
    TruncatedRecord {
        /// 1-based record number of the unfinished record.
        record: usize,
    },
    /// Malformed CSV quoting or row structure inside one record.
    Csv {
        /// 1-based record number.
        record: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An NDJSON line failed to parse, or parsed to a non-record shape.
    Json {
        /// 1-based record number.
        record: usize,
        /// What was wrong with it.
        message: String,
    },
    /// Header/schema mismatch, inference failure, or an unknown dataset or
    /// malformed registry config.
    Schema {
        /// What was wrong with it.
        message: String,
    },
    /// The incremental engine refused an append (pool mismatch, row
    /// validation); nothing from the offending chunk was committed.
    Append {
        /// What the engine reported.
        message: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "io error: {e}"),
            IngestError::BadUtf8 { record } => {
                write!(f, "record {record}: invalid UTF-8")
            }
            IngestError::ArityMismatch {
                record,
                expected,
                got,
            } => write!(f, "record {record}: has {got} fields, expected {expected}"),
            IngestError::UnparseableCell {
                record,
                attr,
                message,
            } => write!(f, "record {record}, cell {attr}: {message}"),
            IngestError::OversizedRecord { record, limit } => {
                write!(f, "record {record}: no terminator within {limit} bytes")
            }
            IngestError::TruncatedRecord { record } => {
                write!(f, "record {record}: input truncated inside a quoted field")
            }
            IngestError::Csv { record, message } => {
                write!(f, "record {record}: {message}")
            }
            IngestError::Json { record, message } => {
                write!(f, "record {record}: {message}")
            }
            IngestError::Schema { message } => write!(f, "schema: {message}"),
            IngestError::Append { message } => write!(f, "append refused: {message}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}
