//! Bounded-memory record chunking.
//!
//! [`ChunkReader`] pulls bytes from any [`Read`] source and yields chunks of
//! whole records, never holding more than roughly one chunk plus one record
//! in memory. Record boundaries come from [`er_table::csv::RecordScanner`] —
//! the same state machine the in-memory loader uses — so the chunked and
//! whole-file paths agree byte-for-byte on where records end. NDJSON reuses
//! the same reader: a line-delimited format is a degenerate CSV for boundary
//! purposes, except that `"` does not open a multi-line field, so the
//! scanner's quote tracking is disabled there (a JSON string can contain an
//! unbalanced quote only via `\"`, which never spans lines).

use crate::error::IngestError;
use er_table::csv::RecordScanner;
use std::io::Read;

/// How much to buffer and how big one record may get.
#[derive(Debug, Clone)]
pub struct ChunkConfig {
    /// Target consumed bytes per chunk. A chunk closes at the first record
    /// boundary at or past this many bytes. Default 1 MiB.
    pub chunk_bytes: usize,
    /// Hard cap on a single record. A record with no terminator within this
    /// budget aborts the load with [`IngestError::OversizedRecord`] instead
    /// of buffering without bound. Default 1 MiB.
    pub max_record_bytes: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        ChunkConfig {
            chunk_bytes: 1 << 20,
            max_record_bytes: 1 << 20,
        }
    }
}

/// One chunk of whole records.
#[derive(Debug)]
pub struct Chunk {
    /// 1-based record number of the first record in this chunk (the header
    /// of a CSV file is record 1).
    pub first_record: usize,
    /// Record bodies, terminators stripped, validated UTF-8.
    pub records: Vec<String>,
    /// Consumed input bytes, terminators included.
    pub bytes: usize,
}

/// Streams a byte source as chunks of whole records under a memory bound.
#[derive(Debug)]
pub struct ChunkReader<R> {
    src: R,
    config: ChunkConfig,
    /// Unconsumed bytes; grows only until the next record boundary.
    buf: Vec<u8>,
    scratch: Vec<u8>,
    scanner: RecordScanner,
    /// Scanner quote tracking applies (CSV). NDJSON boundaries ignore quotes.
    quoted: bool,
    /// Resume offset for line-mode scanning (the quote-free counterpart of
    /// the scanner's internal resume state).
    line_scanned: usize,
    eof: bool,
    /// Records yielded so far (1-based numbering for the next one).
    records_out: usize,
    peak_buffer_bytes: usize,
}

const SCRATCH_BYTES: usize = 64 * 1024;

impl<R: Read> ChunkReader<R> {
    /// A reader for a quote-aware (CSV) source.
    pub fn new(src: R, config: ChunkConfig) -> Self {
        Self::build(src, config, true)
    }

    /// A reader for a line-delimited (NDJSON) source: every `\n`, `\r\n`, or
    /// lone `\r` ends a record, with no quote tracking.
    pub fn new_lines(src: R, config: ChunkConfig) -> Self {
        Self::build(src, config, false)
    }

    fn build(src: R, config: ChunkConfig, quoted: bool) -> Self {
        let scratch = config.chunk_bytes.clamp(1, SCRATCH_BYTES);
        ChunkReader {
            src,
            config,
            buf: Vec::new(),
            scratch: vec![0u8; scratch],
            scanner: RecordScanner::new(),
            quoted,
            line_scanned: 0,
            eof: false,
            records_out: 0,
            peak_buffer_bytes: 0,
        }
    }

    /// High-water mark of the internal byte buffer — the bounded-memory
    /// claim, measurable: stays under `chunk-target + max_record_bytes +
    /// one read` regardless of input size.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buffer_bytes
    }

    /// Records yielded so far.
    pub fn records_read(&self) -> usize {
        self.records_out
    }

    /// Pull the next chunk of whole records, or `None` at end of input.
    pub fn next_chunk(&mut self) -> Result<Option<Chunk>, IngestError> {
        let first_record = self.records_out + 1;
        let mut records = Vec::new();
        let mut bytes = 0usize;
        loop {
            match self.find_boundary() {
                Some(span) => {
                    let body = std::str::from_utf8(&self.buf[..span.end])
                        .map_err(|_| IngestError::BadUtf8 {
                            record: self.records_out + 1,
                        })?
                        .to_owned();
                    self.buf.drain(..span.next);
                    records.push(body);
                    self.records_out += 1;
                    bytes += span.next;
                    if bytes >= self.config.chunk_bytes {
                        return Ok(Some(Chunk {
                            first_record,
                            records,
                            bytes,
                        }));
                    }
                }
                None if self.eof => {
                    if self.scanner.in_quotes() {
                        return Err(IngestError::TruncatedRecord {
                            record: self.records_out + 1,
                        });
                    }
                    return Ok(if records.is_empty() {
                        None
                    } else {
                        Some(Chunk {
                            first_record,
                            records,
                            bytes,
                        })
                    });
                }
                None => {
                    if self.buf.len() >= self.config.max_record_bytes {
                        return Err(IngestError::OversizedRecord {
                            record: self.records_out + 1,
                            limit: self.config.max_record_bytes,
                        });
                    }
                    let n = self.src.read(&mut self.scratch)?;
                    if n == 0 {
                        self.eof = true;
                    } else {
                        self.buf.extend_from_slice(&self.scratch[..n]);
                        self.peak_buffer_bytes = self.peak_buffer_bytes.max(self.buf.len());
                    }
                }
            }
        }
    }

    fn find_boundary(&mut self) -> Option<er_table::csv::RecordSpan> {
        if self.quoted {
            return self.scanner.find(&self.buf, self.eof);
        }
        // Line mode: pure line-break scanning, no quote tracking. A raw `"`
        // count means nothing in NDJSON (`\"` inside a JSON string is an odd
        // raw quote), so the CSV scanner's state machine must not be used.
        let mut i = self.line_scanned;
        while i < self.buf.len() {
            match self.buf[i] {
                b'\n' => {
                    self.line_scanned = 0;
                    return Some(er_table::csv::RecordSpan {
                        end: i,
                        next: i + 1,
                    });
                }
                b'\r' => {
                    if i + 1 < self.buf.len() {
                        let next = i + 1 + usize::from(self.buf[i + 1] == b'\n');
                        self.line_scanned = 0;
                        return Some(er_table::csv::RecordSpan { end: i, next });
                    }
                    if self.eof {
                        self.line_scanned = 0;
                        return Some(er_table::csv::RecordSpan {
                            end: i,
                            next: i + 1,
                        });
                    }
                    self.line_scanned = i;
                    return None;
                }
                _ => i += 1,
            }
        }
        if self.eof && !self.buf.is_empty() {
            self.line_scanned = 0;
            return Some(er_table::csv::RecordSpan {
                end: self.buf.len(),
                next: self.buf.len(),
            });
        }
        self.line_scanned = self.buf.len();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that returns at most `step` bytes per call, to exercise
    /// partial reads and chunk-boundary-mid-record paths.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(out.len()).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn drain(mut reader: ChunkReader<impl Read>) -> Vec<String> {
        let mut all = Vec::new();
        while let Some(chunk) = reader.next_chunk().unwrap() {
            all.extend(chunk.records);
        }
        all
    }

    #[test]
    fn splits_on_record_boundaries() {
        let text = b"A,B\nx,\"q\nz\"\ny,w\n";
        let reader = ChunkReader::new(
            Dribble {
                data: text,
                pos: 0,
                step: 3,
            },
            ChunkConfig {
                chunk_bytes: 4,
                max_record_bytes: 64,
            },
        );
        assert_eq!(drain(reader), vec!["A,B", "x,\"q\nz\"", "y,w"]);
    }

    #[test]
    fn oversized_record_is_a_typed_error() {
        let text = b"A\n0123456789012345678901234567890123456789\n";
        let mut reader = ChunkReader::new(
            &text[..],
            ChunkConfig {
                chunk_bytes: 8,
                max_record_bytes: 16,
            },
        );
        // The error carries the record number even though the chunk never
        // completes: the whole load aborts, partial records are not leaked.
        match reader.next_chunk() {
            Err(IngestError::OversizedRecord {
                record: 2,
                limit: 16,
            }) => {}
            other => panic!("expected OversizedRecord, got {other:?}"),
        }
    }

    #[test]
    fn bad_utf8_is_a_typed_error() {
        let mut reader = ChunkReader::new(&b"A\nM\xFC\n"[..], ChunkConfig::default());
        match reader.next_chunk() {
            Err(IngestError::BadUtf8 { record: 2 }) => {}
            other => panic!("expected BadUtf8, got {other:?}"),
        }
    }

    #[test]
    fn truncated_quote_is_a_typed_error() {
        let mut reader = ChunkReader::new(&b"A\n\"cut off"[..], ChunkConfig::default());
        match reader.next_chunk() {
            Err(IngestError::TruncatedRecord { record: 2 }) => {}
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let mut reader = ChunkReader::new(&b""[..], ChunkConfig::default());
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn line_mode_ignores_quotes() {
        let text = b"{\"a\":\"odd \\\" quote\"}\n{\"a\":2}\n";
        let reader = ChunkReader::new_lines(&text[..], ChunkConfig::default());
        let recs = drain(reader);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], "{\"a\":2}");
    }

    #[test]
    fn peak_buffer_stays_bounded() {
        let mut data = Vec::new();
        data.extend_from_slice(b"A,B\n");
        for i in 0..10_000 {
            data.extend_from_slice(format!("row{i},value{i}\n").as_bytes());
        }
        let config = ChunkConfig {
            chunk_bytes: 4096,
            max_record_bytes: 256,
        };
        let mut reader = ChunkReader::new(&data[..], config);
        while reader.next_chunk().unwrap().is_some() {}
        // One scratch read past the target is the worst case.
        assert!(reader.peak_buffer_bytes() <= 4096 + 256 + SCRATCH_BYTES);
        assert!(reader.peak_buffer_bytes() > 0);
    }
}
