//! The chunked-equals-whole-file suite.
//!
//! Out-of-core ingestion is only trustworthy if it is *invisible*: a master
//! built by streaming a ≥256k-row file in bounded-memory chunks — with
//! intra-chunk parsing fanned out across 1, 2, and 8 worker threads — must
//! be byte-identical (dictionary order, column codes, generation counters,
//! and the repair behaviour of delta-updated indexes) to the master built by
//! the in-memory whole-file loader. Peak buffer memory must stay bounded by
//! the configured chunk size regardless of input size.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_datagen::{covid, NoiseConfig, Scenario, ScenarioConfig};
use er_incr::IncrEngine;
use er_ingest::{ingest_append, ingest_relation, ChunkConfig, Format, IngestConfig, SchemaMode};
use er_rules::EditingRule;
use er_table::{csv, Pool, Relation, RelationBuilder, Value};
use std::sync::Arc;

const ROWS: usize = 256 * 1024;
const CHUNK_BYTES: usize = 64 * 1024;
const SCRATCH_BYTES: usize = 64 * 1024;

/// A skewed synthetic CSV big enough to span many chunks, spiced with the
/// hard cases: quoted fields with embedded delimiters and newlines, empty
/// (NULL) cells, and CRLF terminators.
fn big_csv() -> String {
    let mut text = String::with_capacity(ROWS * 32);
    text.push_str("City,Region,Code,Flag\n");
    for i in 0..ROWS {
        let city = i % 512;
        let region = city % 32;
        match i % 1000 {
            7 => {
                // Quoted field with an embedded comma and newline.
                text.push_str(&format!(
                    "\"city,{city}\nx\",region{region},{i},f{}\r\n",
                    i % 7
                ));
            }
            13 => {
                // NULL cell.
                text.push_str(&format!("city{city},,{i},f{}\n", i % 7));
            }
            _ => {
                text.push_str(&format!("city{city},region{region},{i},f{}\n", i % 7));
            }
        }
    }
    text
}

fn assert_relations_identical(a: &Relation, b: &Relation, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    assert_eq!(a.generation(), b.generation(), "{context}: generation");
    assert_eq!(
        a.schema().attributes().len(),
        b.schema().attributes().len(),
        "{context}: arity"
    );
    for row in 0..a.num_rows() {
        for attr in 0..a.num_attrs() {
            assert_eq!(
                a.code(row, attr),
                b.code(row, attr),
                "{context}: code at ({row},{attr})"
            );
        }
    }
}

fn assert_pools_identical(a: &Pool, b: &Pool, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: pool size");
    for code in 0..a.len() as u32 {
        assert_eq!(
            a.value(code),
            b.value(code),
            "{context}: pool value at code {code}"
        );
    }
}

#[test]
fn chunked_csv_build_is_byte_identical_to_whole_file_at_1_2_8_threads() {
    let text = big_csv();
    let whole_pool = Arc::new(Pool::new());
    let whole = csv::read_str("big", &text, Arc::clone(&whole_pool)).unwrap();
    assert_eq!(whole.num_rows(), ROWS);

    for threads in [1usize, 2, 8] {
        let pool = Arc::new(Pool::new());
        let config = IngestConfig {
            format: Format::Csv,
            schema: SchemaMode::Infer,
            chunk: ChunkConfig {
                chunk_bytes: CHUNK_BYTES,
                max_record_bytes: 4096,
            },
            threads,
        };
        let (rel, stats) =
            ingest_relation("big", text.as_bytes(), Arc::clone(&pool), &config).unwrap();
        let context = format!("{threads} threads");
        assert_relations_identical(&whole, &rel, &context);
        assert_pools_identical(&whole_pool, &pool, &context);
        assert_eq!(stats.rows, ROWS, "{context}: stats rows");
        assert!(stats.chunks > 10, "{context}: should span many chunks");
        // The bounded-memory claim: the raw buffer never exceeds the chunk
        // target plus one record plus one read, no matter the file size.
        assert!(
            stats.peak_buffer_bytes <= CHUNK_BYTES + 4096 + SCRATCH_BYTES,
            "{context}: peak buffer {} bytes exceeds the bound",
            stats.peak_buffer_bytes
        );
        assert!(stats.peak_buffer_bytes > 0, "{context}: peak not tracked");
    }
}

#[test]
fn chunked_ndjson_build_is_byte_identical_across_thread_counts() {
    let mut text = String::new();
    for i in 0..20_000 {
        match i % 100 {
            3 => text.push_str(&format!(
                "{{\"a\":\"v{}\",\"b\":null,\"c\":\"\"}}\n",
                i % 37
            )),
            _ => text.push_str(&format!(
                "{{\"a\":\"v{}\",\"b\":\"w{}\",\"c\":\"x{}\"}}\n",
                i % 37,
                i % 11,
                i % 5
            )),
        }
    }
    // Reference: one giant chunk, sequential.
    let ref_pool = Arc::new(Pool::new());
    let ref_config = IngestConfig {
        format: Format::Ndjson,
        schema: SchemaMode::Infer,
        chunk: ChunkConfig {
            chunk_bytes: usize::MAX / 2,
            max_record_bytes: usize::MAX / 2,
        },
        threads: 1,
    };
    let (reference, _) =
        ingest_relation("nd", text.as_bytes(), Arc::clone(&ref_pool), &ref_config).unwrap();
    assert_eq!(reference.num_rows(), 20_000);

    for threads in [1usize, 2, 8] {
        let pool = Arc::new(Pool::new());
        let config = IngestConfig {
            format: Format::Ndjson,
            schema: SchemaMode::Infer,
            chunk: ChunkConfig {
                chunk_bytes: 8 * 1024,
                max_record_bytes: 4096,
            },
            threads,
        };
        let (rel, stats) =
            ingest_relation("nd", text.as_bytes(), Arc::clone(&pool), &config).unwrap();
        let context = format!("ndjson {threads} threads");
        assert_relations_identical(&reference, &rel, &context);
        assert_pools_identical(&ref_pool, &pool, &context);
        assert!(stats.chunks > 10, "{context}: should span many chunks");
    }
}

// ---- engine-level equivalence: chunked appends into a warm IncrEngine ----

const BASE_ROWS: usize = 120;

fn scenario() -> Scenario {
    covid(ScenarioConfig {
        input_size: 150,
        master_size: 600,
        noise: NoiseConfig::rate(0.2),
        duplicate_rate: None,
        seed: 23,
        labelled: false,
    })
}

fn rules_for(s: &Scenario) -> Vec<EditingRule> {
    let target = s.task.target();
    let pairs = s.task.candidate_lhs_pairs();
    let mut rules: Vec<EditingRule> = pairs
        .iter()
        .map(|&p| EditingRule::new(vec![p], target, vec![]))
        .collect();
    for window in pairs.windows(2) {
        rules.push(EditingRule::new(window.to_vec(), target, vec![]));
    }
    rules.truncate(8);
    rules
}

/// The delta rows (beyond `BASE_ROWS`) rendered as a CSV file in master
/// schema order, plus the same rows as in-memory values.
fn delta_csv_and_rows(s: &Scenario) -> (String, Vec<Vec<Value>>) {
    let master = s.task.master();
    let rows: Vec<Vec<Value>> = (BASE_ROWS..master.num_rows())
        .map(|r| master.row_values(r))
        .collect();
    let mut delta = RelationBuilder::new(Arc::clone(master.schema()), Arc::clone(master.pool()));
    for row in &rows {
        delta.push_row(row.clone()).unwrap();
    }
    (csv::write_str(&delta.finish()), rows)
}

#[test]
fn chunked_append_matches_one_shot_append_at_1_2_8_threads() {
    // Two independently generated (deterministic, identical) scenarios so
    // the chunked and one-shot paths own separate pools — pool identity is
    // then a real assertion, not an artifact of sharing.
    for threads in [1usize, 2, 8] {
        let chunked_scn = scenario();
        let oneshot_scn = scenario();
        let (csv_text, delta_rows) = delta_csv_and_rows(&chunked_scn);

        let base = |s: &Scenario| s.with_master_prefix(BASE_ROWS);
        let chunked_base = base(&chunked_scn);
        let oneshot_base = base(&oneshot_scn);

        let mut chunked_engine = IncrEngine::new(
            chunked_base.task.master().clone(),
            chunked_base.task.target(),
            rules_for(&chunked_base),
            threads,
        )
        .unwrap();
        let mut oneshot_engine = IncrEngine::new(
            oneshot_base.task.master().clone(),
            oneshot_base.task.target(),
            rules_for(&oneshot_base),
            threads,
        )
        .unwrap();

        let config = IngestConfig {
            format: Format::Csv,
            chunk: ChunkConfig {
                chunk_bytes: 512, // force many chunks over a small delta
                max_record_bytes: 4096,
            },
            threads,
            ..IngestConfig::default()
        };
        let stats = ingest_append(&mut chunked_engine, csv_text.as_bytes(), &config).unwrap();
        assert_eq!(stats.rows, delta_rows.len());
        assert!(stats.chunks > 1, "delta should span multiple chunks");
        oneshot_engine.append_rows(&delta_rows).unwrap();

        let context = format!("append {threads} threads");
        assert_relations_identical(chunked_engine.master(), oneshot_engine.master(), &context);
        assert_pools_identical(
            chunked_engine.master().pool(),
            oneshot_engine.master().pool(),
            &context,
        );
        assert_eq!(
            chunked_engine.generation(),
            oneshot_engine.generation(),
            "{context}: engine generation"
        );

        // Delta-updated indexes must behave identically: replay the same
        // probe batch through both engines and demand identical reports.
        let chunked_report = chunked_engine
            .repair_batch(chunked_scn.task.input())
            .unwrap();
        let oneshot_report = oneshot_engine
            .repair_batch(oneshot_scn.task.input())
            .unwrap();
        assert_eq!(
            chunked_report.predictions, oneshot_report.predictions,
            "{context}: predictions"
        );
        assert_eq!(
            chunked_report.scores, oneshot_report.scores,
            "{context}: scores"
        );
        assert_eq!(
            chunked_report.candidates, oneshot_report.candidates,
            "{context}: candidates"
        );
    }
}
