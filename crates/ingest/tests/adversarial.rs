//! Adversarial ingest suite: the malformed, truncated, and edge-case inputs
//! a production feed will eventually deliver. Every failure must be a typed
//! [`IngestError`] naming the offending record — never a panic, never
//! silently wrong data.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_ingest::{ingest_relation, ChunkConfig, Format, IngestConfig, IngestError, SchemaMode};
use er_table::{Attribute, Pool, Relation, Schema, Value};
use std::sync::Arc;

fn csv_config() -> IngestConfig {
    IngestConfig::default()
}

fn ndjson_config() -> IngestConfig {
    IngestConfig {
        format: Format::Ndjson,
        ..IngestConfig::default()
    }
}

fn load(text: &str, config: &IngestConfig) -> Result<Relation, IngestError> {
    ingest_relation("t", text.as_bytes(), Arc::new(Pool::new()).clone(), config).map(|(rel, _)| rel)
}

#[test]
fn truncated_final_record_is_a_typed_error() {
    // EOF inside an open quoted field: a partial upload, not a record.
    let err = load("A,B\nx,\"cut off mid-fie", &csv_config()).unwrap_err();
    match err {
        IngestError::TruncatedRecord { record: 2 } => {}
        other => panic!("expected TruncatedRecord at record 2, got {other}"),
    }
}

#[test]
fn chunk_boundary_mid_record_reassembles_the_record() {
    // chunk_bytes far smaller than the quoted record: the record spans
    // several reads and several boundary probes before it completes.
    let long = "y".repeat(300);
    let text = format!("A,B\n\"multi\nline,{long}\",z\np,q\n");
    let config = IngestConfig {
        chunk: ChunkConfig {
            chunk_bytes: 16,
            max_record_bytes: 1024,
        },
        ..IngestConfig::default()
    };
    let rel = load(&text, &config).unwrap();
    assert_eq!(rel.num_rows(), 2);
    assert_eq!(rel.value(0, 0), Value::str(format!("multi\nline,{long}")));
    assert_eq!(rel.value(1, 1), Value::str("q"));
}

#[test]
fn empty_file_cannot_infer_a_schema() {
    let err = load("", &csv_config()).unwrap_err();
    match err {
        IngestError::Schema { message } => assert!(message.contains("empty")),
        other => panic!("expected Schema error, got {other}"),
    }
}

#[test]
fn empty_file_with_explicit_schema_is_an_empty_relation() {
    let schema = Arc::new(Schema::new(
        "t",
        vec![Attribute::categorical("A"), Attribute::categorical("B")],
    ));
    let config = IngestConfig {
        schema: SchemaMode::Explicit(Arc::clone(&schema)),
        format: Format::Ndjson, // no header record to demand
        ..IngestConfig::default()
    };
    let rel = load("", &config).unwrap();
    assert_eq!(rel.num_rows(), 0);
    assert_eq!(rel.schema().arity(), 2);
}

#[test]
fn header_only_file_is_an_empty_relation_with_the_inferred_schema() {
    let rel = load("City,ZIP\n", &csv_config()).unwrap();
    assert_eq!(rel.num_rows(), 0);
    assert_eq!(rel.schema().attr(0).name, "City");
    assert_eq!(rel.schema().attr(1).name, "ZIP");
}

#[test]
fn arity_mismatch_names_the_record() {
    let err = load("A,B\nx,y\nonly-one\n", &csv_config()).unwrap_err();
    match err {
        IngestError::ArityMismatch {
            record: 3,
            expected: 2,
            got: 1,
        } => {}
        other => panic!("expected ArityMismatch at record 3, got {other}"),
    }
}

#[test]
fn ndjson_unparseable_cell_names_record_and_attr() {
    let err = load(
        "{\"a\":\"x\",\"b\":\"y\"}\n{\"a\":\"x\",\"b\":true}\n",
        &ndjson_config(),
    )
    .unwrap_err();
    match err {
        IngestError::UnparseableCell {
            record: 2, attr: 1, ..
        } => {}
        other => panic!("expected UnparseableCell at record 2 attr 1, got {other}"),
    }
}

#[test]
fn ndjson_unknown_key_is_a_typed_error() {
    let err = load(
        "{\"a\":\"x\"}\n{\"a\":\"y\",\"zz\":\"?\"}\n",
        &ndjson_config(),
    )
    .unwrap_err();
    match err {
        IngestError::Json { record: 2, message } => assert!(message.contains("zz")),
        other => panic!("expected Json error at record 2, got {other}"),
    }
}

#[test]
fn ndjson_missing_key_is_null() {
    let rel = load(
        "{\"a\":\"x\",\"b\":\"y\"}\n{\"a\":\"z\"}\n",
        &ndjson_config(),
    )
    .unwrap();
    assert_eq!(rel.num_rows(), 2);
    assert!(rel.is_null(1, 1));
}

#[test]
fn null_token_normalization_is_consistent_between_csv_and_ndjson() {
    // The same logical table through both formats: a JSON null, a JSON
    // empty string, and a CSV empty field must all land as NULL, and
    // non-null cells must come out value-identical.
    let csv_text = "a,b,c\nx,,\nk,w,\n";
    let nd_text = concat!(
        "{\"a\":\"x\",\"b\":null,\"c\":\"\"}\n",
        "{\"a\":\"k\",\"b\":\"w\",\"c\":null}\n",
    );
    let from_csv = load(csv_text, &csv_config()).unwrap();
    let from_nd = load(nd_text, &ndjson_config()).unwrap();
    assert_eq!(from_csv.num_rows(), from_nd.num_rows());
    assert_eq!(from_csv.schema().arity(), from_nd.schema().arity());
    for row in 0..from_csv.num_rows() {
        for attr in 0..from_csv.num_attrs() {
            assert_eq!(
                from_csv.value(row, attr),
                from_nd.value(row, attr),
                "cell ({row},{attr}) differs between formats"
            );
            assert_eq!(
                from_csv.is_null(row, attr),
                from_nd.is_null(row, attr),
                "nullness ({row},{attr}) differs between formats"
            );
        }
    }
}

#[test]
fn ndjson_blank_and_whitespace_strings_normalize_like_csv_blanks() {
    let rel = load("{\"a\":\"  \",\"b\":\" x \"}\n", &ndjson_config()).unwrap();
    // Whitespace-only → NULL, padded → trimmed: parse_field semantics,
    // shared verbatim with the CSV path.
    assert!(rel.is_null(0, 0));
    assert_eq!(rel.value(0, 1), Value::str("x"));
}

#[test]
fn oversized_record_aborts_with_the_limit() {
    let text = format!("A\n{}\n", "x".repeat(100_000));
    let config = IngestConfig {
        chunk: ChunkConfig {
            chunk_bytes: 1024,
            max_record_bytes: 2048,
        },
        ..IngestConfig::default()
    };
    let err = load(&text, &config).unwrap_err();
    match err {
        IngestError::OversizedRecord { limit: 2048, .. } => {}
        other => panic!("expected OversizedRecord, got {other}"),
    }
}

#[test]
fn bad_utf8_in_streamed_data_is_refused_not_replaced() {
    let mut bytes = b"A,B\nx,y\n".to_vec();
    bytes.extend_from_slice(b"M\xFCnchen,z\n");
    let err = ingest_relation("t", &bytes[..], Arc::new(Pool::new()), &csv_config()).unwrap_err();
    match err {
        IngestError::BadUtf8 { record: 3 } => {}
        other => panic!("expected BadUtf8 at record 3, got {other}"),
    }
}

#[test]
fn crlf_and_cr_only_terminators_agree_with_the_in_memory_loader() {
    let text = "A,B\r\nx,y\rz,w\r\n";
    let streamed = load(text, &csv_config()).unwrap();
    let whole = er_table::csv::read_str("t", text, Arc::new(Pool::new())).unwrap();
    assert_eq!(streamed.num_rows(), whole.num_rows());
    for row in 0..whole.num_rows() {
        for attr in 0..whole.num_attrs() {
            assert_eq!(streamed.value(row, attr), whole.value(row, attr));
        }
    }
}
