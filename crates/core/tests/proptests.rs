//! Property-based tests for RLMiner's encoding and masking layers.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_datagen::{DatasetKind, ScenarioConfig};
use er_rlminer::{compute_mask, StateEncoder};
use er_rules::{ConditionSpaceConfig, EditingRule};
use proptest::prelude::*;

fn fixture() -> &'static (er_rules::Task, StateEncoder) {
    use std::sync::OnceLock;
    static FIX: OnceLock<(er_rules::Task, StateEncoder)> = OnceLock::new();
    FIX.get_or_init(|| {
        let s = DatasetKind::Covid.build(ScenarioConfig {
            input_size: 200,
            master_size: 120,
            seed: 99,
            ..DatasetKind::Covid.paper_config()
        });
        let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
        (s.task.clone(), enc)
    })
}

/// Build a random valid rule by applying a random action sequence from the
/// root (skipping invalid/stop actions).
fn arb_rule() -> impl Strategy<Value = EditingRule> {
    let (task, enc) = fixture();
    let dim = enc.action_dim();
    prop::collection::vec(0..dim, 0..6).prop_map(move |actions| {
        let mut rule = EditingRule::root(task.target());
        for a in actions {
            if a == enc.stop_action() {
                continue;
            }
            if let Some(child) = enc.apply(&rule, a) {
                rule = child;
            }
        }
        rule
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → one bit per LHS pair + per condition; decode-by-action is
    /// consistent: every set bit corresponds to a masked (unavailable)
    /// action under the local mask.
    #[test]
    fn encoding_bits_match_rule_structure(rule in arb_rule()) {
        let (_, enc) = fixture();
        let s = enc.encode(&rule);
        let set_bits = s.iter().filter(|&&x| x == 1.0).count();
        prop_assert_eq!(set_bits, rule.lhs_len() + rule.pattern_len());
        let mask = compute_mask(enc, &rule, None);
        for (i, &bit) in s.iter().enumerate() {
            if bit == 1.0 {
                prop_assert!(!mask[i], "dim {i} is in the rule but not locally masked");
            }
        }
    }

    /// The mask never blocks the stop action, and every allowed non-stop
    /// action produces a strictly refined, valid rule.
    #[test]
    fn allowed_actions_produce_valid_children(rule in arb_rule()) {
        let (_, enc) = fixture();
        let mask = compute_mask(enc, &rule, None);
        prop_assert!(mask[enc.stop_action()]);
        for (a, &allowed) in mask.iter().enumerate() {
            if !allowed || a == enc.stop_action() {
                continue;
            }
            let child = enc.apply(&rule, a);
            prop_assert!(child.is_some(), "allowed action {a} failed to apply");
            let child = child.unwrap();
            prop_assert_eq!(child.lhs_len() + child.pattern_len(),
                            rule.lhs_len() + rule.pattern_len() + 1);
            prop_assert!(er_rules::dominates(&rule, &child) || rule.lhs_len() + rule.pattern_len() == 0);
        }
    }

    /// Masked actions on the same attribute: once an attribute is
    /// constrained in the pattern, every condition dim of that attribute is
    /// masked.
    #[test]
    fn pattern_attr_exclusivity(rule in arb_rule()) {
        let (_, enc) = fixture();
        let mask = compute_mask(enc, &rule, None);
        for cond in rule.pattern() {
            for dim in enc.condition_actions_of_attr(cond.attr) {
                prop_assert!(!mask[dim]);
            }
        }
        for &(a, _) in rule.lhs() {
            for dim in enc.lhs_actions_of_attr(a) {
                prop_assert!(!mask[dim]);
            }
        }
    }
}
