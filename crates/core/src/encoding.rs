//! State and action encoding (§IV-A, §IV-B).
//!
//! The state of a rule `φ` is a one-hot vector `s = [s_l; s_p]` (Eq. 6):
//! `s_l` has one dimension per matched attribute pair `(A, A_m)` (Eq. 7) and
//! `s_p` one dimension per candidate pattern condition (Eq. 8) — continuous
//! attributes contribute `N_split` range dimensions, large categorical
//! domains are reduced to common-prefix groups ([`er_rules::ConditionSpace`]
//! does both). The action vector appends a single *stop* dimension
//! (Eqs. 9–12), so `action_dim = state_dim + 1`.

use er_rules::{Condition, ConditionSpace, ConditionSpaceConfig, EditingRule, Task};
use er_table::AttrId;
use std::collections::HashMap;

/// What an action index means (the transition function `T` of Definition 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refinement {
    /// Add `(A, A_m)` to `LHS(φ)`.
    Lhs(AttrId, AttrId),
    /// Add a condition to the pattern `t_p`.
    Pattern(Condition),
    /// Stop refining the current node and move on (`a_stop`).
    Stop,
}

/// Bidirectional mapping between rules and one-hot state/action vectors.
///
/// Built once per mining task; RLMiner-ft reuses the encoder across the
/// incremental data versions so the value network's dimensions stay fixed.
#[derive(Debug, Clone)]
pub struct StateEncoder {
    /// Matched LHS pairs, in dimension order.
    lhs_pairs: Vec<(AttrId, AttrId)>,
    /// Candidate conditions, in dimension order (offset by `lhs_pairs.len()`).
    conditions: Vec<Condition>,
    lhs_index: HashMap<(AttrId, AttrId), usize>,
    cond_index: HashMap<Condition, usize>,
    target: (AttrId, AttrId),
}

impl StateEncoder {
    /// Build the encoder for `task`'s matched pairs and condition space.
    pub fn new(task: &Task, space_config: ConditionSpaceConfig) -> Self {
        let space = ConditionSpace::build(task, space_config);
        let lhs_pairs = task.candidate_lhs_pairs();
        let conditions: Vec<Condition> = space.iter().map(|(_, _, c)| c.clone()).collect();
        let lhs_index = lhs_pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let cond_index = conditions
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        StateEncoder {
            lhs_pairs,
            conditions,
            lhs_index,
            cond_index,
            target: task.target(),
        }
    }

    /// `dim(s_l)` (Eq. 7).
    pub fn lhs_dim(&self) -> usize {
        self.lhs_pairs.len()
    }

    /// `dim(s_p)` (Eq. 8).
    pub fn pattern_dim(&self) -> usize {
        self.conditions.len()
    }

    /// `dim(s)` — the value-network input width.
    pub fn state_dim(&self) -> usize {
        self.lhs_dim() + self.pattern_dim()
    }

    /// `dim(a) = dim(s) + 1` — the value-network output width
    /// (the last dimension is the stop action).
    pub fn action_dim(&self) -> usize {
        self.state_dim() + 1
    }

    /// Index of the stop action.
    pub fn stop_action(&self) -> usize {
        self.state_dim()
    }

    /// The target pair the encoder was built for.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.target
    }

    /// The matched LHS pairs in dimension order.
    pub fn lhs_pairs(&self) -> &[(AttrId, AttrId)] {
        &self.lhs_pairs
    }

    /// The candidate conditions in dimension order.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// One-hot encode a rule. LHS pairs or conditions outside the encoder's
    /// universe are ignored (they cannot appear on rules the encoder itself
    /// produced).
    pub fn encode(&self, rule: &EditingRule) -> Vec<f32> {
        let mut s = vec![0.0f32; self.state_dim()];
        for pair in rule.lhs() {
            if let Some(&i) = self.lhs_index.get(pair) {
                s[i] = 1.0;
            }
        }
        for cond in rule.pattern() {
            if let Some(&i) = self.cond_index.get(cond) {
                s[self.lhs_dim() + i] = 1.0;
            }
        }
        s
    }

    /// Decode an action index into a [`Refinement`].
    ///
    /// # Panics
    /// Panics if `action > state_dim()` (out of the action space).
    pub fn refinement(&self, action: usize) -> Refinement {
        if action == self.stop_action() {
            return Refinement::Stop;
        }
        if action < self.lhs_dim() {
            let (a, am) = self.lhs_pairs[action];
            Refinement::Lhs(a, am)
        } else {
            Refinement::Pattern(self.conditions[action - self.lhs_dim()].clone())
        }
    }

    /// Apply an action to a rule, producing the refined rule (`None` for
    /// stop). Actions that would violate Definition 1 (duplicate attribute)
    /// also return `None`; the mask prevents the agent from selecting them.
    pub fn apply(&self, rule: &EditingRule, action: usize) -> Option<EditingRule> {
        match self.refinement(action) {
            Refinement::Stop => None,
            Refinement::Lhs(a, am) => {
                if rule.lhs_contains_input(a) || a == self.target.0 {
                    return None;
                }
                Some(rule.with_lhs_pair(a, am))
            }
            Refinement::Pattern(cond) => {
                if rule.pattern_contains(cond.attr) || cond.attr == self.target.0 {
                    return None;
                }
                Some(rule.with_condition(cond))
            }
        }
    }

    /// Action index of an LHS pair, if it is in the encoder's universe.
    pub fn lhs_action(&self, a: AttrId, am: AttrId) -> Option<usize> {
        self.lhs_index.get(&(a, am)).copied()
    }

    /// Action index of a pattern condition, if it is in the universe.
    pub fn condition_action(&self, cond: &Condition) -> Option<usize> {
        self.cond_index.get(cond).map(|&i| i + self.lhs_dim())
    }

    /// Action indices whose dimension belongs to attribute `a`'s conditions.
    pub fn condition_actions_of_attr(&self, a: AttrId) -> Vec<usize> {
        self.conditions
            .iter()
            .enumerate()
            .filter(|(_, c)| c.attr == a)
            .map(|(i, _)| i + self.lhs_dim())
            .collect()
    }

    /// Action indices of all LHS dims for input attribute `a`
    /// (all `(a, A'_m)`, `A'_m ∈ M(a)` — what Algorithm 1 lines 6–8 mask).
    pub fn lhs_actions_of_attr(&self, a: AttrId) -> Vec<usize> {
        self.lhs_pairs
            .iter()
            .enumerate()
            .filter(|(_, &(x, _))| x == a)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::figure1;

    fn encoder() -> (er_rules::Task, StateEncoder) {
        let s = figure1();
        let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
        (s.task, enc)
    }

    #[test]
    fn dims_follow_eqs_7_and_8() {
        let (task, enc) = encoder();
        // Figure 1: matched pairs excluding Y.
        let expected_lhs = task.candidate_lhs_pairs().len();
        assert_eq!(enc.lhs_dim(), expected_lhs);
        assert!(enc.pattern_dim() > 0);
        assert_eq!(enc.state_dim(), enc.lhs_dim() + enc.pattern_dim());
        assert_eq!(enc.action_dim(), enc.state_dim() + 1);
        assert_eq!(enc.stop_action(), enc.state_dim());
    }

    #[test]
    fn encode_decode_round_trip() {
        let (task, enc) = encoder();
        let (a, am) = task.candidate_lhs_pairs()[0];
        let cond = enc.conditions()[0].clone();
        let rule = EditingRule::new(vec![(a, am)], task.target(), vec![cond.clone()]);
        let s = enc.encode(&rule);
        assert_eq!(s.iter().filter(|&&x| x == 1.0).count(), 2);
        assert_eq!(s[enc.lhs_action(a, am).unwrap()], 1.0);
        assert_eq!(s[enc.condition_action(&cond).unwrap()], 1.0);
    }

    #[test]
    fn root_encodes_to_zeros() {
        let (task, enc) = encoder();
        let s = enc.encode(&EditingRule::root(task.target()));
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn refinement_decodes_every_action() {
        let (_, enc) = encoder();
        for a in 0..enc.action_dim() {
            let r = enc.refinement(a);
            if a == enc.stop_action() {
                assert_eq!(r, Refinement::Stop);
            } else {
                assert_ne!(r, Refinement::Stop);
            }
        }
    }

    #[test]
    fn apply_builds_children() {
        let (task, enc) = encoder();
        let root = EditingRule::root(task.target());
        let child = enc.apply(&root, 0).expect("lhs refinement");
        assert_eq!(child.lhs_len(), 1);
        // Applying the same action again is a no-op (duplicate attr).
        assert_eq!(enc.apply(&child, 0), None);
        // Stop maps to None.
        assert_eq!(enc.apply(&root, enc.stop_action()), None);
    }

    #[test]
    fn per_attr_action_lookup() {
        let (task, enc) = encoder();
        let (a, _) = task.candidate_lhs_pairs()[0];
        let lhs_dims = enc.lhs_actions_of_attr(a);
        assert!(!lhs_dims.is_empty());
        for d in lhs_dims {
            match enc.refinement(d) {
                Refinement::Lhs(x, _) => assert_eq!(x, a),
                other => panic!("expected LHS refinement, got {other:?}"),
            }
        }
    }
}
