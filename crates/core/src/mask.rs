//! The rule mask (Algorithm 1).
//!
//! Given the current rule (state) and the set of rules already generated,
//! the mask marks which actions remain legal:
//!
//! * **Local mask** (lines 3–11): for every attribute pair `(A, A_m)` already
//!   in `LHS(φ)`, all LHS dimensions of attribute `A` are masked (an
//!   attribute appears at most once in `X`); for every condition `(A, v)`
//!   already in `t_p`, all condition dimensions of `A` are masked (one
//!   condition per pattern attribute).
//! * **Global mask** (lines 12–17): any action whose resulting rule was
//!   already generated in this tree is masked, so the agent never wastes a
//!   step re-discovering a rule.
//! * The stop action (last dimension) is **never** masked.

use crate::encoding::StateEncoder;
use crate::tree::RuleTree;
use er_par::WorkerPool;
use er_rules::EditingRule;

/// Minimum action dimension before the global-mask pass of
/// [`compute_mask_par`] fans out over the worker pool — below this the loop
/// is cheaper than the thread handoff.
const PAR_MASK_MIN_ACTIONS: usize = 512;

/// Compute the action mask for `rule` (Algorithm 1), sequentially.
///
/// `tree` supplies the visited-rule set for the global mask; pass `None` to
/// apply the local mask only (the ablation of §"global mask off").
pub fn compute_mask(
    encoder: &StateEncoder,
    rule: &EditingRule,
    tree: Option<&RuleTree>,
) -> Vec<bool> {
    compute_mask_par(encoder, rule, tree, &WorkerPool::sequential())
}

/// Compute the action mask for `rule` (Algorithm 1), fanning the global-mask
/// refinement checks out over `pool` when the action space is large.
///
/// Each action's verdict (`apply` + visited lookup) is independent of every
/// other action's, so the parallel mask is identical to the sequential one
/// at any thread count.
pub fn compute_mask_par(
    encoder: &StateEncoder,
    rule: &EditingRule,
    tree: Option<&RuleTree>,
    pool: &WorkerPool,
) -> Vec<bool> {
    let mut mask = vec![true; encoder.action_dim()];

    // Local mask: attributes already used on the LHS.
    for &(a, _) in rule.lhs() {
        for dim in encoder.lhs_actions_of_attr(a) {
            mask[dim] = false;
        }
    }
    // Local mask: attributes already constrained in the pattern.
    for cond in rule.pattern() {
        for dim in encoder.condition_actions_of_attr(cond.attr) {
            mask[dim] = false;
        }
    }

    // Global mask: actions that would re-create an existing rule. A slot
    // stays on iff the local mask allows it AND the refinement is
    // structurally valid AND the resulting rule was not generated before.
    if let Some(tree) = tree {
        let stop = encoder.stop_action();
        let global_allows = |action: usize, local: bool| -> bool {
            if action == stop || !local {
                return local;
            }
            match encoder.apply(rule, action) {
                Some(child) => !tree.contains(&child),
                // The refinement is structurally invalid (duplicate attr the
                // local mask did not know about, or the target attribute).
                None => false,
            }
        };
        if pool.threads() > 1 && mask.len() >= PAR_MASK_MIN_ACTIONS {
            let local = mask;
            mask = pool
                .ranges(local.len(), |r| {
                    r.map(|action| global_allows(action, local[action]))
                        .collect::<Vec<bool>>()
                })
                .into_iter()
                .flatten()
                .collect();
        } else {
            for (action, slot) in mask.iter_mut().enumerate() {
                *slot = global_allows(action, *slot);
            }
        }
    }

    // The stop action is always available (Algorithm 1, line 1).
    let stop = encoder.stop_action();
    mask[stop] = true;
    mask
}

/// Invariants of a computed action mask, available under the
/// `debug-invariants` feature.
///
/// * the mask has exactly `action_dim` entries and the stop action is on;
/// * every LHS dimension of an attribute already in `X` and every condition
///   dimension of an attribute already constrained in `t_p` is off (local
///   mask, Algorithm 1 lines 3–11);
/// * with a tree, every unmasked non-stop action applies to a rule *not* yet
///   generated — a masked action is never re-selectable (global mask, lines
///   12–17).
///
/// Panics on violation; meant for debug builds and tests.
#[cfg(feature = "debug-invariants")]
pub fn check_mask_invariants(
    encoder: &StateEncoder,
    rule: &EditingRule,
    tree: Option<&RuleTree>,
    mask: &[bool],
) {
    assert_eq!(
        mask.len(),
        encoder.action_dim(),
        "mask: wrong action dimension"
    );
    let stop = encoder.stop_action();
    assert!(mask[stop], "mask: stop action must never be masked");
    for &(a, _) in rule.lhs() {
        for dim in encoder.lhs_actions_of_attr(a) {
            assert!(
                !mask[dim],
                "mask: LHS dim {dim} of used attribute {a} left unmasked"
            );
        }
    }
    for cond in rule.pattern() {
        for dim in encoder.condition_actions_of_attr(cond.attr) {
            assert!(
                !mask[dim],
                "mask: condition dim {dim} of constrained attribute {} left unmasked",
                cond.attr
            );
        }
    }
    if let Some(tree) = tree {
        for (action, &on) in mask.iter().enumerate() {
            if action == stop || !on {
                continue;
            }
            match encoder.apply(rule, action) {
                Some(child) => assert!(
                    !tree.contains(&child),
                    "mask: action {action} re-creates an already generated rule"
                ),
                None => panic!("mask: structurally invalid action {action} left unmasked"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RuleTree;
    use er_datagen::figure1;
    use er_rules::{ConditionSpaceConfig, Measures};

    fn setup() -> (er_rules::Task, StateEncoder) {
        let s = figure1();
        let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
        (s.task, enc)
    }

    #[test]
    fn root_mask_allows_everything() {
        let (task, enc) = setup();
        let root = EditingRule::root(task.target());
        let mask = compute_mask(&enc, &root, None);
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn stop_never_masked() {
        let (task, enc) = setup();
        let root = EditingRule::root(task.target());
        // Even with every rule visited, stop stays on.
        let tree = RuleTree::new(root.clone(), Measures::zero(), vec![]);
        let mask = compute_mask(&enc, &root, Some(&tree));
        assert!(mask[enc.stop_action()]);
    }

    #[test]
    fn local_mask_blocks_used_lhs_attr() {
        let (task, enc) = setup();
        let (a, am) = task.candidate_lhs_pairs()[0];
        let rule = EditingRule::root(task.target()).with_lhs_pair(a, am);
        let mask = compute_mask(&enc, &rule, None);
        for dim in enc.lhs_actions_of_attr(a) {
            assert!(!mask[dim], "dim {dim} for used attr {a} must be masked");
        }
        // Conditions on that attribute remain allowed (X and X_p may overlap).
        for dim in enc.condition_actions_of_attr(a) {
            assert!(mask[dim]);
        }
    }

    #[test]
    fn local_mask_blocks_constrained_pattern_attr() {
        let (task, enc) = setup();
        let cond = enc.conditions()[0].clone();
        let attr = cond.attr;
        let rule = EditingRule::root(task.target()).with_condition(cond);
        let mask = compute_mask(&enc, &rule, None);
        for dim in enc.condition_actions_of_attr(attr) {
            assert!(
                !mask[dim],
                "condition dim {dim} on attr {attr} must be masked"
            );
        }
        // LHS dims of the same attribute stay allowed.
        for dim in enc.lhs_actions_of_attr(attr) {
            assert!(mask[dim]);
        }
    }

    #[test]
    fn global_mask_blocks_existing_rules() {
        let (task, enc) = setup();
        let root = EditingRule::root(task.target());
        let mut tree = RuleTree::new(root.clone(), Measures::zero(), vec![]);
        // Pretend the child via action 0 was already generated.
        let child = enc.apply(&root, 0).unwrap();
        tree.add_child(0, child, Measures::zero(), vec![]);
        let mask = compute_mask(&enc, &root, Some(&tree));
        assert!(!mask[0], "action 0 recreates an existing rule");
        // A sibling action stays allowed.
        assert!(mask[1]);
    }

    #[test]
    fn masked_rule_with_everything_used_only_stops() {
        let (task, enc) = setup();
        // Build a rule using every LHS pair and one condition per attribute.
        let mut rule = EditingRule::root(task.target());
        for &(a, am) in task.candidate_lhs_pairs().iter() {
            if !rule.lhs_contains_input(a) {
                rule = rule.with_lhs_pair(a, am);
            }
        }
        let mut used = std::collections::HashSet::new();
        for cond in enc.conditions() {
            if used.insert(cond.attr) {
                rule = rule.with_condition(cond.clone());
            }
        }
        let mask = compute_mask(&enc, &rule, None);
        let allowed: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(allowed, vec![enc.stop_action()]);
    }
}
