//! RLMiner: the training loop (Algorithm 3), greedy inference, and
//! incremental fine-tuning (RLMiner-ft, §V-D3).

use crate::encoding::StateEncoder;
use crate::env::{MinerEnv, RewardConfig};
use er_rl::{DqnAgent, DqnConfig, Transition};
use er_rules::{select_top_k, ConditionSpaceConfig, EditingRule, Measures, Task};
use std::time::{Duration, Instant};

/// RLMiner configuration (defaults follow §V-A: `K = 50`, 5000 training
/// steps, θ = 0.01).
#[derive(Debug, Clone)]
pub struct RlMinerConfig {
    /// Support threshold `η_s`.
    pub support_threshold: usize,
    /// Number of rules to return.
    pub k: usize,
    /// Training steps (the paper trains for a fixed 5000 steps, after
    /// Liang et al.'s neural packet classification setup).
    pub train_steps: usize,
    /// Fine-tuning steps for RLMiner-ft (fewer than `train_steps`).
    pub finetune_steps: usize,
    /// Hard cap on inference steps (the paper observes ≈150 for `K = 50`).
    pub max_inference_steps: usize,
    /// Training-episode truncation: reset the tree after this many steps.
    /// Long wandering episodes starve the agent of root-state visits; the
    /// paper counts training in *steps* (5000), so truncation only changes
    /// how often the tree restarts.
    pub max_episode_steps: usize,
    /// Stop-action reward θ.
    pub theta: f64,
    /// Reward for below-threshold rules.
    pub low_support_penalty: f64,
    /// Frontier-difference reward shaping (Alg. 2 lines 15–16; ablation).
    pub shaping: bool,
    /// Global mask (Alg. 1 lines 12–17; ablation).
    pub global_mask: bool,
    /// Normalize utility rewards to O(1) for network stability (see
    /// [`crate::env::RewardConfig::utility_scale`]).
    pub normalize_rewards: bool,
    /// Certainty at or above this counts as a certain fix (no further
    /// refinement); see [`crate::env::RewardConfig::certainty_stop`].
    pub certainty_stop: f64,
    /// Condition-space construction (`N_split`, prefix reduction).
    pub condition_space: ConditionSpaceConfig,
    /// Value-network hidden widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Exploration schedule: start/end/decay-steps.
    pub epsilon: (f32, f32, usize),
    /// Replay batch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Learn steps between target-network syncs.
    pub target_sync_every: usize,
    /// Use Double DQN bootstrapping in the value network.
    pub double_dqn: bool,
    /// Use prioritized experience replay — helps against the sparse-reward
    /// structure of rule discovery.
    pub prioritized_replay: bool,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for cover scans, mask refreshes, and harvest
    /// re-evaluation (`0` = auto: `ER_THREADS` or sequential). Mining output
    /// is identical at any thread count.
    pub threads: usize,
}

impl RlMinerConfig {
    /// Paper defaults for a given support threshold.
    pub fn new(support_threshold: usize) -> Self {
        RlMinerConfig {
            support_threshold,
            k: 50,
            train_steps: 5000,
            finetune_steps: 1500,
            max_inference_steps: 400,
            max_episode_steps: 150,
            theta: 0.01,
            low_support_penalty: -0.01,
            shaping: true,
            global_mask: true,
            normalize_rewards: true,
            certainty_stop: 0.95,
            condition_space: ConditionSpaceConfig::default(),
            hidden: vec![128, 128],
            lr: 3e-3,
            gamma: 0.95,
            epsilon: (1.0, 0.08, 3000),
            batch_size: 32,
            replay_capacity: 10_000,
            target_sync_every: 100,
            double_dqn: false,
            prioritized_replay: false,
            seed: 7,
            threads: 0,
        }
    }

    fn reward_config(&self, input_rows: usize) -> RewardConfig {
        let base = if self.normalize_rewards {
            RewardConfig::normalized(self.support_threshold, input_rows)
        } else {
            RewardConfig::new(self.support_threshold)
        };
        RewardConfig {
            theta: self.theta,
            low_support_penalty: self.low_support_penalty,
            shaping: self.shaping,
            global_mask: self.global_mask,
            certainty_stop: self.certainty_stop,
            ..base
        }
    }
}

/// Statistics of a training (or fine-tuning) run.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Environment steps taken.
    pub steps: usize,
    /// Episodes completed (tree builds from scratch).
    pub episodes: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Mean TD loss over learn steps (`None` before the replay warm-up).
    pub mean_loss: Option<f64>,
    /// Sum of rewards collected.
    pub reward_sum: f64,
    /// Distinct rules measure-evaluated from scratch during this run —
    /// compare with EnuMiner's `evaluated` to see the enumeration avoided.
    pub fresh_evaluations: usize,
}

/// Result of an inference (mining) pass.
#[derive(Debug, Clone)]
pub struct MineResult {
    /// The non-redundant top-K rules with measures, best first.
    pub rules: Vec<(EditingRule, Measures)>,
    /// Inference steps used.
    pub steps: usize,
    /// Rules in the final tree before top-K selection.
    pub discovered: usize,
    /// Wall-clock time of the inference pass.
    pub elapsed: Duration,
}

impl MineResult {
    /// Just the rules, discarding measures.
    pub fn rules_only(&self) -> Vec<EditingRule> {
        self.rules.iter().map(|(r, _)| r.clone()).collect()
    }
}

/// The RL-based editing rule miner.
///
/// The encoder (and hence the value network's dimensions) is fixed at
/// construction; [`RlMiner::fine_tune`] can then adapt the same agent to an
/// enriched version of the data without retraining from scratch, as long as
/// the relations share the construction task's value pool.
pub struct RlMiner {
    encoder: StateEncoder,
    agent: DqnAgent,
    config: RlMinerConfig,
    /// Valid rules (S ≥ η_s, non-empty LHS) seen in any training episode's
    /// tree. The paper returns "the rules in leaf nodes" after training —
    /// the trees grown *while* training count, not only the final greedy
    /// inference tree.
    seen_rules: std::collections::HashMap<EditingRule, Measures>,
}

impl RlMiner {
    /// Build the miner: encoder from `task`, freshly-initialized agent.
    pub fn new(task: &Task, config: RlMinerConfig) -> Self {
        let encoder = StateEncoder::new(task, config.condition_space);
        let dqn = DqnConfig {
            state_dim: encoder.state_dim(),
            action_dim: encoder.action_dim(),
            hidden: config.hidden.clone(),
            lr: config.lr,
            gamma: config.gamma,
            epsilon_start: config.epsilon.0,
            epsilon_end: config.epsilon.1,
            epsilon_decay_steps: config.epsilon.2,
            batch_size: config.batch_size,
            replay_capacity: config.replay_capacity,
            target_sync_every: config.target_sync_every,
            learn_start: config.batch_size * 2,
            double_dqn: config.double_dqn,
            prioritized_replay: config.prioritized_replay,
            seed: config.seed,
        };
        RlMiner {
            encoder,
            agent: DqnAgent::new(dqn),
            config,
            seen_rules: Default::default(),
        }
    }

    /// The state encoder (dimension bookkeeping).
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The configuration.
    pub fn config(&self) -> &RlMinerConfig {
        &self.config
    }

    /// Update the support threshold `η_s` — used when fine-tuning on an
    /// enriched data version whose scaled threshold differs from the one
    /// the miner was created with.
    pub fn set_support_threshold(&mut self, eta: usize) {
        self.config.support_threshold = eta;
    }

    /// Train for `config.train_steps` environment steps (Algorithm 3).
    pub fn train(&mut self, task: &Task) -> TrainStats {
        self.train_for(task, self.config.train_steps)
    }

    /// Fine-tune the existing agent on (an enriched version of) the task for
    /// `config.finetune_steps` — RLMiner-ft. Exploration stays at its
    /// annealed level, so fine-tuning mostly exploits what was learned.
    pub fn fine_tune(&mut self, task: &Task) -> TrainStats {
        self.train_for(task, self.config.finetune_steps)
    }

    /// The training loop of Algorithm 3, for an explicit step budget.
    pub fn train_for(&mut self, task: &Task, steps: usize) -> TrainStats {
        let start = Instant::now();
        let mut env = MinerEnv::with_threads(
            task,
            &self.encoder,
            self.config.reward_config(task.input().num_rows()),
            self.config.k,
            self.config.threads,
        );
        let mut n = 0usize;
        let mut episodes = 0usize;
        let mut reward_sum = 0.0f64;
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;

        'train: while n < steps {
            env.reset();
            let mut episode_steps = 0usize;
            loop {
                let state = env.state();
                let mask = env.mask();
                let action = self.agent.select_action(&state, &mask);
                let out = env.step(action);
                reward_sum += out.reward;
                episode_steps += 1;
                let truncated = episode_steps >= self.config.max_episode_steps;
                // Truncation is not termination: bootstrap from the next
                // state as usual so the value function stays unbiased.
                let next = if out.done {
                    None
                } else {
                    Some((env.state(), env.mask()))
                };
                self.agent.observe(Transition {
                    state,
                    action,
                    reward: out.reward as f32,
                    next,
                });
                if let Some(loss) = self.agent.learn() {
                    loss_sum += loss as f64;
                    loss_count += 1;
                }
                n += 1;
                if out.done || truncated {
                    episodes += 1;
                    break;
                }
                if n >= steps {
                    break 'train;
                }
            }
            Self::harvest_into(&mut self.seen_rules, self.config.support_threshold, &env);
        }
        Self::harvest_into(&mut self.seen_rules, self.config.support_threshold, &env);
        TrainStats {
            steps: n,
            episodes,
            elapsed: start.elapsed(),
            mean_loss: (loss_count > 0).then(|| loss_sum / loss_count as f64),
            reward_sum,
            fresh_evaluations: env.fresh_evaluations(),
        }
    }

    /// Record the valid rules of the environment's current tree.
    /// (Associated fn with explicit field borrows: `env` holds a reference
    /// to `self.encoder` for its whole lifetime.)
    fn harvest_into(
        pool: &mut std::collections::HashMap<EditingRule, Measures>,
        eta: usize,
        env: &MinerEnv<'_>,
    ) {
        for (rule, m) in env.discovered() {
            if rule.lhs_len() >= 1 && m.support >= eta {
                pool.insert(rule, m);
            }
        }
    }

    /// Rules harvested from training episodes so far.
    pub fn seen_rules(&self) -> usize {
        self.seen_rules.len()
    }

    /// Greedy inference: build one rule tree with the learned policy and
    /// return the non-redundant top-K rules, merged with the rules
    /// harvested from the training trees (the paper's "rules in leaf
    /// nodes").
    pub fn mine(&self, task: &Task) -> MineResult {
        let start = Instant::now();
        let mut env = MinerEnv::with_threads(
            task,
            &self.encoder,
            self.config.reward_config(task.input().num_rows()),
            self.config.k,
            self.config.threads,
        );
        let mut steps = 0usize;
        while steps < self.config.max_inference_steps {
            let state = env.state();
            let mask = env.mask();
            let action = self.agent.greedy_action(&state, &mask);
            steps += 1;
            if env.step(action).done {
                break;
            }
        }
        // Pattern-only tree nodes (empty LHS) are exploration scaffolding,
        // not applicable editing rules — Definition 1 needs X to reference
        // the master data. Keep rules with at least one LHS pair, merged
        // with the training-tree harvest. Harvested measures may be stale
        // (fine-tuning mines a *newer* data version than the one a rule was
        // seen on), so pooled rules are re-evaluated against this task.
        let mut scored: std::collections::HashMap<EditingRule, Measures> =
            std::collections::HashMap::new();
        for (rule, m) in env.discovered() {
            if rule.lhs_len() >= 1 {
                scored.insert(rule, m);
            }
        }
        // Re-evaluate the training-tree harvest in parallel: each rule's
        // measures are independent, and `scored` is keyed by rule, so the
        // merged map is identical at any thread count.
        let pending: Vec<&EditingRule> = self
            .seen_rules
            .keys()
            .filter(|rule| !scored.contains_key(*rule))
            .collect();
        let evaluator = env.evaluator();
        let measures = evaluator
            .pool()
            .map(&pending, |rule| evaluator.eval(rule, None));
        for (rule, m) in pending.into_iter().zip(measures) {
            if m.support >= self.config.support_threshold {
                scored.insert(rule.clone(), m);
            }
        }
        let discovered: Vec<_> = scored.into_iter().collect();
        let num = discovered.len();
        let rules = select_top_k(discovered, self.config.k);
        MineResult {
            rules,
            steps,
            discovered: num,
            elapsed: start.elapsed(),
        }
    }

    /// Train then mine, returning both stats (the common call pattern).
    pub fn train_and_mine(&mut self, task: &Task) -> (TrainStats, MineResult) {
        let stats = self.train(task);
        let result = self.mine(task);
        (stats, result)
    }

    /// Serialize the trained value network to JSON. Pair with
    /// [`RlMiner::load_network`] to persist an agent between sessions (e.g.
    /// an overnight RLMiner-ft refresh pipeline).
    pub fn save_network(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(&self.agent.export_network())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(path, json)
    }

    /// Load value-network weights saved by [`RlMiner::save_network`] into
    /// this miner (exploration continues from the current schedule).
    ///
    /// # Errors
    /// I/O or JSON errors; and the architectures must match (`hidden` and
    /// the task's encoding dimensions), which otherwise panics.
    pub fn load_network(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = std::fs::read_to_string(path)?;
        let net: er_rl::Mlp =
            serde_json::from_str(&json).map_err(|e| std::io::Error::other(e.to_string()))?;
        self.agent.import_network(&net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::{figure1, DatasetKind, ScenarioConfig};
    use er_rules::{apply_rules, dominates};

    fn quick_config(support_threshold: usize) -> RlMinerConfig {
        let mut c = RlMinerConfig::new(support_threshold);
        c.train_steps = 2000;
        c.finetune_steps = 400;
        c.epsilon = (1.0, 0.05, 1200);
        c.hidden = vec![64];
        c.k = 20;
        c
    }

    fn small(kind: DatasetKind) -> er_datagen::Scenario {
        kind.build(ScenarioConfig {
            input_size: 300,
            master_size: 150,
            seed: 11,
            ..kind.paper_config()
        })
    }

    #[test]
    fn trains_and_mines_on_figure1() {
        let s = figure1();
        let mut miner = RlMiner::new(&s.task, quick_config(1));
        let stats = miner.train(&s.task);
        assert_eq!(stats.steps, 2000);
        assert!(stats.episodes > 0);
        let result = miner.mine(&s.task);
        assert!(!result.rules.is_empty());
        assert!(result.steps <= miner.config.max_inference_steps);
    }

    #[test]
    fn discovered_rules_meet_support_threshold() {
        let s = small(DatasetKind::Covid);
        let mut miner = RlMiner::new(&s.task, quick_config(s.support_threshold));
        miner.train(&s.task);
        let result = miner.mine(&s.task);
        for (rule, m) in &result.rules {
            assert!(
                m.support >= s.support_threshold,
                "{rule:?} support {}",
                m.support
            );
        }
    }

    #[test]
    fn result_is_non_redundant() {
        let s = small(DatasetKind::Covid);
        let mut miner = RlMiner::new(&s.task, quick_config(s.support_threshold));
        miner.train(&s.task);
        let result = miner.mine(&s.task);
        for (i, (a, _)) in result.rules.iter().enumerate() {
            for (j, (b, _)) in result.rules.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b));
                }
            }
        }
    }

    #[test]
    fn location_mining_repairs_well() {
        // Location needs a bit more data and training than the other quick
        // tests: at 300 rows the per-value pattern supports sit right at the
        // threshold and the reward signal is too noisy to learn reliably.
        let s = DatasetKind::Location.build(ScenarioConfig {
            input_size: 800,
            master_size: 500,
            seed: 11,
            ..DatasetKind::Location.paper_config()
        });
        let mut c = RlMinerConfig::new(s.support_threshold);
        c.train_steps = 4000;
        c.finetune_steps = 800;
        c.epsilon = (1.0, 0.05, 2500);
        c.hidden = vec![64];
        c.k = 20;
        let mut miner = RlMiner::new(&s.task, c);
        miner.train(&s.task);
        let result = miner.mine(&s.task);
        assert!(!result.rules.is_empty());
        let report = apply_rules(&s.task, &result.rules_only());
        let prf = s.evaluate(&report);
        assert!(prf.f1 > 0.5, "f1 {}", prf.f1);
    }

    #[test]
    fn mining_is_deterministic_after_training() {
        let s = small(DatasetKind::Covid);
        let mut miner = RlMiner::new(&s.task, quick_config(s.support_threshold));
        miner.train(&s.task);
        let a = miner.mine(&s.task);
        let b = miner.mine(&s.task);
        assert_eq!(a.rules_only(), b.rules_only());
    }

    #[test]
    fn fine_tune_uses_fewer_steps() {
        let s = small(DatasetKind::Covid);
        let mut miner = RlMiner::new(&s.task, quick_config(s.support_threshold));
        let t = miner.train(&s.task);
        let ft = miner.fine_tune(&s.task);
        assert!(ft.steps < t.steps);
        // Fine-tuning re-walks known rules: almost everything served from
        // the evaluator/reward caches of the *new* env is impossible to
        // check directly (fresh env), but it must still produce rules.
        let result = miner.mine(&s.task);
        assert!(!result.rules.is_empty());
    }

    #[test]
    fn rlminer_avoids_enumeration() {
        let s = small(DatasetKind::Adult);
        let mut miner = RlMiner::new(&s.task, quick_config(s.support_threshold));
        let stats = miner.train(&s.task);
        // EnuMiner evaluates tens of thousands of rules here; RLMiner's
        // fresh evaluations are bounded by its training steps.
        assert!(
            stats.fresh_evaluations <= stats.steps,
            "fresh {} vs steps {}",
            stats.fresh_evaluations,
            stats.steps
        );
    }

    #[test]
    fn mine_includes_training_harvest() {
        let s = small(DatasetKind::Covid);
        let mut miner = RlMiner::new(&s.task, quick_config(s.support_threshold));
        miner.train(&s.task);
        assert!(miner.seen_rules() > 0, "training should harvest rules");
        let result = miner.mine(&s.task);
        // No returned rule has an empty LHS.
        assert!(result.rules.iter().all(|(r, _)| r.lhs_len() >= 1));
        assert!(result.discovered > 0);
    }

    #[test]
    fn harvested_measures_are_refreshed_on_new_version() {
        // Train on a small prefix, mine on the full version: every reported
        // support must be consistent with the *full* version's data.
        let s = DatasetKind::Covid.build(ScenarioConfig {
            input_size: 600,
            master_size: 300,
            seed: 11,
            ..DatasetKind::Covid.paper_config()
        });
        let half = s.with_input_prefix(300);
        let mut miner = RlMiner::new(&half.task, quick_config(half.support_threshold));
        miner.train(&half.task);
        miner.set_support_threshold(s.support_threshold);
        let result = miner.mine(&s.task);
        let ev = er_rules::Evaluator::new(&s.task);
        for (rule, m) in &result.rules {
            let fresh = ev.eval(rule, None);
            assert_eq!(fresh.support, m.support, "stale support for {rule:?}");
        }
    }

    #[test]
    fn network_round_trips_through_disk() {
        let s = figure1();
        let mut a = RlMiner::new(&s.task, quick_config(1));
        a.train(&s.task);
        let dir = std::env::temp_dir().join("erminer_net_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        a.save_network(&path).unwrap();

        // Loaded agents restore the policy: two independent loads mine
        // identically (the training-tree harvest stays with `a`).
        let mut b = RlMiner::new(&s.task, quick_config(1));
        b.load_network(&path).unwrap();
        let mut c = RlMiner::new(&s.task, quick_config(1));
        c.load_network(&path).unwrap();
        assert_eq!(b.mine(&s.task).rules_only(), c.mine(&s.task).rules_only());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_training_is_reproducible() {
        let s = figure1();
        let run = || {
            let mut miner = RlMiner::new(&s.task, quick_config(1));
            miner.train(&s.task);
            miner.mine(&s.task).rules_only()
        };
        assert_eq!(run(), run());
    }
}
