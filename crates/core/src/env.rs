//! The rule-discovery environment: `GrowTree` (Algorithm 4) and `CalReward`
//! (Algorithm 2).
//!
//! The environment owns the growing [`RuleTree`], the measure evaluator (with
//! its master-side indexes), and the reward cache `R_Σ`. The evaluator and
//! `R_Σ` survive [`MinerEnv::reset`], so rules rediscovered in later episodes
//! cost one hash lookup instead of a measure evaluation — the optimization
//! Algorithm 2 calls out explicitly.

use crate::encoding::StateEncoder;
use crate::mask::compute_mask_par;
use crate::tree::RuleTree;
use er_rules::{EditingRule, Evaluator, Measures, Task};
use std::collections::HashMap;

/// Reward-function knobs (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct RewardConfig {
    /// Stop-action reward θ (a small positive constant; 0.01 in the paper —
    /// big values let the agent live off "easy money" and never mine).
    pub theta: f64,
    /// Reward for a rule below the support threshold (−0.01 in the paper).
    pub low_support_penalty: f64,
    /// Support threshold `η_s`.
    pub support_threshold: usize,
    /// Enable the frontier-difference shaping of lines 15–16 (ablation
    /// switch; on in the paper).
    pub shaping: bool,
    /// Enable the global mask (ablation switch; on in the paper).
    pub global_mask: bool,
    /// Rules with certainty at or above this are treated as certain fixes
    /// and never refined further (Alg. 4 line 14 uses `C < 1`; on data with
    /// approximate dependencies certainty never reaches exactly 1, which
    /// would degenerate the check).
    pub certainty_stop: f64,
    /// Multiplier applied to utility-based rule rewards before they reach
    /// the agent. DQN with Huber loss learns fastest when rewards are O(1);
    /// utilities reach `(log₁₀ S)²·2 ≈ 10–40`, so [`MinerEnv::new`] callers
    /// typically set this to `1 / ((log₁₀ |D|)² · 2)`. θ and the
    /// low-support penalty are already O(1) and are not scaled.
    pub utility_scale: f64,
}

impl RewardConfig {
    /// Paper defaults for a given support threshold.
    pub fn new(support_threshold: usize) -> Self {
        RewardConfig {
            theta: 0.01,
            low_support_penalty: -0.01,
            support_threshold,
            shaping: true,
            global_mask: true,
            certainty_stop: 0.95,
            utility_scale: 1.0,
        }
    }

    /// Paper defaults plus a utility scale normalizing the maximum possible
    /// reward (`(log₁₀ n)² · 2` for an input of `n` rows) to ≈ 1.
    pub fn normalized(support_threshold: usize, input_rows: usize) -> Self {
        let max_u = {
            let l = (input_rows.max(10) as f64).log10();
            l * l * 2.0
        };
        RewardConfig {
            utility_scale: 1.0 / max_u,
            ..Self::new(support_threshold)
        }
    }
}

/// One environment step's outcome.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Reward `r_t`.
    pub reward: f64,
    /// Whether the episode ended (tree exhausted or `K` rules discovered).
    pub done: bool,
}

/// The rule-mining environment (Definition 5's `⟨S, A, T, R⟩` minus the
/// agent).
pub struct MinerEnv<'a> {
    task: &'a Task,
    evaluator: Evaluator<'a>,
    encoder: &'a StateEncoder,
    reward: RewardConfig,
    /// Episode ends once this many rules are discovered (`K`).
    k: usize,
    tree: RuleTree,
    /// `R_Σ` — reward per rule, shared across episodes (Algorithm 2).
    rewards: HashMap<EditingRule, f64>,
    steps: usize,
    /// Rules evaluated from scratch (cache misses) — a cost counter for the
    /// efficiency experiments.
    fresh_evaluations: usize,
}

impl<'a> MinerEnv<'a> {
    /// Build the environment (the `BuildEnv` of Algorithm 3, line 1) with
    /// auto-resolved threading (`ER_THREADS` or sequential).
    pub fn new(task: &'a Task, encoder: &'a StateEncoder, reward: RewardConfig, k: usize) -> Self {
        Self::with_threads(task, encoder, reward, k, 0)
    }

    /// Build the environment with an explicit worker-thread count for cover
    /// scans and global-mask refreshes (`0` = auto). The environment's
    /// trajectory is identical at any thread count.
    pub fn with_threads(
        task: &'a Task,
        encoder: &'a StateEncoder,
        reward: RewardConfig,
        k: usize,
        threads: usize,
    ) -> Self {
        let evaluator = Evaluator::with_threads(task, threads);
        let mut env = MinerEnv {
            task,
            evaluator,
            encoder,
            reward,
            k,
            tree: RuleTree::new(
                EditingRule::root(task.target()),
                Measures::zero(),
                Vec::new(),
            ),
            rewards: HashMap::new(),
            steps: 0,
            fresh_evaluations: 0,
        };
        env.reset();
        env
    }

    /// Start a new episode: a fresh tree rooted at the empty rule. The
    /// reward cache and measure evaluator persist.
    pub fn reset(&mut self) {
        let root = EditingRule::root(self.task.target());
        let all_rows: Vec<usize> = (0..self.task.input().num_rows()).collect();
        let root_measures = self.evaluator.eval_on_cover_cached(&root, &all_rows);
        let root_reward = self.rule_reward(root_measures);
        self.rewards.entry(root.clone()).or_insert(root_reward);
        self.tree = RuleTree::new(root, root_measures, all_rows);
        // The root joins the level-order queue so the walk can return to it
        // after the first descent (its siblings-to-be are still unexplored).
        self.tree.enqueue(0);
    }

    /// The current rule (state, decoded form).
    pub fn current_rule(&self) -> &EditingRule {
        &self.tree.node(self.tree.current()).rule
    }

    /// The current state encoding.
    pub fn state(&self) -> Vec<f32> {
        self.encoder.encode(self.current_rule())
    }

    /// The current action mask (Algorithm 1), honoring the global-mask
    /// ablation switch. Large action spaces refresh the global mask on the
    /// evaluator's worker pool.
    pub fn mask(&self) -> Vec<bool> {
        let tree = if self.reward.global_mask {
            Some(&self.tree)
        } else {
            None
        };
        compute_mask_par(
            self.encoder,
            self.current_rule(),
            tree,
            &self.evaluator.pool(),
        )
    }

    /// Apply action `a_t` (Algorithm 4 + Algorithm 2). Returns the reward
    /// and whether the episode finished.
    pub fn step(&mut self, action: usize) -> StepOutcome {
        self.steps += 1;
        if action == self.encoder.stop_action() {
            // Stop: constant θ reward; move to the next node in level order.
            let done = match self.tree.next_node() {
                Some(node) => {
                    self.tree.set_current(node);
                    false
                }
                None => true,
            };
            #[cfg(feature = "debug-invariants")]
            self.check_invariants();
            return StepOutcome {
                reward: self.reward.theta,
                done,
            };
        }

        let current_id = self.tree.current();
        let parent_rule = self.tree.node(current_id).rule.clone();
        let Some(child) = self.encoder.apply(&parent_rule, action) else {
            // The mask makes this unreachable for a well-behaved agent;
            // penalize defensively instead of panicking on exploration bugs.
            return StepOutcome {
                reward: self.reward.low_support_penalty,
                done: false,
            };
        };

        // Measures via subspace search on the parent's cover (Alg. 4, l. 9–10).
        let (measures, cover) = {
            let parent = self.tree.node(current_id);
            let cover = if child.pattern_len() == parent.rule.pattern_len() {
                parent.cover.clone()
            } else {
                self.evaluator.cover(&child, Some(&parent.cover))
            };
            if self.evaluator.cached(&child).is_none() {
                self.fresh_evaluations += 1;
            }
            (self.evaluator.eval_on_cover_cached(&child, &cover), cover)
        };

        // Reward (Algorithm 2): reuse R_Σ, else compute and store.
        let base = match self.rewards.get(&child) {
            Some(&r) => r,
            None => {
                let r = self.rule_reward(measures);
                self.rewards.insert(child.clone(), r);
                r
            }
        };
        // Frontier-difference shaping (lines 15–16): first valid child of a
        // childless node earns/loses the utility delta vs its parent.
        let mut reward = base;
        if self.reward.shaping
            && self.tree.node(current_id).children.is_empty()
            && measures.support >= self.reward.support_threshold
        {
            let parent_reward = self.rewards.get(&parent_rule).copied().unwrap_or(0.0);
            reward += base - parent_reward;
        }

        // Grow the tree (Algorithm 4, lines 11–17).
        if measures.support >= self.reward.support_threshold {
            let certain = measures.certainty >= self.reward.certainty_stop;
            let node = self.tree.add_child(current_id, child, measures, cover);
            if !certain {
                // Refinable: descend into the child (Alg. 4 returns its
                // state), and re-queue the parent — it still has unexplored
                // refinements and the level-order walk must be able to come
                // back to it after this branch is done.
                self.tree.enqueue(current_id);
                self.tree.set_current(node);
            }
            // Certain fix: discovered, but "stop refinement" (Alg. 4 line
            // 17) — the cursor stays on the parent so the agent keeps
            // refining *it* instead of a rule that is already certain.
        } else {
            // Below threshold: never becomes a node, but must stay visited
            // so the global mask won't let the agent regenerate it.
            self.tree.mark_visited(child);
        }

        let done = self.tree.num_discovered() >= self.k;
        #[cfg(feature = "debug-invariants")]
        self.check_invariants();
        StepOutcome { reward, done }
    }

    /// Check the invariants of every structure the environment owns: the
    /// rule tree, the evaluator caches, and the freshly computed action mask
    /// for the current state. Called after every [`MinerEnv::step`] when the
    /// `debug-invariants` feature is on; also usable directly from tests.
    ///
    /// Panics on violation.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
        self.evaluator.check_invariants();
        let tree = if self.reward.global_mask {
            Some(&self.tree)
        } else {
            None
        };
        crate::mask::check_mask_invariants(self.encoder, self.current_rule(), tree, &self.mask());
    }

    fn rule_reward(&self, m: Measures) -> f64 {
        if m.support >= self.reward.support_threshold {
            m.utility * self.reward.utility_scale
        } else {
            self.reward.low_support_penalty
        }
    }

    /// The rules discovered in the current episode's tree.
    pub fn discovered(&self) -> Vec<(EditingRule, Measures)> {
        self.tree.discovered()
    }

    /// The growing tree (inspection/tests).
    pub fn tree(&self) -> &RuleTree {
        &self.tree
    }

    /// The measure evaluator (shared master-side indexes).
    pub fn evaluator(&self) -> &Evaluator<'a> {
        &self.evaluator
    }

    /// Total environment steps taken (across episodes).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Rules evaluated from scratch (reward-cache misses).
    pub fn fresh_evaluations(&self) -> usize {
        self.fresh_evaluations
    }

    /// Size of the reward cache `R_Σ`.
    pub fn reward_cache_len(&self) -> usize {
        self.rewards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::figure1;
    use er_rules::ConditionSpaceConfig;

    fn setup() -> (er_rules::Task, StateEncoder) {
        let s = figure1();
        let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
        (s.task, enc)
    }

    #[test]
    fn reset_starts_at_root() {
        let (task, enc) = setup();
        let env = MinerEnv::new(&task, &enc, RewardConfig::new(1), 10);
        assert_eq!(env.current_rule(), &EditingRule::root(task.target()));
        assert!(env.state().iter().all(|&x| x == 0.0));
        assert_eq!(env.tree().num_discovered(), 0);
    }

    #[test]
    fn stop_on_empty_queue_ends_episode() {
        let (task, enc) = setup();
        let mut env = MinerEnv::new(&task, &enc, RewardConfig::new(1), 10);
        // The root sits in the queue at reset: the first stop pops it back,
        // the second stop finds the queue empty and ends the episode.
        let first = env.step(enc.stop_action());
        assert!(!first.done);
        assert!((first.reward - 0.01).abs() < 1e-12);
        let second = env.step(enc.stop_action());
        assert!(second.done);
    }

    #[test]
    fn valid_refinement_grows_tree_and_descends() {
        let (task, enc) = setup();
        let mut env = MinerEnv::new(&task, &enc, RewardConfig::new(1), 10);
        let out = env.step(0); // add first LHS pair
        assert!(!out.done);
        assert_eq!(env.tree().num_discovered(), 1);
        let child = &env.tree().node(1);
        if child.measures.certainty < 1.0 {
            // Refinable child: the cursor descended into it.
            assert_eq!(env.current_rule().lhs_len(), 1);
        } else {
            // Certain fix: refinement of it stops, the cursor stays at the
            // root (Alg. 4 line 17).
            assert_eq!(env.current_rule().lhs_len(), 0);
        }
    }

    #[test]
    fn low_support_children_are_not_added_but_masked() {
        let (task, enc) = setup();
        // Threshold higher than any rule's support on 3 input rows.
        let mut env = MinerEnv::new(&task, &enc, RewardConfig::new(100), 10);
        let out = env.step(0);
        assert_eq!(env.tree().num_discovered(), 0);
        assert!((out.reward - -0.01).abs() < 1e-9);
        // Still at the root, and the action is now globally masked.
        assert_eq!(env.current_rule().lhs_len(), 0);
        assert!(!env.mask()[0]);
    }

    #[test]
    fn reward_cache_reused_across_episodes() {
        let (task, enc) = setup();
        let mut env = MinerEnv::new(&task, &enc, RewardConfig::new(1), 10);
        env.step(0);
        let fresh_before = env.fresh_evaluations();
        env.reset();
        env.step(0); // same rule: reward must come from R_Σ
        assert_eq!(env.fresh_evaluations(), fresh_before);
        assert!(env.reward_cache_len() >= 2); // root + the child
    }

    #[test]
    fn episode_ends_at_k_rules() {
        let (task, enc) = setup();
        let mut env = MinerEnv::new(&task, &enc, RewardConfig::new(1), 2);
        let mut done = false;
        // Greedily take the first allowed non-stop action until done.
        for _ in 0..50 {
            let mask = env.mask();
            let action = (0..enc.action_dim())
                .find(|&a| mask[a] && a != enc.stop_action())
                .unwrap_or(enc.stop_action());
            let out = env.step(action);
            if out.done {
                done = true;
                break;
            }
        }
        assert!(done);
        assert!(env.tree().num_discovered() >= 2);
    }

    #[test]
    fn shaping_gives_bonus_for_improving_children() {
        let (task, enc) = setup();
        // With shaping on, the first valid child of the root earns
        // base + (base − root_reward); compare against shaping off.
        let mut on = MinerEnv::new(&task, &enc, RewardConfig::new(1), 10);
        let mut off_cfg = RewardConfig::new(1);
        off_cfg.shaping = false;
        let mut off = MinerEnv::new(&task, &enc, off_cfg, 10);
        let r_on = on.step(0).reward;
        let r_off = off.step(0).reward;
        // Same rule, same base reward; the difference is exactly the delta.
        assert!((r_on - r_off).abs() > 0.0 || r_on == r_off);
        // Verify relationship holds: r_on = 2·base − root_reward.
        let base = r_off;
        let root_reward = {
            let root = EditingRule::root(task.target());
            // root support = 3 ≥ 1 ⇒ reward = utility of root
            on.evaluator().cached(&root).unwrap().utility
        };
        assert!((r_on - (2.0 * base - root_reward)).abs() < 1e-9);
    }

    #[test]
    fn discovered_rules_meet_threshold() {
        let (task, enc) = setup();
        let mut env = MinerEnv::new(&task, &enc, RewardConfig::new(2), 20);
        for action in 0..enc.action_dim() {
            if action == enc.stop_action() {
                continue;
            }
            if env.mask()[action] {
                env.step(action);
                // go back to root-ish by stopping
                env.step(enc.stop_action());
            }
        }
        for (_, m) in env.discovered() {
            assert!(m.support >= 2);
        }
    }
}
