//! The rule tree (Figure 3) with level-order traversal.
//!
//! Each node holds one rule, its measures, and its pattern cover (the input
//! rows matching `t_p`), enabling subspace search when children are grown
//! (Algorithm 4, lines 9–10). A FIFO queue of refinable nodes implements the
//! level-order walk `getNextNode` uses after a stop action.

use er_rules::{EditingRule, Measures};
use er_table::RowId;
use std::collections::{HashSet, VecDeque};

/// Index of a node in the tree's arena.
pub type NodeId = usize;

/// One node of the rule tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// The rule this node represents.
    pub rule: EditingRule,
    /// Its measures (computed when the node was created).
    pub measures: Measures,
    /// Input rows matching the rule's pattern (subspace-search cover).
    pub cover: Vec<RowId>,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children, in creation order.
    pub children: Vec<NodeId>,
}

/// An arena-allocated rule tree with a level-order frontier queue and a
/// visited-rule set (the hash table of §III-B that prevents generating the
/// same rule twice).
#[derive(Debug, Clone)]
pub struct RuleTree {
    nodes: Vec<Node>,
    queue: VecDeque<NodeId>,
    /// Whether each node currently sits in the queue (enqueue is idempotent).
    queued: Vec<bool>,
    visited: HashSet<EditingRule>,
    current: NodeId,
}

impl RuleTree {
    /// A tree containing only the root rule.
    pub fn new(root_rule: EditingRule, root_measures: Measures, root_cover: Vec<RowId>) -> Self {
        let root = Node {
            rule: root_rule.clone(),
            measures: root_measures,
            cover: root_cover,
            parent: None,
            children: Vec::new(),
        };
        let mut visited = HashSet::new();
        visited.insert(root_rule);
        RuleTree {
            nodes: vec![root],
            queue: VecDeque::new(),
            queued: vec![false],
            visited,
            current: 0,
        }
    }

    /// The node currently being refined.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// Move the cursor to `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn set_current(&mut self, id: NodeId) {
        assert!(id < self.nodes.len());
        self.current = id;
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Total number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Whether `rule` was already generated in this tree.
    pub fn contains(&self, rule: &EditingRule) -> bool {
        self.visited.contains(rule)
    }

    /// Add a child of `parent`. Returns its id. The rule is recorded in the
    /// visited set.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        rule: EditingRule,
        measures: Measures,
        cover: Vec<RowId>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.visited.insert(rule.clone());
        self.nodes.push(Node {
            rule,
            measures,
            cover,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.queued.push(false);
        self.nodes[parent].children.push(id);
        id
    }

    /// Record a rule as generated without materializing a node — used for
    /// below-threshold rules that must never be regenerated (global mask)
    /// yet are not part of the discovered set.
    pub fn mark_visited(&mut self, rule: EditingRule) {
        self.visited.insert(rule);
    }

    /// Enqueue a node for later level-order refinement. Idempotent: a node
    /// already waiting in the queue is not added twice.
    pub fn enqueue(&mut self, id: NodeId) {
        if !self.queued[id] {
            self.queued[id] = true;
            self.queue.push_back(id);
        }
    }

    /// Pop the next node in level order (`getNextNode` of Algorithm 4).
    pub fn next_node(&mut self) -> Option<NodeId> {
        let id = self.queue.pop_front();
        if let Some(id) = id {
            self.queued[id] = false;
        }
        id
    }

    /// Number of queued (still refinable) nodes.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// All non-root rules with their measures — the discovered set `Σ`
    /// returned after an episode.
    pub fn discovered(&self) -> Vec<(EditingRule, Measures)> {
        self.nodes[1..]
            .iter()
            .map(|n| (n.rule.clone(), n.measures))
            .collect()
    }

    /// Number of non-root nodes (the `|env.tree.leaves|` of Algorithm 3's
    /// stopping condition: every discovered rule counts).
    pub fn num_discovered(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Structural invariants, available under the `debug-invariants` feature.
    ///
    /// * the arena is acyclic: every non-root node's parent id is smaller
    ///   than its own (nodes are only ever appended under existing parents);
    /// * parent/child links are consistent both ways, children are recorded
    ///   in strictly increasing creation order, and only the root lacks a
    ///   parent;
    /// * the cursor is in bounds and `queued` mirrors the queue exactly
    ///   (same members, no duplicates);
    /// * the visited set contains every materialized rule (the global mask
    ///   can never readmit an existing node).
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        assert!(!self.nodes.is_empty(), "RuleTree: empty arena");
        assert!(
            self.current < self.nodes.len(),
            "RuleTree: cursor out of bounds"
        );
        assert_eq!(
            self.queued.len(),
            self.nodes.len(),
            "RuleTree: queued flags out of sync"
        );
        assert!(
            self.nodes[0].parent.is_none(),
            "RuleTree: root has a parent"
        );
        for (id, node) in self.nodes.iter().enumerate() {
            if id > 0 {
                let p = node
                    .parent
                    .unwrap_or_else(|| panic!("RuleTree: node {id} has no parent"));
                assert!(
                    p < id,
                    "RuleTree: node {id} precedes its parent {p} (cycle)"
                );
                assert!(
                    self.nodes[p].children.contains(&id),
                    "RuleTree: parent {p} does not list child {id}"
                );
            }
            for w in node.children.windows(2) {
                assert!(
                    w[0] < w[1],
                    "RuleTree: children of {id} not in creation order"
                );
            }
            for &c in &node.children {
                assert!(
                    c < self.nodes.len(),
                    "RuleTree: child {c} of {id} out of bounds"
                );
                assert!(
                    c > id,
                    "RuleTree: child {c} precedes its parent {id} (cycle)"
                );
                assert_eq!(
                    self.nodes[c].parent,
                    Some(id),
                    "RuleTree: child {c} does not point back to {id}"
                );
            }
            assert!(
                self.visited.contains(&node.rule),
                "RuleTree: node {id} rule missing from the visited set"
            );
        }
        let mut in_queue = vec![false; self.nodes.len()];
        for &id in &self.queue {
            assert!(
                id < self.nodes.len(),
                "RuleTree: queued id {id} out of bounds"
            );
            assert!(!in_queue[id], "RuleTree: node {id} queued twice");
            in_queue[id] = true;
        }
        assert_eq!(
            in_queue, self.queued,
            "RuleTree: queued flags disagree with the queue"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(i: usize) -> EditingRule {
        EditingRule::new(vec![(i, i)], (9, 9), vec![])
    }

    fn m() -> Measures {
        Measures::zero()
    }

    #[test]
    fn root_only_tree() {
        let t = RuleTree::new(EditingRule::root((9, 9)), m(), vec![0, 1]);
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.num_discovered(), 0);
        assert!(t.contains(&EditingRule::root((9, 9))));
    }

    #[test]
    fn add_children_links_parent() {
        let mut t = RuleTree::new(EditingRule::root((9, 9)), m(), vec![]);
        let a = t.add_child(0, rule(0), m(), vec![]);
        let b = t.add_child(0, rule(1), m(), vec![]);
        let c = t.add_child(a, rule(2), m(), vec![]);
        assert_eq!(t.node(0).children, vec![a, b]);
        assert_eq!(t.node(c).parent, Some(a));
        assert_eq!(t.num_discovered(), 3);
        assert!(t.contains(&rule(1)));
        assert!(!t.contains(&rule(7)));
    }

    #[test]
    fn queue_is_fifo() {
        let mut t = RuleTree::new(EditingRule::root((9, 9)), m(), vec![]);
        let a = t.add_child(0, rule(0), m(), vec![]);
        let b = t.add_child(0, rule(1), m(), vec![]);
        t.enqueue(a);
        t.enqueue(b);
        assert_eq!(t.queue_len(), 2);
        assert_eq!(t.next_node(), Some(a));
        assert_eq!(t.next_node(), Some(b));
        assert_eq!(t.next_node(), None);
    }

    #[test]
    fn discovered_excludes_root() {
        let mut t = RuleTree::new(EditingRule::root((9, 9)), m(), vec![]);
        t.add_child(0, rule(0), m(), vec![]);
        let d = t.discovered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, rule(0));
    }
}
