#![forbid(unsafe_code)]
//! # er-rlminer — RLMiner: editing rule discovery by deep reinforcement
//! learning (the paper's contribution, §III–§IV)
//!
//! RLMiner models rule discovery as a Markov Decision Process (Definition 5):
//! a state is an editing rule (a node of the growing rule tree), an action
//! refines the rule by adding an LHS attribute pair or a pattern condition —
//! or stops and moves to the next tree node — and the reward is shaped from
//! the rule utility measure. A masked DQN learns which refinements are worth
//! exploring, so the miner never enumerates the condition space the way
//! EnuMiner does.
//!
//! Module map (each implements one piece of §IV):
//!
//! * [`encoding`] — the one-hot state `s = [s_l; s_p]` and action space
//!   `a = [a_l; a_p; a_stop]` (Eqs. 6–12), including `N_split` continuous
//!   ranges and common-prefix domain reduction via
//!   [`er_rules::ConditionSpace`].
//! * [`mask`] — the rule mask (Algorithm 1): the local mask forbids
//!   re-constraining attributes already in `LHS(φ)`/`t_p`, the global mask
//!   forbids actions that would re-create an already-considered rule.
//! * [`tree`] — the rule tree (Figure 3) with level-order traversal and
//!   per-node input covers for subspace search (Algorithm 4, lines 9–10).
//! * [`env`] — the environment: `GrowTree` (Algorithm 4) and `CalReward`
//!   (Algorithm 2) with the reward cache `R_Σ` and the frontier-difference
//!   shaping of lines 15–16.
//! * [`miner`] — the training loop (Algorithm 3), greedy inference, and
//!   **RLMiner-ft** incremental fine-tuning (§V-D3).
//!
//! ```no_run
//! use er_rlminer::{RlMiner, RlMinerConfig};
//! # let scenario = er_datagen::figure1();
//! let mut miner = RlMiner::new(&scenario.task, RlMinerConfig::new(1));
//! miner.train(&scenario.task);
//! let result = miner.mine(&scenario.task);
//! for (rule, measures) in &result.rules {
//!     println!("{measures:?}");
//! }
//! ```

pub mod encoding;
pub mod env;
pub mod mask;
pub mod miner;
pub mod tree;

pub use encoding::{Refinement, StateEncoder};
pub use env::{MinerEnv, RewardConfig, StepOutcome};
#[cfg(feature = "debug-invariants")]
pub use mask::check_mask_invariants;
pub use mask::compute_mask;
pub use miner::{MineResult, RlMiner, RlMinerConfig, TrainStats};
pub use tree::RuleTree;
