//! The rebuild-equivalence suite: incremental maintenance must be
//! indistinguishable from rebuilding from scratch.
//!
//! Two layers are checked over a generated Covid scenario:
//!
//! * **index level** — `apply_append` on `KeyIndex`/`GroupIndex`/`Pli`
//!   produces state equal to a fresh build over the grown relation;
//! * **engine level** — an [`IncrEngine`] that absorbed appends produces
//!   repair reports (predictions, scores, candidates, rules applied)
//!   identical to a fresh [`BatchRepairer`] built over the grown master,
//!   at worker-thread counts 1, 2 and 8 (mirroring the workspace's
//!   par-determinism invariant).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_datagen::{covid, NoiseConfig, Scenario, ScenarioConfig};
use er_incr::IncrEngine;
use er_rules::{BatchRepairer, EditingRule, RepairReport};
use er_table::{GroupIndex, KeyIndex, Pli, Relation, Value};

const BASE_ROWS: usize = 120;

fn scenario() -> Scenario {
    covid(ScenarioConfig {
        input_size: 120,
        master_size: 200,
        noise: NoiseConfig::rate(0.2),
        duplicate_rate: None,
        seed: 11,
        labelled: false,
    })
}

/// The scenario shrunk to its first `BASE_ROWS` master rows, plus the rows
/// that were cut off (the "appended later" delta, in master schema order).
fn base_and_delta() -> (Scenario, Vec<Vec<Value>>) {
    let full = scenario();
    let base = full.with_master_prefix(BASE_ROWS);
    let master = full.task.master();
    let delta: Vec<Vec<Value>> = (BASE_ROWS..master.num_rows())
        .map(|r| master.row_values(r))
        .collect();
    (base, delta)
}

fn rules_for(s: &Scenario) -> Vec<EditingRule> {
    let target = s.task.target();
    let pairs = s.task.candidate_lhs_pairs();
    let mut rules: Vec<EditingRule> = pairs
        .iter()
        .map(|&p| EditingRule::new(vec![p], target, vec![]))
        .collect();
    for window in pairs.windows(2) {
        rules.push(EditingRule::new(window.to_vec(), target, vec![]));
    }
    rules.truncate(8);
    rules
}

fn grown_master(base: &Scenario, delta: &[Vec<Value>]) -> Relation {
    let mut grown = base.task.master().clone();
    grown.push_rows(delta).unwrap();
    grown
}

fn assert_reports_equal(a: &RepairReport, b: &RepairReport, context: &str) {
    assert_eq!(a.predictions, b.predictions, "{context}: predictions");
    assert_eq!(a.scores, b.scores, "{context}: scores");
    assert_eq!(a.candidates, b.candidates, "{context}: candidates");
    assert_eq!(a.rules_applied, b.rules_applied, "{context}: rules applied");
}

#[test]
fn indexes_after_append_equal_fresh_builds() {
    let (base, delta) = base_and_delta();
    let rel = base.task.master().clone();
    let grown = grown_master(&base, &delta);
    let target_m = base.task.target().1;

    for attrs in [vec![0usize], vec![1], vec![0, 1], vec![1, 2]] {
        let mut key = KeyIndex::build(&rel, &attrs);
        let mut group = GroupIndex::build(&rel, &attrs, target_m);
        key.apply_append(&grown, BASE_ROWS).unwrap();
        group.apply_append(&grown, BASE_ROWS).unwrap();
        assert_eq!(key, KeyIndex::build(&grown, &attrs), "KeyIndex {attrs:?}");
        assert_eq!(
            group,
            GroupIndex::build(&grown, &attrs, target_m),
            "GroupIndex {attrs:?}"
        );
    }
    for attr in 0..rel.num_attrs() {
        let mut pli = Pli::build(&rel, attr);
        pli.apply_append(&grown, BASE_ROWS).unwrap();
        assert_eq!(pli, Pli::build(&grown, attr), "Pli attr {attr}");
    }
}

#[test]
fn engine_after_append_equals_rebuilt_engine_at_1_2_8_threads() {
    let (base, delta) = base_and_delta();
    let rules = rules_for(&base);
    let target = base.task.target();
    let input = base.task.input();
    let grown = grown_master(&base, &delta);
    // Split the delta so the engine absorbs several successive appends, not
    // one lucky batch.
    let (first, second) = delta.split_at(delta.len() / 2);

    let mut reports: Vec<RepairReport> = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut incremental =
            IncrEngine::new(base.task.master().clone(), target, rules.clone(), threads).unwrap();
        incremental.append_rows(first).unwrap();
        incremental.append_rows(second).unwrap();
        assert_eq!(incremental.master().num_rows(), grown.num_rows());
        assert_eq!(incremental.counters().incremental_updates, 2);

        let rebuilt = BatchRepairer::new(grown.clone(), target, rules.clone(), threads).unwrap();
        let a = incremental.repair_batch(input).unwrap();
        let b = rebuilt.repair_batch(input).unwrap();
        assert_reports_equal(&a, &b, &format!("threads={threads}"));
        reports.push(a);
    }
    // And thread count itself must not change the answer.
    for r in &reports[1..] {
        assert_reports_equal(r, &reports[0], "across thread counts");
    }
}

#[test]
fn appends_genuinely_change_the_vote() {
    // Guard against a vacuous suite: the grown master must alter at least
    // one prediction, otherwise the equivalence above proves nothing.
    let (base, delta) = base_and_delta();
    let rules = rules_for(&base);
    let target = base.task.target();
    let input = base.task.input();

    let before = BatchRepairer::new(base.task.master().clone(), target, rules.clone(), 1)
        .unwrap()
        .repair_batch(input)
        .unwrap();
    let mut engine = IncrEngine::new(base.task.master().clone(), target, rules, 1).unwrap();
    engine.append_rows(&delta).unwrap();
    let after = engine.repair_batch(input).unwrap();
    assert_ne!(
        (&before.predictions, &before.scores),
        (&after.predictions, &after.scores),
        "the delta should shift at least one prediction or score"
    );
}
