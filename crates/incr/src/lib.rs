#![forbid(unsafe_code)]
//! Delta maintenance for growing master data.
//!
//! The paper's RLMiner-ft (§V-D3) exists because master relations grow
//! after deployment; this crate supplies the substrate that makes those
//! appends first-class instead of rebuild-the-world events. It builds on
//! two lower layers:
//!
//! * [`er_table::Relation::generation`] — a monotonic counter bumped once
//!   per appended row, stamped into every index at build time;
//! * `apply_append(rel, from_row)` on [`er_table::KeyIndex`],
//!   [`er_table::GroupIndex`] and [`er_table::Pli`] — in-place delta
//!   updates whose result is identical to a fresh rebuild over the grown
//!   relation (this crate's equivalence suite enforces that at 1/2/8
//!   worker threads).
//!
//! [`IncrEngine`] is the serving-facing piece: it wraps an
//! [`er_rules::BatchRepairer`] and routes master appends through
//! [`er_rules::BatchRepairer::append_master`], so the warmed per-`X_m`
//! group indexes are updated in place rather than rebuilt. It also tracks
//! *rule staleness*: the generation the current rule set was mined or
//! refreshed at, versus the master's current generation — the quantity the
//! ER007 lint reports and the serve `stats` op exposes. When the drift
//! grows large, callers re-mine (e.g. RLMiner-ft fine-tuning over the
//! grown master) and install the result via [`IncrEngine::refresh_rules`].

use er_rules::{BatchError, BatchRepairer, EditingRule, RepairReport, VoteStats};
use er_table::{AttrId, Relation, Value};
use std::time::Instant;

/// What one successful [`IncrEngine::append_rows`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Rows appended to the master.
    pub appended: usize,
    /// Master row count after the append.
    pub master_rows: usize,
    /// Master generation after the append.
    pub generation: u64,
    /// Warmed group indexes that were delta-updated in place.
    pub indexes_updated: usize,
}

/// Lifetime counters of an [`IncrEngine`]: how often the warm state was
/// maintained incrementally versus rebuilt from scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrCounters {
    /// Appends absorbed by in-place index delta updates.
    pub incremental_updates: u64,
    /// Full engine rebuilds ([`IncrEngine::refresh_rules`]).
    pub rebuilds: u64,
}

/// An append-aware repair engine: a warmed [`BatchRepairer`] plus the
/// bookkeeping that keeps it honest as the master grows.
pub struct IncrEngine {
    repairer: BatchRepairer,
    threads: usize,
    /// Master generation the current rule set was installed at.
    rules_generation: u64,
    /// Master generation an er-analyze confluence certificate was issued
    /// at, when the serving layer installed one. The arrival-order vote
    /// fan-out stays licensed only while the master is still at exactly
    /// this generation — appends bump it and the license lapses until the
    /// confluence pass is re-run.
    confluence_generation: Option<u64>,
    counters: IncrCounters,
}

impl std::fmt::Debug for IncrEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrEngine")
            .field("repairer", &self.repairer)
            .field("generation", &self.generation())
            .field("rules_generation", &self.rules_generation)
            .field("counters", &self.counters)
            .finish()
    }
}

impl IncrEngine {
    /// Build an engine over `master` for `rules` targeting the input/master
    /// pair `target`; the warmed indexes are built once here, fanning out
    /// over up to `threads` workers (`0` = auto).
    pub fn new(
        master: Relation,
        target: (AttrId, AttrId),
        rules: Vec<EditingRule>,
        threads: usize,
    ) -> Result<Self, BatchError> {
        let repairer = BatchRepairer::new(master, target, rules, threads)?;
        let rules_generation = repairer.master().generation();
        Ok(IncrEngine {
            repairer,
            threads,
            rules_generation,
            confluence_generation: None,
            counters: IncrCounters::default(),
        })
    }

    /// Install a confluence-certificate stamp issued at master generation
    /// `generation` for the currently loaded rules, selecting the
    /// arrival-order vote fan-out iff the stamp matches the live master.
    /// Returns whether the unordered path is now licensed. The engine does
    /// not re-verify the certificate — callers (er-serve) run the
    /// er-analyze confluence pass and only stamp certified sets.
    pub fn set_confluence_stamp(&mut self, generation: u64) -> bool {
        let live = generation == self.generation();
        self.confluence_generation = live.then_some(generation);
        self.repairer.set_unordered(live);
        live
    }

    /// Drop any certificate stamp and fall back to the ordered fan-out.
    pub fn clear_confluence_stamp(&mut self) {
        self.confluence_generation = None;
        self.repairer.set_unordered(false);
    }

    /// Whether a certificate stamp currently licenses the arrival-order
    /// fan-out (present *and* issued at the live master generation).
    pub fn confluence_certified(&self) -> bool {
        self.confluence_generation == Some(self.generation())
    }

    /// Append rows (master-schema attribute order) to the master and
    /// delta-update every warmed index in place. All-or-nothing: a bad row
    /// rejects the whole batch and leaves the engine untouched.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<AppendOutcome, BatchError> {
        let appended = self.repairer.append_master(rows)?;
        self.counters.incremental_updates += 1;
        // The append moved the generation past the certificate stamp: the
        // unordered license lapses until the confluence pass re-certifies.
        if self
            .confluence_generation
            .is_some_and(|g| g != self.generation())
        {
            self.clear_confluence_stamp();
        }
        Ok(AppendOutcome {
            appended,
            master_rows: self.repairer.master().num_rows(),
            generation: self.generation(),
            indexes_updated: self.repairer.num_indexes(),
        })
    }

    /// Install a new rule set (e.g. freshly fine-tuned over the grown
    /// master) and rebuild the warm state for it. Resets rule staleness to
    /// zero and counts as one rebuild.
    pub fn refresh_rules(&mut self, rules: Vec<EditingRule>) -> Result<(), BatchError> {
        let master = self.repairer.master().clone();
        let target = self.repairer.target();
        self.repairer = BatchRepairer::new(master, target, rules, self.threads)?;
        self.rules_generation = self.repairer.master().generation();
        // A new rule set needs a fresh confluence verdict; the replacement
        // repairer already starts on the ordered path.
        self.confluence_generation = None;
        self.counters.rebuilds += 1;
        Ok(())
    }

    /// Repair one batch against the current warm state (see
    /// [`BatchRepairer::repair_batch`]).
    pub fn repair_batch(&self, batch: &Relation) -> Result<RepairReport, BatchError> {
        self.repairer.repair_batch(batch)
    }

    /// Deadline-bounded repair (see [`BatchRepairer::repair_batch_deadline`]).
    pub fn repair_batch_deadline(
        &self,
        batch: &Relation,
        deadline: Instant,
    ) -> Result<RepairReport, BatchError> {
        self.repairer.repair_batch_deadline(batch, deadline)
    }

    /// The master relation the engine serves from.
    pub fn master(&self) -> &Relation {
        self.repairer.master()
    }

    /// Current master generation.
    pub fn generation(&self) -> u64 {
        self.repairer.master().generation()
    }

    /// Master generation the current rule set was installed at.
    pub fn rules_generation(&self) -> u64 {
        self.rules_generation
    }

    /// How many rows the master has grown since the rule set was installed —
    /// the drift ER007 reports.
    pub fn staleness(&self) -> u64 {
        self.generation().saturating_sub(self.rules_generation)
    }

    /// Lifetime incremental-vs-rebuild counters.
    pub fn counters(&self) -> IncrCounters {
        self.counters
    }

    /// Lifetime vote-batching counters of the underlying repairer (rows
    /// grouped vs. distinct signature probes). Reset by
    /// [`IncrEngine::refresh_rules`], which replaces the repairer.
    pub fn vote_stats(&self) -> VoteStats {
        self.repairer.vote_stats()
    }

    /// The loaded rules.
    pub fn rules(&self) -> &[EditingRule] {
        self.repairer.rules()
    }

    /// Number of loaded rules.
    pub fn num_rules(&self) -> usize {
        self.repairer.rules().len()
    }

    /// Number of warmed per-`X_m` group indexes.
    pub fn num_indexes(&self) -> usize {
        self.repairer.num_indexes()
    }

    /// The `(Y, Y_m)` target pair.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.repairer.target()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::{Attribute, Pool, RelationBuilder, Schema};
    use std::sync::Arc;

    fn master() -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(schema, pool);
        for (city, inf) in [("HZ", "patient"), ("BJ", "imports"), ("BJ", "imports")] {
            b.push_row(vec![s(city), s(inf)]).unwrap();
        }
        b.finish()
    }

    fn engine() -> IncrEngine {
        let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        IncrEngine::new(master(), (1, 1), rules, 0).unwrap()
    }

    fn input_batch(e: &IncrEngine, cities: &[&str]) -> Relation {
        let schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, Arc::clone(e.master().pool()));
        for c in cities {
            b.push_row(vec![Value::str(*c), Value::Null]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn appends_update_generation_and_counters() {
        let mut e = engine();
        let g0 = e.generation();
        assert_eq!(e.staleness(), 0);
        let s = Value::str;
        let out = e
            .append_rows(&[
                vec![s("SZ"), s("no symptoms")],
                vec![s("SZ"), s("no symptoms")],
            ])
            .unwrap();
        assert_eq!(out.appended, 2);
        assert_eq!(out.master_rows, 5);
        assert_eq!(out.generation, g0 + 2);
        assert_eq!(e.staleness(), 2);
        assert_eq!(e.counters().incremental_updates, 1);
        assert_eq!(e.counters().rebuilds, 0);
    }

    #[test]
    fn appended_rows_are_immediately_served() {
        let mut e = engine();
        let batch = input_batch(&e, &["SZ"]);
        let before = e.repair_batch(&batch).unwrap();
        assert!(before.predictions[0].is_none());
        let s = Value::str;
        e.append_rows(&[vec![s("SZ"), s("no symptoms")]]).unwrap();
        let after = e.repair_batch(&batch).unwrap();
        let code = after.predictions[0].unwrap();
        assert_eq!(e.master().pool().value(code), Value::str("no symptoms"));
    }

    #[test]
    fn refresh_rules_resets_staleness() {
        let mut e = engine();
        let s = Value::str;
        e.append_rows(&[vec![s("SZ"), s("no symptoms")]]).unwrap();
        assert_eq!(e.staleness(), 1);
        let rules = e.rules().to_vec();
        e.refresh_rules(rules).unwrap();
        assert_eq!(e.staleness(), 0);
        assert_eq!(e.counters().rebuilds, 1);
    }

    #[test]
    fn confluence_stamp_licenses_and_lapses() {
        let mut e = engine();
        assert!(!e.confluence_certified());
        // A stale stamp (wrong generation) is refused outright.
        assert!(!e.set_confluence_stamp(e.generation() + 1));
        assert!(!e.confluence_certified());
        // A live stamp licenses the unordered path...
        assert!(e.set_confluence_stamp(e.generation()));
        assert!(e.confluence_certified());
        // ...an append bumps the generation and the license lapses...
        let s = Value::str;
        e.append_rows(&[vec![s("SZ"), s("no symptoms")]]).unwrap();
        assert!(!e.confluence_certified());
        // ...re-stamping at the new generation restores it...
        assert!(e.set_confluence_stamp(e.generation()));
        assert!(e.confluence_certified());
        // ...and a rule refresh clears it again.
        let rules = e.rules().to_vec();
        e.refresh_rules(rules).unwrap();
        assert!(!e.confluence_certified());
    }

    #[test]
    fn stamped_engine_repairs_bitwise_like_unstamped() {
        let m = master();
        let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        let e = IncrEngine::new(m.clone(), (1, 1), rules.clone(), 0).unwrap();
        let mut stamped = IncrEngine::new(m, (1, 1), rules, 0).unwrap();
        assert!(stamped.set_confluence_stamp(stamped.generation()));
        let batch = input_batch(&e, &["HZ", "BJ", "SZ"]);
        let a = e.repair_batch(&batch).unwrap();
        let b = stamped.repair_batch(&batch).unwrap();
        assert_eq!(a.predictions, b.predictions);
        let bits = |r: &RepairReport| r.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn failed_append_leaves_the_engine_untouched() {
        let mut e = engine();
        let rows = e.master().num_rows();
        let g = e.generation();
        let err = e
            .append_rows(&[vec![Value::str("SZ")]]) // wrong arity
            .unwrap_err();
        assert!(matches!(err, BatchError::AppendRow { row: 0, .. }));
        assert_eq!(e.master().num_rows(), rows);
        assert_eq!(e.generation(), g);
        assert_eq!(e.counters().incremental_updates, 0);
    }
}
