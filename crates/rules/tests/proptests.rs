//! Property-based tests for the rule domain model, run against randomly
//! structured tasks (not just the fixed fixtures of the unit tests).

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_rules::{
    dominates, evaluate_repairs, pattern_dominates, Condition, EditingRule, SchemaMatch, Task,
};
use er_table::{Attribute, Code, Pool, RelationBuilder, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn build_task(input_rows: &[(u8, u8, u8)], master_rows: &[(u8, u8, u8)]) -> Task {
    let pool = Arc::new(Pool::new());
    let schema = |name: &str| {
        Arc::new(Schema::new(
            name,
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("Y"),
            ],
        ))
    };
    let mut bi = RelationBuilder::new(schema("in"), Arc::clone(&pool));
    for &(a, b, y) in input_rows {
        bi.push_row(vec![
            Value::str(format!("a{a}")),
            Value::str(format!("b{b}")),
            Value::str(format!("y{y}")),
        ])
        .unwrap();
    }
    let mut bm = RelationBuilder::new(schema("m"), pool);
    for &(a, b, y) in master_rows {
        bm.push_row(vec![
            Value::str(format!("a{a}")),
            Value::str(format!("b{b}")),
            Value::str(format!("y{y}")),
        ])
        .unwrap();
    }
    Task::new(
        bi.finish(),
        bm.finish(),
        SchemaMatch::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]),
        (2, 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pattern domination is reflexive-free on distinct patterns, transitive
    /// over nested prefixes, and monotone under extension.
    #[test]
    fn pattern_domination_laws(codes in prop::collection::vec(0u32..6, 1..4)) {
        let base: Vec<Condition> =
            codes.iter().enumerate().map(|(i, &c)| Condition::eq(i, c)).collect();
        for cut in 0..base.len() {
            let small = &base[..cut];
            prop_assert!(pattern_dominates(small, &base));
            if cut < base.len() {
                // Strictly smaller never dominated by bigger.
                prop_assert!(cut == base.len() || !pattern_dominates(&base, small) || small.len() == base.len());
            }
        }
    }

    /// Repair evaluation counts are internally consistent for arbitrary
    /// prediction patterns.
    #[test]
    fn metric_counts_consistent(
        truth in prop::collection::vec(0u32..4, 1..50),
        flips in prop::collection::vec(any::<bool>(), 1..50),
    ) {
        let n = truth.len().min(flips.len());
        let truth: Vec<Code> = truth[..n].to_vec();
        let dirty: Vec<bool> = flips[..n].to_vec();
        let preds: Vec<Option<Code>> = truth
            .iter()
            .zip(&dirty)
            .map(|(&t, &d)| if d { Some(t) } else { None })
            .collect();
        let m = evaluate_repairs(&truth, &dirty, &preds);
        prop_assert!(m.predicted <= m.evaluated);
        prop_assert!(m.correct <= m.predicted);
        prop_assert!(m.precision >= 0.0 && m.precision <= 1.0);
        prop_assert!(m.recall >= 0.0 && m.recall <= 1.0);
        prop_assert!(m.f1 >= 0.0 && m.f1 <= 1.0);
        // Predicting exactly the truth on every dirty cell is perfect
        // (up to the float error of summing per-class weights).
        if m.evaluated > 0 {
            prop_assert!((m.precision - 1.0).abs() < 1e-9, "precision {}", m.precision);
            prop_assert!((m.recall - 1.0).abs() < 1e-9, "recall {}", m.recall);
        }
    }

    /// select_top_k(·, K) output never grows when K shrinks, and the kept
    /// rules of the smaller K are a prefix-compatible subset by utility.
    #[test]
    fn top_k_monotone_in_k(
        input in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 5..30),
        master in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 3..15),
    ) {
        let task = build_task(&input, &master);
        let ev = er_rules::Evaluator::new(&task);
        let candidates: Vec<(EditingRule, _)> = [
            EditingRule::new(vec![(0, 0)], (2, 2), vec![]),
            EditingRule::new(vec![(1, 1)], (2, 2), vec![]),
            EditingRule::new(vec![(0, 0), (1, 1)], (2, 2), vec![]),
        ]
        .into_iter()
        .map(|r| { let m = ev.eval(&r, None); (r, m) })
        .collect();
        let k3 = er_rules::select_top_k(candidates.clone(), 3);
        let k1 = er_rules::select_top_k(candidates, 1);
        prop_assert!(k1.len() <= 1);
        prop_assert!(k1.len() <= k3.len());
        if let (Some(a), Some(b)) = (k1.first(), k3.first()) {
            prop_assert_eq!(&a.0, &b.0, "top-1 must agree with top of top-3");
        }
    }

    /// Domination implies the support inequality of Lemma 1 on arbitrary
    /// random tasks (not just the covid fixture).
    #[test]
    fn lemma1_on_random_tasks(
        input in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 5..40),
        master in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 3..20),
        code in 0u8..3,
    ) {
        let task = build_task(&input, &master);
        let ev = er_rules::Evaluator::new(&task);
        let general = EditingRule::new(vec![(0, 0)], (2, 2), vec![]);
        let pool = task.input().pool();
        let Some(v) = pool.code_of(&Value::str(format!("b{code}"))) else { return Ok(()); };
        let specific = general.with_condition(Condition::eq(1, v));
        prop_assert!(dominates(&general, &specific));
        let mg = ev.eval(&general, None);
        let ms = ev.eval(&specific, None);
        prop_assert!(mg.support >= ms.support);
        prop_assert!(mg.cover >= ms.cover);
    }
}
