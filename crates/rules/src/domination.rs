//! Pattern and rule domination (Definitions 2–4) and non-redundant top-K
//! selection (Problem 1).
//!
//! Definition 3 in the paper writes `X_1 ⊂ X_2`; we read the subset relations
//! inclusively and require the two rules to differ, i.e. `φ1 ⋖ φ2` iff
//! `LHS(φ1) ⊆ LHS(φ2)`, `t_p1 ⊆ t_p2`, and `φ1 ≠ φ2`. This matches the
//! paper's redundancy intuition ("the LHS in φ1 is a subset of the LHS in φ2
//! and the pattern in φ1 is also a subset of the pattern in φ2") and keeps
//! Lemma 1 (`φ1 ⋖ φ2 ⇒ S(φ1) ≥ S(φ2)`) valid: every extra LHS pair or
//! pattern condition can only shrink the set of applicable tuples.

use crate::measures::Measures;
use crate::rule::{Condition, EditingRule};

/// Pattern domination (Definition 2): every condition of `p1` appears in
/// `p2` with the same attribute and predicate. Both slices must be in
/// canonical (attribute-sorted) order, which [`EditingRule`] guarantees.
pub fn pattern_dominates(p1: &[Condition], p2: &[Condition]) -> bool {
    subset_sorted(p1, p2, |a, b| a.attr.cmp(&b.attr), |a, b| a == b)
}

/// Rule domination `φ1 ⋖ φ2` (Definition 3, inclusive reading — see module
/// docs). Rules over different targets are never comparable.
pub fn dominates(phi1: &EditingRule, phi2: &EditingRule) -> bool {
    phi1 != phi2
        && phi1.target() == phi2.target()
        && subset_sorted(phi1.lhs(), phi2.lhs(), |a, b| a.cmp(b), |a, b| a == b)
        && pattern_dominates(phi1.pattern(), phi2.pattern())
}

/// Merge-style subset check over two sorted sequences: every element of
/// `small` must occur in `big` (compared by `eq` after aligning by `cmp`).
fn subset_sorted<T>(
    small: &[T],
    big: &[T],
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
    eq: impl Fn(&T, &T) -> bool,
) -> bool {
    let mut j = 0;
    'outer: for item in small {
        while j < big.len() {
            match cmp(item, &big[j]) {
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if eq(item, &big[j]) {
                        j += 1;
                        continue 'outer;
                    }
                    return false;
                }
                std::cmp::Ordering::Less => return false,
            }
        }
        return false;
    }
    true
}

/// Select a non-redundant (Definition 4) set of at most `k` rules maximizing
/// utility: rules are considered in descending utility order (ties broken
/// toward more general rules, then deterministically by structure) and a rule
/// is kept iff it neither dominates nor is dominated by an already-kept rule.
pub fn select_top_k(
    mut scored: Vec<(EditingRule, Measures)>,
    k: usize,
) -> Vec<(EditingRule, Measures)> {
    scored.sort_by(|(ra, ma), (rb, mb)| {
        mb.utility
            .partial_cmp(&ma.utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (ra.lhs_len() + ra.pattern_len()).cmp(&(rb.lhs_len() + rb.pattern_len())))
            .then_with(|| format!("{ra:?}").cmp(&format!("{rb:?}")))
    });
    let mut kept: Vec<(EditingRule, Measures)> = Vec::new();
    for (rule, m) in scored {
        if kept.len() >= k {
            break;
        }
        let redundant = kept
            .iter()
            .any(|(kr, _)| dominates(kr, &rule) || dominates(&rule, kr));
        if !redundant {
            kept.push((rule, m));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Condition;

    fn m(u: f64, s: usize) -> Measures {
        Measures {
            support: s,
            certainty: 1.0,
            quality: 1.0,
            utility: u,
            cover: s,
        }
    }

    #[test]
    fn lhs_subset_dominates() {
        let phi1 = EditingRule::new(vec![(0, 0)], (5, 5), vec![]);
        let phi2 = EditingRule::new(vec![(0, 0), (1, 1)], (5, 5), vec![]);
        assert!(dominates(&phi1, &phi2));
        assert!(!dominates(&phi2, &phi1));
    }

    #[test]
    fn pattern_subset_dominates() {
        let phi1 = EditingRule::new(vec![(0, 0)], (5, 5), vec![Condition::eq(1, 7)]);
        let phi2 = EditingRule::new(
            vec![(0, 0)],
            (5, 5),
            vec![Condition::eq(1, 7), Condition::eq(2, 9)],
        );
        assert!(dominates(&phi1, &phi2));
        assert!(!dominates(&phi2, &phi1));
    }

    #[test]
    fn equal_rules_do_not_dominate() {
        let phi = EditingRule::new(vec![(0, 0)], (5, 5), vec![]);
        assert!(!dominates(&phi, &phi.clone()));
    }

    #[test]
    fn different_pattern_values_incomparable() {
        let phi1 = EditingRule::new(vec![(0, 0)], (5, 5), vec![Condition::eq(1, 7)]);
        let phi2 = EditingRule::new(vec![(0, 0)], (5, 5), vec![Condition::eq(1, 8)]);
        assert!(!dominates(&phi1, &phi2));
        assert!(!dominates(&phi2, &phi1));
    }

    #[test]
    fn different_master_attr_incomparable() {
        let phi1 = EditingRule::new(vec![(0, 0)], (5, 5), vec![]);
        let phi2 = EditingRule::new(vec![(0, 1), (1, 2)], (5, 5), vec![]);
        assert!(!dominates(&phi1, &phi2));
    }

    #[test]
    fn different_target_incomparable() {
        let phi1 = EditingRule::new(vec![(0, 0)], (5, 5), vec![]);
        let phi2 = EditingRule::new(vec![(0, 0), (1, 1)], (6, 6), vec![]);
        assert!(!dominates(&phi1, &phi2));
    }

    #[test]
    fn top_k_removes_redundancy() {
        let general = EditingRule::new(vec![(0, 0)], (5, 5), vec![]);
        let specific = EditingRule::new(vec![(0, 0), (1, 1)], (5, 5), vec![]);
        let other = EditingRule::new(vec![(2, 2)], (5, 5), vec![]);
        let out = select_top_k(
            vec![
                (general.clone(), m(10.0, 100)),
                (specific, m(8.0, 50)),
                (other.clone(), m(6.0, 30)),
            ],
            10,
        );
        let rules: Vec<_> = out.iter().map(|(r, _)| r.clone()).collect();
        assert_eq!(rules, vec![general, other]);
    }

    #[test]
    fn top_k_prefers_higher_utility_among_redundant() {
        let general = EditingRule::new(vec![(0, 0)], (5, 5), vec![]);
        let specific = EditingRule::new(vec![(0, 0), (1, 1)], (5, 5), vec![]);
        // The specific rule has higher utility: it wins, the general one is
        // dropped as redundant with it.
        let out = select_top_k(
            vec![(general, m(5.0, 100)), (specific.clone(), m(9.0, 50))],
            10,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, specific);
    }

    #[test]
    fn top_k_caps_at_k() {
        let rules: Vec<_> = (0..5)
            .map(|i| {
                (
                    EditingRule::new(vec![(i, i)], (9, 9), vec![]),
                    m(i as f64, 10),
                )
            })
            .collect();
        let out = select_top_k(rules, 3);
        assert_eq!(out.len(), 3);
        // Highest utilities kept.
        assert!(out.iter().all(|(_, meas)| meas.utility >= 2.0));
    }

    #[test]
    fn rule_never_dominates_itself() {
        // ⋖ is irreflexive by the φ1 ≠ φ2 clause — even comparing the very
        // same instance, not just an equal clone.
        let phi = EditingRule::new(vec![(0, 0)], (5, 5), vec![Condition::eq(1, 7)]);
        assert!(!dominates(&phi, &phi));
    }

    #[test]
    fn empty_rule_set_selects_nothing() {
        let out = select_top_k(Vec::new(), 10);
        assert!(out.is_empty());
        // k = 0 on a non-empty set is equally valid and selects nothing.
        let one = vec![(EditingRule::new(vec![(0, 0)], (5, 5), vec![]), m(1.0, 10))];
        assert!(select_top_k(one, 0).is_empty());
    }

    #[test]
    fn single_attribute_schema_collapses_to_one_rule() {
        // With a single matchable attribute every candidate shares the one
        // LHS pair, and the only legal refinements are pattern constants on
        // that same attribute (the target attribute may not carry a pattern
        // condition). The bare rule dominates every constant-narrowed
        // variant, the variants are pairwise incomparable, and top-K keeps
        // just the bare rule.
        let bare = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let narrowed_a = EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, 3)]);
        let narrowed_b = EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, 4)]);
        assert!(dominates(&bare, &narrowed_a));
        assert!(dominates(&bare, &narrowed_b));
        assert!(!dominates(&narrowed_a, &narrowed_b));
        assert!(!dominates(&narrowed_b, &narrowed_a));
        let out = select_top_k(
            vec![
                (bare.clone(), m(5.0, 40)),
                (narrowed_a, m(3.0, 20)),
                (narrowed_b, m(1.0, 10)),
            ],
            10,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, bare);
    }

    #[test]
    fn non_redundant_invariant_holds() {
        let rules: Vec<_> = vec![
            (EditingRule::new(vec![(0, 0)], (9, 9), vec![]), m(3.0, 10)),
            (
                EditingRule::new(vec![(0, 0), (1, 1)], (9, 9), vec![]),
                m(2.0, 10),
            ),
            (EditingRule::new(vec![(1, 1)], (9, 9), vec![]), m(1.0, 10)),
            (
                EditingRule::new(vec![(0, 0), (2, 2)], (9, 9), vec![Condition::eq(3, 1)]),
                m(4.0, 10),
            ),
        ];
        let out = select_top_k(rules, 10);
        for (i, (a, _)) in out.iter().enumerate() {
            for (j, (b, _)) in out.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b), "selected set contains domination");
                }
            }
        }
    }
}
