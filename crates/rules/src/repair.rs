//! Applying a set of editing rules to the input relation (§V-B2).
//!
//! Given a rule set `Σ`, each rule contributes a certainty score
//! `σ_{v,φ} = count(v,φ) / Σ_{v'} count(v',φ)` to each candidate fix `v` of
//! each input tuple it covers. The candidate with the maximum *sum* of
//! certainty scores over all applicable rules is taken as the fix:
//! `argmax_v Σ_φ σ_{v,φ}`.

use crate::measures::Evaluator;
use crate::rule::EditingRule;
use crate::task::Task;
use er_table::{Code, Relation, RowId, NULL_CODE};
use std::collections::HashMap;

/// Result of applying a rule set: one optional predicted fix per input row.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Predicted `Y` code per input row (`None` = no rule applied).
    pub predictions: Vec<Option<Code>>,
    /// Accumulated certainty-score mass of the winning candidate per row.
    pub scores: Vec<f64>,
    /// Number of distinct candidate fixes that received votes per row
    /// (1 = uncontested, >1 = the rules disagreed and the vote decided).
    pub candidates: Vec<usize>,
    /// Number of rules that were applicable to at least one tuple.
    pub rules_applied: usize,
}

impl RepairReport {
    /// Number of rows that received a prediction.
    pub fn num_predictions(&self) -> usize {
        self.predictions.iter().filter(|p| p.is_some()).count()
    }

    /// Write the predictions into (a copy of) the input relation's `Y`
    /// column, returning the repaired relation.
    pub fn apply(&self, task: &Task) -> Relation {
        let mut repaired = task.input().clone();
        let (y, _) = task.target();
        for (row, pred) in self.predictions.iter().enumerate() {
            if let Some(code) = pred {
                repaired.set_code(row, y, *code);
            }
        }
        repaired
    }
}

/// Apply `rules` to `task`'s input via certainty-score voting.
pub fn apply_rules(task: &Task, rules: &[EditingRule]) -> RepairReport {
    let ev = Evaluator::new(task);
    apply_rules_with(&ev, rules)
}

/// Like [`apply_rules`] but reusing an existing evaluator's master-side
/// indexes (the miners already built them).
///
/// Vote collection fans out over the evaluator's worker pool — one task per
/// rule, each returning its `(row, candidate, score)` contributions — and
/// the contributions are folded into the vote table sequentially in rule
/// order, so every floating-point sum is accumulated in exactly the order
/// of the sequential loop and the report is identical at any thread count.
pub fn apply_rules_with(ev: &Evaluator<'_>, rules: &[EditingRule]) -> RepairReport {
    let task = ev.task();
    let input = task.input();
    let n = input.num_rows();

    // Per-rule vote contributions, computed in parallel.
    let contributions: Vec<Vec<(RowId, Code, f64)>> = ev.pool().map(rules, |rule| {
        let x = rule.x();
        let xm = rule.xm();
        let group = ev.group_index(&xm);
        let cover = ev.cover(rule, None);
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(x.len());
        'rows: for row in cover {
            key.clear();
            for &a in &x {
                let c = input.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            let dist = group.get(&key);
            let total: u32 = dist
                .iter()
                .filter(|&&(c, _)| c != NULL_CODE)
                .map(|&(_, n)| n)
                .sum();
            if total == 0 {
                continue;
            }
            for &(code, count) in dist {
                if code == NULL_CODE {
                    continue;
                }
                out.push((row, code, count as f64 / total as f64));
            }
        }
        out
    });

    let report = fold_votes(n, contributions);
    #[cfg(feature = "debug-invariants")]
    {
        // Certain-fix audit: every repaired cell copies a value present in
        // the master's Y_m column — the engine transfers master data, it
        // never invents values.
        let (_, ym) = task.target();
        let valid: std::collections::HashSet<Code> = task
            .master()
            .column(ym)
            .iter()
            .copied()
            .filter(|&c| c != NULL_CODE)
            .collect();
        for (row, pred) in report.predictions.iter().enumerate() {
            if let Some(code) = pred {
                assert!(
                    valid.contains(code),
                    "repair: prediction for row {row} is not a master Y_m value"
                );
            }
        }
    }
    report
}

/// Ordered fold of per-rule vote contributions into a [`RepairReport`]:
/// `votes[row]: candidate code → accumulated certainty score`, summed in
/// rule order so floating-point accumulation matches the sequential loop at
/// any thread count. A rule applied iff it contributed. Shared by the
/// one-shot path above and [`crate::BatchRepairer`].
pub(crate) fn fold_votes(n: usize, contributions: Vec<Vec<(RowId, Code, f64)>>) -> RepairReport {
    let mut votes: Vec<HashMap<Code, f64>> = vec![HashMap::new(); n];
    let mut rules_applied = 0usize;
    for contribution in contributions {
        if !contribution.is_empty() {
            rules_applied += 1;
        }
        for (row, code, delta) in contribution {
            *votes[row].entry(code).or_insert(0.0) += delta;
        }
    }

    let mut predictions = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    let mut candidates = Vec::with_capacity(n);
    for vote in votes {
        candidates.push(vote.len());
        // The winner is unique regardless of hash-map iteration order: max
        // by score, ties broken by code.
        let winner = vote.into_iter().max_by(|(ca, sa), (cb, sb)| {
            sa.partial_cmp(sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Deterministic tie-break: the smaller code wins.
                .then_with(|| cb.cmp(ca))
        });
        match winner {
            Some((code, score)) => {
                predictions.push(Some(code));
                scores.push(score);
            }
            None => {
                predictions.push(None);
                scores.push(0.0);
            }
        }
    }
    RepairReport {
        predictions,
        scores,
        candidates,
        rules_applied,
    }
}

/// Rows whose prediction differs from their current `Y` value (cells an
/// application of the report would actually change).
pub fn changed_rows(task: &Task, report: &RepairReport) -> Vec<RowId> {
    let (y, _) = task.target();
    report
        .predictions
        .iter()
        .enumerate()
        .filter_map(|(row, pred)| match pred {
            Some(code) if *code != task.input().code(row, y) => Some(row),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use crate::rule::Condition;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    /// Input: (City, Case); master: (City, Infection). City determines
    /// infection in master except for "BJ" which is split 2:1.
    fn task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![s("HZ"), Value::Null]).unwrap();
        b.push_row(vec![s("BJ"), s("imports")]).unwrap();
        b.push_row(vec![s("SZ"), s("patient")]).unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
        let master = bm.finish();
        Task::new(
            input,
            master,
            SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
            (1, 1),
        )
    }

    fn code(t: &Task, v: &str) -> Code {
        t.input().pool().code_of(&Value::str(v)).unwrap()
    }

    #[test]
    fn single_rule_votes() {
        let t = task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = apply_rules(&t, &[rule]);
        assert_eq!(report.rules_applied, 1);
        assert_eq!(report.predictions[0], Some(code(&t, "patient"))); // HZ certain
        assert_eq!(report.predictions[1], Some(code(&t, "imports"))); // BJ majority
        assert_eq!(report.predictions[2], None); // SZ not in master
        assert_eq!(report.num_predictions(), 2);
        assert!((report.scores[0] - 1.0).abs() < 1e-12);
        assert!((report.scores[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.candidates[0], 1); // HZ: uncontested
        assert_eq!(report.candidates[1], 2); // BJ: imports vs patient
        assert_eq!(report.candidates[2], 0);
    }

    #[test]
    fn votes_accumulate_across_rules() {
        let t = task();
        let base = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        // Same semantics restricted to BJ via a pattern — doubles BJ's votes.
        let bj = EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, code(&t, "BJ"))]);
        let report = apply_rules(&t, &[base, bj]);
        assert!((report.scores[1] - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.predictions[1], Some(code(&t, "imports")));
    }

    #[test]
    fn apply_writes_y_column() {
        let t = task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = apply_rules(&t, &[rule]);
        let repaired = report.apply(&t);
        assert_eq!(repaired.value(0, 1), Value::str("patient"));
        // Unpredicted rows keep their value.
        assert_eq!(repaired.value(2, 1), Value::str("patient"));
    }

    #[test]
    fn changed_rows_only_differing_cells() {
        let t = task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = apply_rules(&t, &[rule]);
        // Row 0: NULL → patient (changed). Row 1: imports → imports (same).
        assert_eq!(changed_rows(&t, &report), vec![0]);
    }

    #[test]
    fn empty_rule_set_predicts_nothing() {
        let t = task();
        let report = apply_rules(&t, &[]);
        assert_eq!(report.num_predictions(), 0);
        assert_eq!(report.rules_applied, 0);
    }
}
