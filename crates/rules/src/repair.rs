//! Applying a set of editing rules to the input relation (§V-B2).
//!
//! Given a rule set `Σ`, each rule contributes a certainty score
//! `σ_{v,φ} = count(v,φ) / Σ_{v'} count(v',φ)` to each candidate fix `v` of
//! each input tuple it covers. The candidate with the maximum *sum* of
//! certainty scores over all applicable rules is taken as the fix:
//! `argmax_v Σ_φ σ_{v,φ}`.

use crate::measures::Evaluator;
use crate::rule::EditingRule;
use crate::task::Task;
use er_table::{Code, Relation, RowId, NULL_CODE};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of applying a rule set: one optional predicted fix per input row.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Predicted `Y` code per input row (`None` = no rule applied).
    pub predictions: Vec<Option<Code>>,
    /// Accumulated certainty-score mass of the winning candidate per row.
    pub scores: Vec<f64>,
    /// Number of distinct candidate fixes that received votes per row
    /// (1 = uncontested, >1 = the rules disagreed and the vote decided).
    pub candidates: Vec<usize>,
    /// Number of rules that were applicable to at least one tuple.
    pub rules_applied: usize,
}

impl RepairReport {
    /// Number of rows that received a prediction.
    pub fn num_predictions(&self) -> usize {
        self.predictions.iter().filter(|p| p.is_some()).count()
    }

    /// Write the predictions into (a copy of) the input relation's `Y`
    /// column, returning the repaired relation.
    pub fn apply(&self, task: &Task) -> Relation {
        let mut repaired = task.input().clone();
        let (y, _) = task.target();
        for (row, pred) in self.predictions.iter().enumerate() {
            if let Some(code) = pred {
                repaired.set_code(row, y, *code);
            }
        }
        repaired
    }
}

/// Apply `rules` to `task`'s input via certainty-score voting.
pub fn apply_rules(task: &Task, rules: &[EditingRule]) -> RepairReport {
    let ev = Evaluator::new(task);
    apply_rules_with(&ev, rules)
}

/// Like [`apply_rules`] but reusing an existing evaluator's master-side
/// indexes (the miners already built them).
///
/// Vote collection fans out over the evaluator's worker pool — one task per
/// rule, each returning its `(row, candidate, score)` contributions — and
/// the contributions are folded into the vote table sequentially in rule
/// order, so every floating-point sum is accumulated in exactly the order
/// of the sequential loop and the report is identical at any thread count.
pub fn apply_rules_with(ev: &Evaluator<'_>, rules: &[EditingRule]) -> RepairReport {
    let task = ev.task();
    let input = task.input();
    let n = input.num_rows();

    // Per-rule vote contributions, computed in parallel.
    let contributions: Vec<Vec<(RowId, Code, f64)>> = ev.pool().map(rules, |rule| {
        let x = rule.x();
        let xm = rule.xm();
        let group = ev.group_index(&xm);
        let cover = ev.cover(rule, None);
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(x.len());
        'rows: for row in cover {
            key.clear();
            for &a in &x {
                let c = input.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            let dist = group.get(&key);
            let total: u32 = dist
                .iter()
                .filter(|&&(c, _)| c != NULL_CODE)
                .map(|&(_, n)| n)
                .sum();
            if total == 0 {
                continue;
            }
            // The same `count * (1/total)` shape as the signature-batched
            // path in `BatchRepairer`, so the two produce bitwise-identical
            // scores (multiplying by a precomputed reciprocal rounds
            // differently than a fresh division would).
            let recip = 1.0 / total as f64;
            for &(code, count) in dist {
                if code == NULL_CODE {
                    continue;
                }
                out.push((row, code, count as f64 * recip));
            }
        }
        out
    });

    let contributions = contributions.into_iter().map(Contribution::Flat).collect();
    let report = fold_votes(n, contributions);
    #[cfg(feature = "debug-invariants")]
    {
        // Certain-fix audit: every repaired cell copies a value present in
        // the master's Y_m column — the engine transfers master data, it
        // never invents values.
        let (_, ym) = task.target();
        let valid: std::collections::HashSet<Code> = task
            .master()
            .column(ym)
            .iter()
            .copied()
            .filter(|&c| c != NULL_CODE)
            .collect();
        for (row, pred) in report.predictions.iter().enumerate() {
            if let Some(code) = pred {
                assert!(
                    valid.contains(code),
                    "repair: prediction for row {row} is not a master Y_m value"
                );
            }
        }
    }
    report
}

/// Sentinel signature id: this row gets no vote from the rule (NULL key or
/// failed pattern).
pub(crate) const NO_SIG: u32 = u32::MAX;

/// One rule's votes in signature-grouped, row-major form, as emitted by the
/// batched repair path: every row of a signature receives the same
/// candidate scores, so instead of materializing one `(row, code, score)`
/// tuple per vote the rule carries a row-major signature-id vector plus a
/// candidate arena indexed per signature. The arenas are `Arc`-shared
/// across the rules of one LHS group (the probe-dedup satellite of the
/// signature-batched pipeline), and the row-major shape lets the fold walk
/// every rule in one streaming pass per row.
#[derive(Debug, Clone)]
pub(crate) struct RuleVotes {
    /// Signature id of each batch row, `NO_SIG` where the rule is silent.
    pub(crate) sigs: Arc<Vec<u32>>,
    /// Flat `(candidate code, certainty score)` arena, one run per probed
    /// signature, in master-distribution order.
    pub(crate) cands: Arc<Vec<(Code, f64)>>,
    /// `(cand_start, cand_end)` into `cands` per signature id.
    pub(crate) ranges: Arc<Vec<(u32, u32)>>,
    /// Whether the rule emitted at least one vote (some row carries a
    /// signature with a non-empty candidate run). Tracked at emission so
    /// `rules_applied` needs no O(rows) rescan.
    pub(crate) live: bool,
}

impl RuleVotes {
    /// The candidate run of signature `s`.
    #[inline]
    fn run(&self, s: u32) -> &[(Code, f64)] {
        let (cs, ce) = self.ranges[s as usize];
        &self.cands[cs as usize..ce as usize]
    }
}

/// One rule's vote contribution, in either of the two shapes the engine
/// produces. Both fold to bitwise-identical reports: each row gets at most
/// one `(code, delta)` add per rule, so the per-slot sums accumulate in
/// rule order regardless of the shape or the order within a rule.
pub(crate) enum Contribution {
    /// Row-at-a-time tuples (the one-shot path and the reference path).
    Flat(Vec<(RowId, Code, f64)>),
    /// Row-major signature vector + shared candidate arena (batched path).
    Grouped(RuleVotes),
}

impl Contribution {
    fn is_empty(&self) -> bool {
        match self {
            Contribution::Flat(votes) => votes.is_empty(),
            Contribution::Grouped(g) => !g.live,
        }
    }
}

/// Dense-fold budget: the dense accumulator is used only when the candidate
/// universe is at most this many distinct codes...
const DENSE_MAX_CANDIDATES: usize = 64;
/// ...and the `rows × candidates` slot matrix stays below this size
/// (2^22 slots ≈ 32 MiB of `f64` plus the touched bitmap).
const DENSE_MAX_SLOTS: usize = 1 << 22;

/// Ordered fold of per-rule vote contributions into a [`RepairReport`]:
/// `votes[row]: candidate code → accumulated certainty score`, summed in
/// rule order so floating-point accumulation matches the sequential loop at
/// any thread count. A rule applied iff it contributed. Shared by the
/// one-shot path above and [`crate::BatchRepairer`].
///
/// When the candidate universe is small (the common case: candidates are
/// master `Y_m` values reachable from the batch's signatures) the votes
/// accumulate into a dense `rows × candidates` array instead of one
/// `HashMap` per row; both folds produce bitwise-identical reports (each
/// `(row, code)` slot receives exactly one add per rule, in rule order, and
/// the winner scan visits candidates in ascending code order so the
/// smaller-code tie-break is preserved).
pub(crate) fn fold_votes(n: usize, contributions: Vec<Contribution>) -> RepairReport {
    let rules_applied = contributions.iter().filter(|c| !c.is_empty()).count();
    // Collect the candidate universe, giving up on the dense fold as soon
    // as it outgrows the budget (the `contains` scan stays cheap because
    // the vector is capped at DENSE_MAX_CANDIDATES + 1 entries).
    let mut universe: Vec<Code> = Vec::new();
    let mut dense_ok = true;
    'scan: for contribution in &contributions {
        match contribution {
            Contribution::Flat(votes) => {
                for &(_, code, _) in votes {
                    if !universe.contains(&code) {
                        universe.push(code);
                        if universe.len() > DENSE_MAX_CANDIDATES {
                            dense_ok = false;
                            break 'scan;
                        }
                    }
                }
            }
            Contribution::Grouped(g) => {
                // The whole arena, not just voted runs: a signature whose
                // rows were all pattern-filtered contributes codes that
                // never receive a vote, which only widens the universe —
                // their slots stay at 0.0 and are skipped by every fold.
                for &(code, _) in g.cands.iter() {
                    if !universe.contains(&code) {
                        universe.push(code);
                        if universe.len() > DENSE_MAX_CANDIDATES {
                            dense_ok = false;
                            break 'scan;
                        }
                    }
                }
            }
        }
    }
    let all_grouped = contributions
        .iter()
        .all(|c| matches!(c, Contribution::Grouped(_)));
    if dense_ok && !universe.is_empty() && all_grouped {
        universe.sort_unstable();
        fold_grouped(n, &universe, &contributions, rules_applied)
    } else if dense_ok
        && !universe.is_empty()
        && n.saturating_mul(universe.len()) <= DENSE_MAX_SLOTS
    {
        universe.sort_unstable();
        fold_dense(n, &universe, &contributions, rules_applied)
    } else {
        fold_sparse(n, &contributions, rules_applied)
    }
}

/// Per-rule delta matrix budget for the padded fold: `(sigs + 1) × K`
/// `f64`s must stay cache-resident for the branchless row loop to pay off.
const DENSE_DELTA_SLOTS: usize = 1 << 16;

/// Fused fold for the batched path (every contribution signature-grouped,
/// small universe): one streaming pass over the rows with a small local
/// accumulator that lives in registers — no `rows × candidates` matrix, no
/// second winner-scan pass. For each row the rules are visited in rule
/// order, so every `(row, code)` slot accumulates in exactly the order the
/// other folds use — the reports are bitwise identical.
///
/// The accumulator width is monomorphized (4/8/16 lanes) so the per-rule
/// add compiles to fixed-width vector code; wider universes or oversized
/// delta matrices fall back to the per-run walk.
fn fold_grouped(
    n: usize,
    universe: &[Code],
    contributions: &[Contribution],
    rules_applied: usize,
) -> RepairReport {
    let k = universe.len();
    let max_sigs = contributions
        .iter()
        .filter_map(|c| match c {
            Contribution::Grouped(g) => Some(g.ranges.len()),
            Contribution::Flat(_) => None,
        })
        .max()
        .unwrap_or(0);
    if (max_sigs + 1) * 16 <= DENSE_DELTA_SLOTS {
        if k <= 4 {
            return fold_grouped_padded::<4>(n, universe, contributions, rules_applied);
        }
        if k <= 8 {
            return fold_grouped_padded::<8>(n, universe, contributions, rules_applied);
        }
        if k <= 16 {
            return fold_grouped_padded::<16>(n, universe, contributions, rules_applied);
        }
    }
    fold_grouped_runs(n, universe, contributions, rules_applied)
}

/// The padded fast path: per rule, the candidate runs expand into a dense
/// `(sigs + 1) × K` delta matrix — row `s` holds signature `s`'s per-rank
/// deltas (0.0 for ranks the signature does not vote), and the extra
/// all-zero row is the landing pad for `NO_SIG`. The per-row work is then a
/// branchless, fixed-width `acc[0..K] += deltas[s][0..K]` per rule.
///
/// Adding 0.0 for the silent ranks is a *bitwise* no-op: every accumulator
/// state is +0.0 or a positive finite sum (all vote deltas are strictly
/// positive), and `x + 0.0` reproduces such an `x` exactly. So each slot's
/// effective add sequence is still exactly one add per voting rule, in rule
/// order — identical bits to the other folds. Padding ranks `k..K` never
/// receive a non-zero delta and are never scanned.
fn fold_grouped_padded<const K: usize>(
    n: usize,
    universe: &[Code],
    contributions: &[Contribution],
    rules_applied: usize,
) -> RepairReport {
    let k = universe.len();
    let grouped: Vec<&RuleVotes> = contributions
        .iter()
        .filter_map(|c| match c {
            Contribution::Grouped(g) => Some(g),
            Contribution::Flat(_) => None,
        })
        .collect();
    // The rules of one LHS group share their candidate arena (`Arc`), so
    // their delta matrices are identical — build each distinct arena's
    // matrix once and let the lanes reference it.
    let mut arena_keys: Vec<*const Vec<(Code, f64)>> = Vec::new();
    let mut matrices: Vec<Vec<f64>> = Vec::new();
    let mut matrix_of: Vec<usize> = Vec::with_capacity(grouped.len());
    for g in &grouped {
        let key = Arc::as_ptr(&g.cands);
        let idx = arena_keys
            .iter()
            .position(|&p| p == key)
            .unwrap_or_else(|| {
                let num_sigs = g.ranges.len();
                let mut deltas = vec![0.0f64; (num_sigs + 1) * K];
                for (s, &(cs, ce)) in g.ranges.iter().enumerate() {
                    for &(code, delta) in &g.cands[cs as usize..ce as usize] {
                        // Invariant: the universe scan saw every code.
                        #[allow(clippy::unwrap_used)]
                        let id = universe.binary_search(&code).unwrap();
                        deltas[s * K + id] = delta;
                    }
                }
                arena_keys.push(key);
                matrices.push(deltas);
                arena_keys.len() - 1
            });
        matrix_of.push(idx);
    }
    let lanes: Vec<(&[u32], u32, &[f64])> = grouped
        .iter()
        .zip(&matrix_of)
        .map(|(g, &mi)| {
            // Invariant: `num_sigs ≤ rows < u32::MAX`, so `NO_SIG.min`
            // lands exactly on the all-zero row.
            (
                g.sigs.as_slice(),
                g.ranges.len() as u32,
                matrices[mi].as_slice(),
            )
        })
        .collect();

    let mut predictions = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    let mut candidates = Vec::with_capacity(n);
    for row in 0..n {
        let mut acc = [0.0f64; K];
        for &(sigs, silent, deltas) in &lanes {
            let s = sigs[row].min(silent) as usize;
            let run = &deltas[s * K..s * K + K];
            for i in 0..K {
                acc[i] += run[i];
            }
        }
        finish_row(
            universe,
            &acc[..k],
            &mut predictions,
            &mut scores,
            &mut candidates,
        );
    }
    RepairReport {
        predictions,
        scores,
        candidates,
        rules_applied,
    }
}

/// The general fused fold: per rule, walk the row-major signature vector
/// and add the signature's `(rank, delta)` run into a k-wide accumulator.
fn fold_grouped_runs(
    n: usize,
    universe: &[Code],
    contributions: &[Contribution],
    rules_applied: usize,
) -> RepairReport {
    let k = universe.len();
    // Candidate ranks resolved once per rule; `ranked[cs..ce]` mirrors the
    // rule's `cands[cs..ce]` run. Slices are hoisted out of the row loop so
    // the inner pass does plain indexed loads, not `Arc` chains.
    let ranked_arenas: Vec<Vec<(u32, f64)>> = contributions
        .iter()
        .filter_map(|c| match c {
            Contribution::Grouped(g) => Some(g),
            Contribution::Flat(_) => None,
        })
        .map(|g| {
            g.cands
                .iter()
                .map(|&(code, delta)| {
                    // Invariant: the universe scan saw every code.
                    #[allow(clippy::unwrap_used)]
                    let id = universe.binary_search(&code).unwrap() as u32;
                    (id, delta)
                })
                .collect()
        })
        .collect();
    // One lane per rule: (row-major signature vector, per-signature
    // candidate ranges, rank-resolved candidate arena).
    type RunLane<'a> = (&'a [u32], &'a [(u32, u32)], &'a [(u32, f64)]);
    let rules: Vec<RunLane> = contributions
        .iter()
        .filter_map(|c| match c {
            Contribution::Grouped(g) => Some(g),
            Contribution::Flat(_) => None,
        })
        .zip(&ranked_arenas)
        .map(|(g, ranked)| (g.sigs.as_slice(), g.ranges.as_slice(), ranked.as_slice()))
        .collect();

    let mut predictions = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    let mut candidates = Vec::with_capacity(n);
    let mut acc = vec![0.0f64; k];
    for row in 0..n {
        acc.fill(0.0);
        for &(sigs, ranges, ranked) in &rules {
            let s = sigs[row];
            if s == NO_SIG {
                continue;
            }
            let (cs, ce) = ranges[s as usize];
            for &(id, delta) in &ranked[cs as usize..ce as usize] {
                acc[id as usize] += delta;
            }
        }
        finish_row(
            universe,
            &acc,
            &mut predictions,
            &mut scores,
            &mut candidates,
        );
    }
    RepairReport {
        predictions,
        scores,
        candidates,
        rules_applied,
    }
}

/// Winner scan of one row's accumulator: every vote carries strictly
/// positive mass, so a slot was voted on iff it is > 0.0; ascending rank +
/// strict `>` keeps the smaller-code tie-break of the sparse fold.
#[inline]
fn finish_row(
    universe: &[Code],
    acc: &[f64],
    predictions: &mut Vec<Option<Code>>,
    scores: &mut Vec<f64>,
    candidates: &mut Vec<usize>,
) {
    // Branchless: scores are ≥ 0.0, so `score > best` (with `best`
    // starting at 0.0) implies the slot was voted on, and the strict `>`
    // keeps the first (smallest-rank) slot on exact ties.
    let mut count = 0usize;
    let mut best_id = 0usize;
    let mut best = 0.0f64;
    for (id, &score) in acc.iter().enumerate() {
        count += usize::from(score > 0.0);
        if score > best {
            best = score;
            best_id = id;
        }
    }
    candidates.push(count);
    if best > 0.0 {
        predictions.push(Some(universe[best_id]));
        scores.push(best);
    } else {
        predictions.push(None);
        scores.push(0.0);
    }
}

/// Dense fold: scores land in a `rows × candidates` array indexed by the
/// candidate's rank in the (ascending-sorted) universe. The winner scan
/// walks candidates in ascending code order with a strict `>`, so on exact
/// score ties the smaller code wins — the same total order as the sparse
/// fold's comparator.
fn fold_dense(
    n: usize,
    universe: &[Code],
    contributions: &[Contribution],
    rules_applied: usize,
) -> RepairReport {
    let k = universe.len();
    // No separate hit mask: every vote carries strictly positive mass
    // (count ≥ 1 times a positive reciprocal), so a slot was voted on
    // iff its accumulated score is > 0.0.
    let mut acc = vec![0.0f64; n * k];
    for contribution in contributions {
        match contribution {
            Contribution::Flat(votes) => {
                for &(row, code, delta) in votes {
                    // Invariant: the universe scan above saw every vote.
                    #[allow(clippy::unwrap_used)]
                    let id = universe.binary_search(&code).unwrap();
                    acc[row * k + id] += delta;
                }
            }
            Contribution::Grouped(g) => {
                for (row, &s) in g.sigs.iter().enumerate() {
                    if s == NO_SIG {
                        continue;
                    }
                    let base = row * k;
                    for &(code, delta) in g.run(s) {
                        // Invariant: the universe scan above saw every code.
                        #[allow(clippy::unwrap_used)]
                        let id = universe.binary_search(&code).unwrap();
                        acc[base + id] += delta;
                    }
                }
            }
        }
    }

    let mut predictions = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    let mut candidates = Vec::with_capacity(n);
    for row in 0..n {
        let base = row * k;
        let mut count = 0usize;
        let mut best: Option<(Code, f64)> = None;
        for (id, &code) in universe.iter().enumerate() {
            let score = acc[base + id];
            if score <= 0.0 {
                continue;
            }
            count += 1;
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((code, score));
            }
        }
        candidates.push(count);
        match best {
            Some((code, score)) => {
                predictions.push(Some(code));
                scores.push(score);
            }
            None => {
                predictions.push(None);
                scores.push(0.0);
            }
        }
    }
    RepairReport {
        predictions,
        scores,
        candidates,
        rules_applied,
    }
}

/// Sparse fold (one `HashMap` per row) for large candidate universes.
fn fold_sparse(n: usize, contributions: &[Contribution], rules_applied: usize) -> RepairReport {
    let mut votes: Vec<HashMap<Code, f64>> = vec![HashMap::new(); n];
    for contribution in contributions {
        match contribution {
            Contribution::Flat(flat) => {
                for &(row, code, delta) in flat {
                    *votes[row].entry(code).or_insert(0.0) += delta;
                }
            }
            Contribution::Grouped(g) => {
                for (row, &s) in g.sigs.iter().enumerate() {
                    if s == NO_SIG {
                        continue;
                    }
                    for &(code, delta) in g.run(s) {
                        *votes[row].entry(code).or_insert(0.0) += delta;
                    }
                }
            }
        }
    }

    let mut predictions = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    let mut candidates = Vec::with_capacity(n);
    for vote in votes {
        candidates.push(vote.len());
        // The winner is unique regardless of hash-map iteration order: max
        // by score, ties broken by code.
        let winner = vote.into_iter().max_by(|(ca, sa), (cb, sb)| {
            sa.partial_cmp(sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Deterministic tie-break: the smaller code wins.
                .then_with(|| cb.cmp(ca))
        });
        match winner {
            Some((code, score)) => {
                predictions.push(Some(code));
                scores.push(score);
            }
            None => {
                predictions.push(None);
                scores.push(0.0);
            }
        }
    }
    RepairReport {
        predictions,
        scores,
        candidates,
        rules_applied,
    }
}

/// Rows whose prediction differs from their current `Y` value (cells an
/// application of the report would actually change).
pub fn changed_rows(task: &Task, report: &RepairReport) -> Vec<RowId> {
    let (y, _) = task.target();
    report
        .predictions
        .iter()
        .enumerate()
        .filter_map(|(row, pred)| match pred {
            Some(code) if *code != task.input().code(row, y) => Some(row),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use crate::rule::Condition;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    /// Input: (City, Case); master: (City, Infection). City determines
    /// infection in master except for "BJ" which is split 2:1.
    fn task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![s("HZ"), Value::Null]).unwrap();
        b.push_row(vec![s("BJ"), s("imports")]).unwrap();
        b.push_row(vec![s("SZ"), s("patient")]).unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
        let master = bm.finish();
        Task::new(
            input,
            master,
            SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
            (1, 1),
        )
    }

    fn code(t: &Task, v: &str) -> Code {
        t.input().pool().code_of(&Value::str(v)).unwrap()
    }

    #[test]
    fn single_rule_votes() {
        let t = task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = apply_rules(&t, &[rule]);
        assert_eq!(report.rules_applied, 1);
        assert_eq!(report.predictions[0], Some(code(&t, "patient"))); // HZ certain
        assert_eq!(report.predictions[1], Some(code(&t, "imports"))); // BJ majority
        assert_eq!(report.predictions[2], None); // SZ not in master
        assert_eq!(report.num_predictions(), 2);
        assert!((report.scores[0] - 1.0).abs() < 1e-12);
        assert!((report.scores[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.candidates[0], 1); // HZ: uncontested
        assert_eq!(report.candidates[1], 2); // BJ: imports vs patient
        assert_eq!(report.candidates[2], 0);
    }

    #[test]
    fn votes_accumulate_across_rules() {
        let t = task();
        let base = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        // Same semantics restricted to BJ via a pattern — doubles BJ's votes.
        let bj = EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, code(&t, "BJ"))]);
        let report = apply_rules(&t, &[base, bj]);
        assert!((report.scores[1] - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.predictions[1], Some(code(&t, "imports")));
    }

    #[test]
    fn apply_writes_y_column() {
        let t = task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = apply_rules(&t, &[rule]);
        let repaired = report.apply(&t);
        assert_eq!(repaired.value(0, 1), Value::str("patient"));
        // Unpredicted rows keep their value.
        assert_eq!(repaired.value(2, 1), Value::str("patient"));
    }

    #[test]
    fn changed_rows_only_differing_cells() {
        let t = task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = apply_rules(&t, &[rule]);
        // Row 0: NULL → patient (changed). Row 1: imports → imports (same).
        assert_eq!(changed_rows(&t, &report), vec![0]);
    }

    #[test]
    fn empty_rule_set_predicts_nothing() {
        let t = task();
        let report = apply_rules(&t, &[]);
        assert_eq!(report.num_predictions(), 0);
        assert_eq!(report.rules_applied, 0);
    }
}
