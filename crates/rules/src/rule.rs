//! The editing rule `((X, X_m) → (Y, Y_m), t_p)` (Definition 1).

use er_table::{AttrId, Code, Relation, RowId, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pattern predicate on one input attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pred {
    /// Equality with a constant (dictionary code), `t[A] = a`.
    Eq(Code),
    /// Membership in a half-open numeric range `lo ≤ t[A] < hi`
    /// (`hi = +∞` for the last bucket). Used for continuous attributes,
    /// which the paper splits into `N_split` ranges (§IV-A).
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound (`f64::INFINITY` for the top bucket).
        hi: f64,
    },
    /// Membership in a sorted set of codes. Produced by the common-prefix
    /// domain reduction of §IV-A: when `|dom(A)|` is too large to encode,
    /// values are grouped by shared prefix and one condition covers the
    /// whole group.
    OneOf(std::sync::Arc<Vec<Code>>),
}

impl Pred {
    /// Evaluate the predicate against a cell. `code` is the dictionary code;
    /// `numeric` is the decoded numeric value when the attribute is
    /// continuous (`None` / `NaN` for NULL or non-numeric cells).
    #[inline]
    pub fn matches(&self, code: Code, numeric: Option<f64>) -> bool {
        match self {
            Pred::Eq(c) => code == *c && code != er_table::NULL_CODE,
            Pred::Range { lo, hi } => match numeric {
                Some(v) => v >= *lo && v < *hi && !v.is_nan(),
                None => false,
            },
            Pred::OneOf(codes) => code != er_table::NULL_CODE && codes.binary_search(&code).is_ok(),
        }
    }

    /// Membership predicate over a set of codes (sorted and deduped here).
    pub fn one_of(mut codes: Vec<Code>) -> Self {
        codes.sort_unstable();
        codes.dedup();
        Pred::OneOf(std::sync::Arc::new(codes))
    }
}

// Pred contains f64 range bounds; rules are deduplicated via hash tables, so
// we need Eq/Hash. Bounds come from deterministic bucketing, never from
// arithmetic that could produce NaN, so bit-equality is the right notion.
impl Eq for Pred {}

impl std::hash::Hash for Pred {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Pred::Eq(c) => {
                state.write_u8(0);
                state.write_u32(*c);
            }
            Pred::Range { lo, hi } => {
                state.write_u8(1);
                state.write_u64(lo.to_bits());
                state.write_u64(hi.to_bits());
            }
            Pred::OneOf(codes) => {
                state.write_u8(2);
                for c in codes.iter() {
                    state.write_u32(*c);
                }
            }
        }
    }
}

/// One pattern condition: a predicate bound to an input attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// The input attribute `A ∈ R` the condition constrains.
    pub attr: AttrId,
    /// The predicate on `t[A]`.
    pub pred: Pred,
}

impl Condition {
    /// Equality condition `t_p[attr] = code`.
    pub fn eq(attr: AttrId, code: Code) -> Self {
        Condition {
            attr,
            pred: Pred::Eq(code),
        }
    }

    /// Range condition `lo ≤ t[attr] < hi`.
    pub fn range(attr: AttrId, lo: f64, hi: f64) -> Self {
        Condition {
            attr,
            pred: Pred::Range { lo, hi },
        }
    }
}

/// An editing rule `((X, X_m) → (Y, Y_m), t_p)` (Definition 1).
///
/// * `lhs` — the aligned attribute lists `X ⊂ R`, `X_m ⊂ R_m` as pairs
///   `(A, A_m)`, kept sorted by `(A, A_m)` so structurally equal rules
///   compare and hash equal.
/// * `target` — `(Y, Y_m)` with `Y ∈ R \ X`.
/// * `pattern` — the pattern tuple `t_p` over `X_p ⊂ R \ {Y}`, at most one
///   condition per attribute, kept sorted by attribute.
///
/// Semantics: a master tuple `t_m` can update an input tuple `t` by assigning
/// `t_m[Y_m]` to `t[Y]` iff `t[X_p] ⊨ t_p` and `t[X] = t_m[X_m]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EditingRule {
    lhs: Vec<(AttrId, AttrId)>,
    target: (AttrId, AttrId),
    pattern: Vec<Condition>,
}

impl EditingRule {
    /// The root rule for a target pair: empty LHS, empty pattern.
    pub fn root(target: (AttrId, AttrId)) -> Self {
        EditingRule {
            lhs: Vec::new(),
            target,
            pattern: Vec::new(),
        }
    }

    /// Build a rule, canonicalizing LHS and pattern order.
    ///
    /// # Panics
    /// Panics if `Y` appears in `X` or in the pattern, if an LHS input
    /// attribute repeats, or if a pattern attribute repeats — these violate
    /// Definition 1 and always indicate a bug in the caller.
    pub fn new(
        lhs: Vec<(AttrId, AttrId)>,
        target: (AttrId, AttrId),
        pattern: Vec<Condition>,
    ) -> Self {
        let mut rule = EditingRule {
            lhs,
            target,
            pattern,
        };
        rule.canonicalize();
        rule.validate();
        rule
    }

    fn canonicalize(&mut self) {
        self.lhs.sort_unstable();
        self.pattern.sort_unstable_by_key(|c| c.attr);
    }

    fn validate(&self) {
        let (y, _) = self.target;
        for w in self.lhs.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate LHS input attribute {}", w[0].0);
        }
        for w in self.pattern.windows(2) {
            assert_ne!(
                w[0].attr, w[1].attr,
                "duplicate pattern attribute {}",
                w[0].attr
            );
        }
        assert!(
            self.lhs.iter().all(|&(a, _)| a != y),
            "Y must not appear in X"
        );
        assert!(
            self.pattern.iter().all(|c| c.attr != y),
            "Y must not appear in the pattern"
        );
    }

    /// The LHS attribute pairs `(A, A_m)`, sorted by `(A, A_m)`.
    pub fn lhs(&self) -> &[(AttrId, AttrId)] {
        &self.lhs
    }

    /// Input-side LHS attributes `X`.
    pub fn x(&self) -> Vec<AttrId> {
        self.lhs.iter().map(|&(a, _)| a).collect()
    }

    /// Master-side LHS attributes `X_m`, parallel to [`EditingRule::x`].
    pub fn xm(&self) -> Vec<AttrId> {
        self.lhs.iter().map(|&(_, am)| am).collect()
    }

    /// The target pair `(Y, Y_m)`.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.target
    }

    /// The pattern conditions, sorted by attribute.
    pub fn pattern(&self) -> &[Condition] {
        &self.pattern
    }

    /// Attributes constrained by the pattern (`X_p`).
    pub fn pattern_attrs(&self) -> Vec<AttrId> {
        self.pattern.iter().map(|c| c.attr).collect()
    }

    /// Whether the LHS contains input attribute `a`.
    pub fn lhs_contains_input(&self, a: AttrId) -> bool {
        self.lhs.iter().any(|&(x, _)| x == a)
    }

    /// Whether the pattern constrains attribute `a`.
    pub fn pattern_contains(&self, a: AttrId) -> bool {
        self.pattern.iter().any(|c| c.attr == a)
    }

    /// `|X|` — number of LHS attribute pairs.
    pub fn lhs_len(&self) -> usize {
        self.lhs.len()
    }

    /// `|X_p|` — number of pattern conditions.
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }

    /// A new rule with `(a, a_m)` added to the LHS.
    ///
    /// # Panics
    /// Panics (via [`EditingRule::new`]) if the result violates Definition 1.
    pub fn with_lhs_pair(&self, a: AttrId, a_m: AttrId) -> Self {
        let mut lhs = self.lhs.clone();
        lhs.push((a, a_m));
        EditingRule::new(lhs, self.target, self.pattern.clone())
    }

    /// A new rule with `cond` added to the pattern.
    ///
    /// # Panics
    /// Panics (via [`EditingRule::new`]) if the result violates Definition 1.
    pub fn with_condition(&self, cond: Condition) -> Self {
        let mut pattern = self.pattern.clone();
        pattern.push(cond);
        EditingRule::new(self.lhs.clone(), self.target, pattern)
    }

    /// Whether input tuple `(rel, row)` matches the pattern `t_p`.
    /// `numeric(attr, row)` supplies the decoded numeric value for
    /// continuous attributes (see [`crate::Task::numeric`]).
    pub fn pattern_matches(
        &self,
        rel: &Relation,
        row: RowId,
        numeric: impl Fn(AttrId, RowId) -> Option<f64>,
    ) -> bool {
        self.pattern
            .iter()
            .all(|c| c.pred.matches(rel.code(row, c.attr), numeric(c.attr, row)))
    }

    /// Render the rule in the paper's notation using attribute names from the
    /// two schemas and values from the pool backing `input`.
    pub fn display<'a>(
        &'a self,
        input: &'a Relation,
        master_schema: &'a Schema,
    ) -> RuleDisplay<'a> {
        RuleDisplay {
            rule: self,
            input,
            master_schema,
        }
    }
}

/// Paper-notation pretty printer returned by [`EditingRule::display`].
pub struct RuleDisplay<'a> {
    rule: &'a EditingRule,
    input: &'a Relation,
    master_schema: &'a Schema,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.rule;
        let in_schema = self.input.schema();
        write!(f, "((")?;
        for (i, &(a, am)) in r.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "({}, {})",
                in_schema.attr(a).name,
                self.master_schema.attr(am).name
            )?;
        }
        let (y, ym) = r.target;
        write!(
            f,
            ") -> ({}, {}), t_p(",
            in_schema.attr(y).name,
            self.master_schema.attr(ym).name
        )?;
        for (i, c) in r.pattern.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let name = &in_schema.attr(c.attr).name;
            match &c.pred {
                Pred::Eq(code) => write!(f, "{}={}", name, self.input.pool().value(*code))?,
                Pred::Range { lo, hi } if hi.is_infinite() => write!(f, "{name}∈[{lo},∞)")?,
                Pred::Range { lo, hi } => write!(f, "{name}∈[{lo},{hi})")?,
                Pred::OneOf(codes) => {
                    // Equi-depth groups can hold dozens of values; show a
                    // prefix and the cardinality.
                    write!(f, "{name}∈{{")?;
                    for (j, code) in codes.iter().take(3).enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", self.input.pool().value(*code))?;
                    }
                    if codes.len() > 3 {
                        write!(f, ",… {} values", codes.len())?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        write!(f, "))")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::{Attribute, Pool, RelationBuilder, Value, NULL_CODE};
    use std::sync::Arc;

    #[test]
    fn canonical_order_makes_rules_equal() {
        let r1 = EditingRule::new(vec![(2, 3), (0, 1)], (5, 5), vec![Condition::eq(4, 7)]);
        let r2 = EditingRule::new(vec![(0, 1), (2, 3)], (5, 5), vec![Condition::eq(4, 7)]);
        assert_eq!(r1, r2);
        assert_eq!(r1.x(), vec![0, 2]);
        assert_eq!(r1.xm(), vec![1, 3]);
    }

    #[test]
    fn pattern_sorted_by_attr() {
        let r = EditingRule::new(
            vec![(0, 0)],
            (3, 3),
            vec![Condition::eq(2, 9), Condition::eq(1, 5)],
        );
        assert_eq!(r.pattern_attrs(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "Y must not appear in X")]
    fn y_in_lhs_rejected() {
        EditingRule::new(vec![(3, 0)], (3, 3), vec![]);
    }

    #[test]
    #[should_panic(expected = "Y must not appear in the pattern")]
    fn y_in_pattern_rejected() {
        EditingRule::new(vec![], (3, 3), vec![Condition::eq(3, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate LHS input attribute")]
    fn duplicate_lhs_input_attr_rejected() {
        EditingRule::new(vec![(0, 1), (0, 2)], (3, 3), vec![]);
    }

    #[test]
    fn refinement_builders() {
        let root = EditingRule::root((4, 4));
        let r = root.with_lhs_pair(0, 0).with_condition(Condition::eq(1, 3));
        assert_eq!(r.lhs_len(), 1);
        assert_eq!(r.pattern_len(), 1);
        assert!(r.lhs_contains_input(0));
        assert!(!r.lhs_contains_input(1));
        assert!(r.pattern_contains(1));
    }

    #[test]
    fn pred_eq_matching() {
        let p = Pred::Eq(5);
        assert!(p.matches(5, None));
        assert!(!p.matches(6, None));
        assert!(!Pred::Eq(NULL_CODE).matches(NULL_CODE, None));
    }

    #[test]
    fn pred_range_matching() {
        let p = Pred::Range { lo: 10.0, hi: 20.0 };
        assert!(p.matches(0, Some(10.0)));
        assert!(p.matches(0, Some(19.99)));
        assert!(!p.matches(0, Some(20.0)));
        assert!(!p.matches(0, Some(9.0)));
        assert!(!p.matches(0, None));
        assert!(!p.matches(0, Some(f64::NAN)));
        let top = Pred::Range {
            lo: 20.0,
            hi: f64::INFINITY,
        };
        assert!(top.matches(0, Some(1e12)));
    }

    #[test]
    fn pattern_matching_over_relation() {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(er_table::Schema::new(
            "t",
            vec![
                Attribute::categorical("City"),
                Attribute::continuous("Age"),
                Attribute::categorical("Case"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, Arc::clone(&pool));
        b.push_row(vec![Value::str("HZ"), Value::int(30), Value::str("x")])
            .unwrap();
        b.push_row(vec![Value::str("BJ"), Value::int(50), Value::str("y")])
            .unwrap();
        let rel = b.finish();
        let hz = pool.code_of(&Value::str("HZ")).unwrap();
        let rule = EditingRule::new(
            vec![],
            (2, 0),
            vec![Condition::eq(0, hz), Condition::range(1, 25.0, 40.0)],
        );
        let numeric = |a: AttrId, row: RowId| rel.value(row, a).as_f64();
        assert!(rule.pattern_matches(&rel, 0, numeric));
        assert!(!rule.pattern_matches(&rel, 1, numeric));
    }

    #[test]
    fn display_renders_paper_notation() {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(er_table::Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = er_table::Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        );
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![Value::str("HZ"), Value::str("c")]).unwrap();
        let rel = b.finish();
        let hz = pool.code_of(&Value::str("HZ")).unwrap();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, hz)]);
        let s = format!("{}", rule.display(&rel, &m_schema));
        assert_eq!(s, "(((City, City)) -> (Case, Infection), t_p(City=HZ))");
    }

    #[test]
    fn hash_distinguishes_structure() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(EditingRule::new(vec![(0, 0)], (2, 2), vec![]));
        set.insert(EditingRule::new(vec![(0, 1)], (2, 2), vec![]));
        set.insert(EditingRule::new(
            vec![(0, 0)],
            (2, 2),
            vec![Condition::eq(1, 0)],
        ));
        assert_eq!(set.len(), 3);
        assert!(set.contains(&EditingRule::new(vec![(0, 0)], (2, 2), vec![])));
    }
}
