//! Task-free batch repair for long-lived serving.
//!
//! [`crate::apply_rules`] is built for one-shot mining runs: it borrows a
//! [`crate::Task`] that owns both relations, and its [`crate::Evaluator`]
//! builds the master-side group indexes lazily per call site. A serving
//! process inverts that shape — the master relation and rule set are loaded
//! once and live for the lifetime of the process, while input batches
//! stream in and out. [`BatchRepairer`] holds exactly the long-lived half:
//! the master relation, the resolved rules, and one pre-built
//! [`GroupIndex`] per distinct `X_m` list (warmed at construction, shared
//! by every request), so a `repair_batch` call touches only the incoming
//! rows.
//!
//! The voting semantics are identical to [`crate::apply_rules_with`]: the
//! per-rule `(row, candidate, score)` contributions are collected in
//! parallel over the worker pool and folded sequentially in rule order, so
//! the report for a given batch is byte-identical to the one-shot path at
//! any thread count.

use crate::repair::{fold_votes, RepairReport};
use crate::rule::EditingRule;
use er_par::WorkerPool;
use er_table::{AttrId, Code, GroupIndex, Relation, RowId, Value, NULL_CODE};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Rules per worker-pool fan-out between deadline checks: small enough that
/// an expired deadline is noticed promptly, large enough that the handoff
/// overhead stays negligible.
const RULE_CHUNK: usize = 8;

/// Errors from building a [`BatchRepairer`] or repairing a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// A rule's target differs from the repairer's target pair.
    MixedTargets {
        /// Index of the offending rule.
        rule: usize,
    },
    /// The target's master attribute is out of range for the master schema.
    TargetOutOfRange,
    /// The batch relation does not share the repairer's value pool, so its
    /// dictionary codes would be meaningless against the master indexes.
    PoolMismatch,
    /// The batch relation's arity is too small to contain the target `Y` or
    /// a rule's LHS/pattern attribute.
    BatchArity {
        /// Required minimum arity.
        needed: usize,
        /// The batch's actual arity.
        got: usize,
    },
    /// The per-request deadline expired before the repair finished.
    DeadlineExceeded,
    /// An appended master row failed validation (arity or type); nothing
    /// was committed.
    AppendRow {
        /// Index of the offending row within the append batch.
        row: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::MixedTargets { rule } => {
                write!(f, "rule #{rule} has a different target than the repairer")
            }
            BatchError::TargetOutOfRange => write!(f, "target Y_m out of range for the master"),
            BatchError::PoolMismatch => {
                write!(f, "batch does not share the repairer's value pool")
            }
            BatchError::BatchArity { needed, got } => {
                write!(f, "batch has {got} attributes, rules reference {needed}")
            }
            BatchError::DeadlineExceeded => write!(f, "deadline exceeded"),
            BatchError::AppendRow { row, message } => {
                write!(f, "append rejected at row {row}: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A warmed, long-lived repair engine: master relation + rule set + one
/// pre-built group index per distinct `X_m`, amortized across every
/// [`BatchRepairer::repair_batch`] call.
pub struct BatchRepairer {
    master: Relation,
    target: (AttrId, AttrId),
    rules: Vec<EditingRule>,
    /// Pre-built master-side indexes keyed by the `X_m` attribute list.
    indexes: HashMap<Vec<AttrId>, Arc<GroupIndex>>,
    /// Minimum input arity any rule (or the target) references.
    min_arity: usize,
    pool: WorkerPool,
}

impl std::fmt::Debug for BatchRepairer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRepairer")
            .field("master_rows", &self.master.num_rows())
            .field("target", &self.target)
            .field("rules", &self.rules.len())
            .field("indexes", &self.indexes.len())
            .finish()
    }
}

impl BatchRepairer {
    /// Build a repairer for `rules` over `master`, targeting the input/master
    /// attribute pair `target`. Every distinct `X_m` group index is built
    /// here — the serve-mode "warm indexes once" step — fanning out over up
    /// to `threads` workers (`0` = auto: `ER_THREADS` or sequential).
    pub fn new(
        master: Relation,
        target: (AttrId, AttrId),
        rules: Vec<EditingRule>,
        threads: usize,
    ) -> Result<Self, BatchError> {
        if target.1 >= master.num_attrs() {
            return Err(BatchError::TargetOutOfRange);
        }
        let mut min_arity = target.0 + 1;
        for (i, rule) in rules.iter().enumerate() {
            if rule.target() != target {
                return Err(BatchError::MixedTargets { rule: i });
            }
            let rule_max = rule
                .x()
                .iter()
                .chain(rule.pattern_attrs().iter())
                .max()
                .map_or(0, |&a| a + 1);
            min_arity = min_arity.max(rule_max);
        }
        let pool = WorkerPool::new(threads);
        let mut xms: Vec<Vec<AttrId>> = rules.iter().map(|r| r.xm()).collect();
        xms.sort();
        xms.dedup();
        let built: Vec<Arc<GroupIndex>> = pool.map(&xms, |xm| {
            Arc::new(GroupIndex::build(&master, xm, target.1))
        });
        let indexes = xms.into_iter().zip(built).collect();
        Ok(BatchRepairer {
            master,
            target,
            rules,
            indexes,
            min_arity,
            pool,
        })
    }

    /// The master relation the repairer serves from.
    pub fn master(&self) -> &Relation {
        &self.master
    }

    /// The loaded rules.
    pub fn rules(&self) -> &[EditingRule] {
        &self.rules
    }

    /// The `(Y, Y_m)` target pair.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.target
    }

    /// Number of pre-built group indexes (distinct `X_m` lists).
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Append rows (master-schema attribute order) to the master relation
    /// and delta-update every warmed group index in place — the incremental
    /// alternative to rebuilding the repairer when master data grows.
    ///
    /// Validation is all-or-nothing: every row is checked against the master
    /// schema before any is committed, so a failed append leaves the master
    /// and the indexes untouched. Returns the number of rows appended. The
    /// resulting indexes are identical to the ones a fresh
    /// [`BatchRepairer::new`] over the grown master would build (the
    /// `er-incr` equivalence suite enforces this at several thread counts).
    pub fn append_master(&mut self, rows: &[Vec<Value>]) -> Result<usize, BatchError> {
        for (i, row) in rows.iter().enumerate() {
            self.master
                .validate_row(row)
                .map_err(|e| BatchError::AppendRow {
                    row: i,
                    message: e.to_string(),
                })?;
        }
        let from_row = self
            .master
            .push_rows(rows)
            .map_err(|e| BatchError::AppendRow {
                row: 0,
                message: e.to_string(),
            })?;
        // Sequential delta updates: each index's apply_append is itself
        // deterministic, and the repair fan-out stays the only threaded part.
        for index in self.indexes.values_mut() {
            // Clone-on-write if a reader still holds an Arc from a previous
            // engine snapshot; the serving layer holds a write lock here.
            Arc::make_mut(index)
                .apply_append(&self.master, from_row)
                .map_err(|e| BatchError::AppendRow {
                    row: 0,
                    message: e.to_string(),
                })?;
        }
        Ok(rows.len())
    }

    /// Repair one batch of input rows. The report is identical to
    /// [`crate::apply_rules`] on a task built from the same batch and master.
    pub fn repair_batch(&self, batch: &Relation) -> Result<RepairReport, BatchError> {
        self.repair(batch, None)
    }

    /// Like [`BatchRepairer::repair_batch`] with a hard deadline: the rule
    /// fan-out is chunked and the clock is checked between chunks, so an
    /// overloaded server abandons a request within one chunk's work rather
    /// than finishing an arbitrarily large rule set.
    pub fn repair_batch_deadline(
        &self,
        batch: &Relation,
        deadline: Instant,
    ) -> Result<RepairReport, BatchError> {
        self.repair(batch, Some(deadline))
    }

    fn repair(
        &self,
        batch: &Relation,
        deadline: Option<Instant>,
    ) -> Result<RepairReport, BatchError> {
        if !Arc::ptr_eq(batch.pool(), self.master.pool()) {
            return Err(BatchError::PoolMismatch);
        }
        if batch.num_attrs() < self.min_arity {
            return Err(BatchError::BatchArity {
                needed: self.min_arity,
                got: batch.num_attrs(),
            });
        }
        let mut contributions: Vec<Vec<(RowId, Code, f64)>> = Vec::with_capacity(self.rules.len());
        for chunk in self.rules.chunks(RULE_CHUNK) {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(BatchError::DeadlineExceeded);
            }
            contributions.extend(self.pool.map(chunk, |rule| self.contribution(rule, batch)));
        }
        let report = fold_votes(batch.num_rows(), contributions);
        #[cfg(feature = "debug-invariants")]
        self.audit_report(&report);
        Ok(report)
    }

    /// One rule's `(row, candidate, certainty)` votes over the batch —
    /// the same contributions [`crate::apply_rules_with`] collects, with the
    /// pattern cover computed inline (batches are small; the subspace-search
    /// machinery of the mining path would cost more than it saves).
    fn contribution(&self, rule: &EditingRule, batch: &Relation) -> Vec<(RowId, Code, f64)> {
        let numeric = |attr: AttrId, row: RowId| {
            if batch.schema().attr(attr).is_continuous() {
                batch.value(row, attr).as_f64()
            } else {
                None
            }
        };
        let x = rule.x();
        // Invariant: `new` built an index for every rule's X_m list.
        #[allow(clippy::unwrap_used)]
        let group = self.indexes.get(&rule.xm()).unwrap();
        // Catch silent stale reads: `append_master` must have delta-updated
        // every index to the master's current generation.
        #[cfg(feature = "debug-invariants")]
        group.assert_fresh(&self.master);
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(x.len());
        'rows: for row in 0..batch.num_rows() {
            if !rule.pattern_matches(batch, row, numeric) {
                continue;
            }
            key.clear();
            for &a in &x {
                let c = batch.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            let dist = group.get(&key);
            let total: u32 = dist
                .iter()
                .filter(|&&(c, _)| c != NULL_CODE)
                .map(|&(_, n)| n)
                .sum();
            if total == 0 {
                continue;
            }
            for &(code, count) in dist {
                if code == NULL_CODE {
                    continue;
                }
                out.push((row, code, count as f64 / total as f64));
            }
        }
        out
    }

    /// Certain-fix audit: every prediction must copy a value actually
    /// present in the master's `Y_m` column — the repair engine only ever
    /// transfers master data, never invents values.
    #[cfg(feature = "debug-invariants")]
    fn audit_report(&self, report: &RepairReport) {
        let valid: std::collections::HashSet<Code> = self
            .master
            .column(self.target.1)
            .iter()
            .copied()
            .filter(|&c| c != NULL_CODE)
            .collect();
        for (row, pred) in report.predictions.iter().enumerate() {
            if let Some(code) = pred {
                assert!(
                    valid.contains(code),
                    "BatchRepairer: prediction for row {row} is not a master Y_m value"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use crate::repair::apply_rules;
    use crate::rule::Condition;
    use crate::task::Task;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};

    fn fixture() -> (Relation, Relation) {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![s("HZ"), Value::Null]).unwrap();
        b.push_row(vec![s("BJ"), s("imports")]).unwrap();
        b.push_row(vec![s("SZ"), s("patient")]).unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
        let master = bm.finish();
        (input, master)
    }

    fn rules(input: &Relation) -> Vec<EditingRule> {
        let bj = input.pool().code_of(&Value::str("BJ")).unwrap();
        vec![
            EditingRule::new(vec![(0, 0)], (1, 1), vec![]),
            EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, bj)]),
        ]
    }

    #[test]
    fn matches_one_shot_apply_rules() {
        let (input, master) = fixture();
        let rules = rules(&input);
        let repairer = BatchRepairer::new(master.clone(), (1, 1), rules.clone(), 0).unwrap();
        let report = repairer.repair_batch(&input).unwrap();

        let task = Task::new(
            input,
            master,
            SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
            (1, 1),
        );
        let oneshot = apply_rules(&task, &rules);
        assert_eq!(report.predictions, oneshot.predictions);
        assert_eq!(report.scores, oneshot.scores);
        assert_eq!(report.candidates, oneshot.candidates);
        assert_eq!(report.rules_applied, oneshot.rules_applied);
    }

    #[test]
    fn indexes_warm_once_and_are_shared() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        // Both rules share X_m = [0] — one index serves them both.
        assert_eq!(repairer.num_indexes(), 1);
    }

    #[test]
    fn repeated_batches_reuse_the_warm_state() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let first = repairer.repair_batch(&input).unwrap();
        let gathered = input.gather(&[2, 0]);
        let second = repairer.repair_batch(&gathered).unwrap();
        assert_eq!(second.predictions[1], first.predictions[0]);
        assert_eq!(second.predictions[0], first.predictions[2]);
    }

    #[test]
    fn mixed_targets_rejected() {
        let (input, master) = fixture();
        let mut rs = rules(&input);
        rs.push(EditingRule::new(vec![(1, 1)], (0, 0), vec![]));
        assert_eq!(
            BatchRepairer::new(master, (1, 1), rs, 0).unwrap_err(),
            BatchError::MixedTargets { rule: 2 }
        );
    }

    #[test]
    fn foreign_pool_rejected() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let foreign = Relation::empty(Arc::clone(input.schema()), Arc::new(Pool::new()));
        assert_eq!(
            repairer.repair_batch(&foreign).unwrap_err(),
            BatchError::PoolMismatch
        );
    }

    #[test]
    fn narrow_batch_rejected() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master.clone(), (1, 1), rules(&input), 0).unwrap();
        let narrow = input.project("slim", &[0]);
        assert_eq!(
            repairer.repair_batch(&narrow).unwrap_err(),
            BatchError::BatchArity { needed: 2, got: 1 }
        );
    }

    #[test]
    fn expired_deadline_is_reported() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            repairer.repair_batch_deadline(&input, expired).unwrap_err(),
            BatchError::DeadlineExceeded
        );
        // A generous deadline succeeds.
        let generous = Instant::now() + std::time::Duration::from_secs(60);
        assert!(repairer.repair_batch_deadline(&input, generous).is_ok());
    }

    #[test]
    fn append_master_matches_rebuilt_repairer() {
        let (input, master) = fixture();
        let rules = rules(&input);
        let mut incremental = BatchRepairer::new(master.clone(), (1, 1), rules.clone(), 0).unwrap();
        let s = Value::str;
        // Flip HZ's majority to "imports" and introduce a brand-new city.
        let extra = vec![
            vec![s("HZ"), s("imports")],
            vec![s("HZ"), s("imports")],
            vec![s("HZ"), s("imports")],
            vec![s("SZ"), s("no symptoms")],
        ];
        assert_eq!(incremental.append_master(&extra).unwrap(), 4);

        let mut grown = master;
        grown.push_rows(&extra).unwrap();
        let rebuilt = BatchRepairer::new(grown, (1, 1), rules, 0).unwrap();

        let a = incremental.repair_batch(&input).unwrap();
        let b = rebuilt.repair_batch(&input).unwrap();
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.rules_applied, b.rules_applied);
        // The append genuinely changed the vote: SZ now has master support.
        assert!(a.predictions[2].is_some());
    }

    #[test]
    fn append_master_is_atomic_on_bad_rows() {
        let (input, master) = fixture();
        let mut repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let before = repairer.master().num_rows();
        let s = Value::str;
        let bad = vec![vec![s("HZ"), s("patient")], vec![s("only-one-cell")]];
        match repairer.append_master(&bad).unwrap_err() {
            BatchError::AppendRow { row, .. } => assert_eq!(row, 1),
            other => panic!("expected AppendRow, got {other:?}"),
        }
        assert_eq!(repairer.master().num_rows(), before);
        // The warm state still serves correctly after the rejected append.
        assert!(repairer.repair_batch(&input).is_ok());
    }

    #[test]
    fn empty_rule_set_predicts_nothing() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), Vec::new(), 0).unwrap();
        let report = repairer.repair_batch(&input).unwrap();
        assert_eq!(report.num_predictions(), 0);
    }
}
