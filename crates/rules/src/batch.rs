//! Task-free batch repair for long-lived serving.
//!
//! [`crate::apply_rules`] is built for one-shot mining runs: it borrows a
//! [`crate::Task`] that owns both relations, and its [`crate::Evaluator`]
//! builds the master-side group indexes lazily per call site. A serving
//! process inverts that shape — the master relation and rule set are loaded
//! once and live for the lifetime of the process, while input batches
//! stream in and out. [`BatchRepairer`] holds exactly the long-lived half:
//! the master relation, the resolved rules, and one pre-built
//! [`GroupIndex`] per distinct `X_m` list (warmed at construction, shared
//! by every request), so a `repair_batch` call touches only the incoming
//! rows.
//!
//! # The signature-batched hot path
//!
//! The certainty vote of §V-B2 is embarrassingly regular: every row with
//! the same LHS code signature gets the same index probe and the same
//! candidate distribution. Instead of probing row by row, `repair` works
//! per *LHS group* (rules sharing the same `(X, X_m)` attribute list — they
//! reuse one grouping and one probe per signature):
//!
//! 1. **group** — one pass over the batch interns each row's `X` code
//!    tuple into a first-occurrence signature id, writing a row-major
//!    signature vector (`sigs[row]`, with [`NO_SIG`] for rows whose key
//!    contains a NULL). Single-attribute keys index a dense table by code;
//!    two-attribute keys pack into one `u64` probe; wider keys fall back to
//!    a generic open-addressing interner. Ids are assigned in row order, so
//!    hashing never influences the output.
//! 2. **probe** — one [`GroupIndex`] probe per distinct signature, with the
//!    distribution's `1.0/total` reciprocal computed once and the
//!    `(candidate, score)` run appended to a shared candidate arena;
//!    `ranges[sig]` records the run's bounds.
//! 3. **fan out** — each rule of the group emits a [`RuleVotes`]: the
//!    shared signature vector, candidate arena, and ranges behind `Arc`s.
//!    Pattern-free rules share them wholesale; a pattern rule clones the
//!    signature vector and blanks failing rows to [`NO_SIG`]. The grouped
//!    fold in [`crate::repair`] then expands per-signature candidate runs
//!    in tight branch-free inner loops (padded dense delta matrices when
//!    the signature count is small enough).
//!
//! The voting semantics are identical to [`crate::apply_rules_with`]: the
//! per-rule contributions are collected in parallel over the worker pool
//! and folded sequentially in rule order. Within one rule every row
//! receives at most one add per candidate, so the per-`(row, candidate)`
//! sums — and therefore the report — are byte-identical to the one-shot
//! path at any thread count, regardless of the order signature groups are
//! visited in. Scores are computed as `count * (1.0/total)` in *both*
//! paths, because a precomputed reciprocal rounds differently than a fresh
//! division.
//!
//! # The certificate-gated unordered fan-out
//!
//! The fan-out normally goes through [`er_par::WorkerPool::map`], whose
//! ordered scatter buffers every group's result before the collect loop
//! runs. When the owning engine holds a valid er-analyze
//! `ConfluenceCertificate` it may call [`BatchRepairer::set_unordered`],
//! switching the fan-out to [`er_par::WorkerPool::unordered_fold`]: group
//! outcomes are folded the moment they complete, in arrival order. The
//! output is still byte-identical — each outcome scatters into *disjoint*
//! per-rule `contributions` slots, the stat counters are exact integer
//! sums, and the certainty-vote fold itself ([`fold_votes`]) always runs
//! sequentially in rule order afterwards — and
//! `crates/bench/tests/par_determinism.rs` enforces that identity across
//! the full shard × thread matrix. The repairer does not verify the
//! certificate itself; the flag is plumbed down from `er-serve`, which
//! re-runs the confluence pass on `reload` and `append`.
//!
//! The previous row-at-a-time implementation is kept as
//! [`BatchRepairer::repair_batch_reference`] behind
//! `cfg(any(test, feature = "reference-path"))`, so the equivalence suite
//! and `experiments repair_bench` can assert byte-identity and measure the
//! speedup.

use crate::repair::{fold_votes, Contribution, RepairReport, RuleVotes, NO_SIG};
use crate::rule::EditingRule;
use er_par::WorkerPool;
use er_table::{AttrId, Code, GroupIndex, Relation, RowId, Value, NULL_CODE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// LHS groups per worker-pool fan-out between deadline checks: small enough
/// that an expired deadline is noticed promptly, large enough that the
/// handoff overhead stays negligible.
const GROUP_CHUNK: usize = 8;

/// Signature groups processed between deadline checks *inside* one LHS
/// group, so a single rule over a high-cardinality batch cannot blow past
/// the deadline by the whole group's work.
const DEADLINE_STRIDE: usize = 64;

/// Largest value-pool size for which a single-attribute LHS group uses a
/// direct code→signature table (16 MiB of `u32`s) instead of the hashing
/// interner.
const DENSE_SIG_TABLE_MAX: usize = 1 << 22;

/// Errors from building a [`BatchRepairer`] or repairing a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// A rule's target differs from the repairer's target pair.
    MixedTargets {
        /// Index of the offending rule.
        rule: usize,
    },
    /// The target's master attribute is out of range for the master schema.
    TargetOutOfRange,
    /// The batch relation does not share the repairer's value pool, so its
    /// dictionary codes would be meaningless against the master indexes.
    PoolMismatch,
    /// The batch relation's arity is too small to contain the target `Y` or
    /// a rule's LHS/pattern attribute.
    BatchArity {
        /// Required minimum arity.
        needed: usize,
        /// The batch's actual arity.
        got: usize,
    },
    /// The per-request deadline expired before the repair finished.
    DeadlineExceeded,
    /// An appended master row failed validation (arity or type); nothing
    /// was committed.
    AppendRow {
        /// Index of the offending row within the append batch.
        row: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::MixedTargets { rule } => {
                write!(f, "rule #{rule} has a different target than the repairer")
            }
            BatchError::TargetOutOfRange => write!(f, "target Y_m out of range for the master"),
            BatchError::PoolMismatch => {
                write!(f, "batch does not share the repairer's value pool")
            }
            BatchError::BatchArity { needed, got } => {
                write!(f, "batch has {got} attributes, rules reference {needed}")
            }
            BatchError::DeadlineExceeded => write!(f, "deadline exceeded"),
            BatchError::AppendRow { row, message } => {
                write!(f, "append rejected at row {row}: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Lifetime vote-batching counters of a [`BatchRepairer`]: how many
/// NULL-free rows entered signature grouping versus how many distinct
/// signature probes actually hit the master indexes. Their ratio is the
/// batching payoff the serve `stats` op reports as `signature_dedup`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteStats {
    /// Rows that entered signature grouping (counted once per LHS group).
    pub rows: u64,
    /// Distinct-signature index probes performed.
    pub probes: u64,
}

impl VoteStats {
    /// Rows handled per distinct signature probe (`0.0` before any repair).
    pub fn dedup_ratio(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.rows as f64 / self.probes as f64
        }
    }
}

/// Rules sharing one `(X, X_m)` LHS attribute list: they reuse a single
/// signature grouping of the batch and a single probe per distinct
/// signature, instead of regrouping per rule.
struct LhsGroup {
    /// Input-side LHS attributes (the signature key).
    x: Vec<AttrId>,
    /// Master-side LHS attributes (the warmed-index key).
    xm: Vec<AttrId>,
    /// Indices into the rule list, ascending.
    rules: Vec<usize>,
}

/// What one LHS group's worker produced.
struct GroupOutcome {
    /// Per-rule grouped votes, tagged with the rule's index.
    votes: Vec<(usize, RuleVotes)>,
    /// Rows that survived the NULL filter into grouping.
    rows: u64,
    /// Distinct signature probes performed.
    probes: u64,
}

/// Open-addressing interner assigning dense first-occurrence ids to code
/// signatures. The row-scan insertion order fixes the ids, so the hash
/// function never influences the output — it only has to be fast, and a
/// multiplicative mix over the codes beats SipHash several-fold on the
/// 1–3-code keys of real rule sets.
struct SigInterner {
    /// `slot = sig_id + 1`, `0` = empty.
    slots: Vec<u32>,
    mask: usize,
}

impl SigInterner {
    fn with_capacity(rows: usize) -> Self {
        // ≤ 50% load factor keeps probe chains short.
        let cap = (rows.max(4) * 2).next_power_of_two();
        SigInterner {
            slots: vec![0; cap],
            mask: cap - 1,
        }
    }

    fn hash(key: &[Code]) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for &c in key {
            h = (h ^ u64::from(c)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
        }
        h
    }

    /// Id of the `xl`-code signature at `keys[i*xl..]`, assigning the next
    /// dense id (`rep.len()`) on first occurrence. Existing entries are
    /// compared against the key slice of their representative row in `rep`,
    /// so the interner itself stores only slot tags.
    fn intern(&mut self, i: usize, keys: &[Code], xl: usize, rep: &[usize]) -> usize {
        let key = &keys[i * xl..(i + 1) * xl];
        let mut idx = Self::hash(key) as usize & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                let id = rep.len();
                // Invariant: capacity is ≥ 2× the row count and ids are
                // only minted once per row, so id + 1 fits in u32 whenever
                // the batch does.
                self.slots[idx] = id as u32 + 1;
                return id;
            }
            let id = (slot - 1) as usize;
            if keys[rep[id] * xl..rep[id] * xl + xl] == *key {
                return id;
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

/// Deadline checks amortized over [`DEADLINE_STRIDE`] ticks, so the clock
/// is read between signature groups without a syscall per group.
struct DeadlineTicker {
    deadline: Option<Instant>,
    ticks: usize,
}

impl DeadlineTicker {
    fn new(deadline: Option<Instant>) -> Self {
        DeadlineTicker { deadline, ticks: 0 }
    }

    fn tick(&mut self) -> Result<(), BatchError> {
        self.ticks += 1;
        if self.ticks >= DEADLINE_STRIDE {
            self.ticks = 0;
            if self.deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(BatchError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// A warmed, long-lived repair engine: master relation + rule set + one
/// pre-built group index per distinct `X_m`, amortized across every
/// [`BatchRepairer::repair_batch`] call.
pub struct BatchRepairer {
    master: Relation,
    target: (AttrId, AttrId),
    rules: Vec<EditingRule>,
    /// Pre-built master-side indexes keyed by the `X_m` attribute list.
    indexes: HashMap<Vec<AttrId>, Arc<GroupIndex>>,
    /// Rules grouped by identical `(X, X_m)` LHS list, in first-occurrence
    /// order — the unit of signature grouping and probe dedup.
    lhs_groups: Vec<LhsGroup>,
    /// Minimum input arity any rule (or the target) references.
    min_arity: usize,
    pool: WorkerPool,
    /// Whether the fan-out may fold group outcomes in arrival order
    /// (certificate-gated; see the module docs). Off by default: the
    /// ordered [`WorkerPool::map`] path needs no license.
    unordered: bool,
    /// Lifetime [`VoteStats`] counters (relaxed atomics: `repair` is `&self`
    /// and runs concurrently behind the serve read lock).
    vote_rows: AtomicU64,
    signature_probes: AtomicU64,
}

impl std::fmt::Debug for BatchRepairer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRepairer")
            .field("master_rows", &self.master.num_rows())
            .field("target", &self.target)
            .field("rules", &self.rules.len())
            .field("indexes", &self.indexes.len())
            .field("lhs_groups", &self.lhs_groups.len())
            .finish()
    }
}

impl BatchRepairer {
    /// Build a repairer for `rules` over `master`, targeting the input/master
    /// attribute pair `target`. Every distinct `X_m` group index is built
    /// here — the serve-mode "warm indexes once" step — fanning out over up
    /// to `threads` workers (`0` = auto: `ER_THREADS` or sequential).
    pub fn new(
        master: Relation,
        target: (AttrId, AttrId),
        rules: Vec<EditingRule>,
        threads: usize,
    ) -> Result<Self, BatchError> {
        if target.1 >= master.num_attrs() {
            return Err(BatchError::TargetOutOfRange);
        }
        let mut min_arity = target.0 + 1;
        for (i, rule) in rules.iter().enumerate() {
            if rule.target() != target {
                return Err(BatchError::MixedTargets { rule: i });
            }
            let rule_max = rule
                .x()
                .iter()
                .chain(rule.pattern_attrs().iter())
                .max()
                .map_or(0, |&a| a + 1);
            min_arity = min_arity.max(rule_max);
        }
        // Group rules by their full LHS pair list (same list ⇒ same X and
        // X_m), in first-occurrence order for a deterministic layout.
        let mut lhs_groups: Vec<LhsGroup> = Vec::new();
        let mut group_of: HashMap<Vec<(AttrId, AttrId)>, usize> = HashMap::new();
        for (i, rule) in rules.iter().enumerate() {
            let next = lhs_groups.len();
            let gi = *group_of.entry(rule.lhs().to_vec()).or_insert(next);
            if gi == next {
                lhs_groups.push(LhsGroup {
                    x: rule.x(),
                    xm: rule.xm(),
                    rules: Vec::new(),
                });
            }
            lhs_groups[gi].rules.push(i);
        }
        let pool = WorkerPool::new(threads);
        let mut xms: Vec<Vec<AttrId>> = rules.iter().map(|r| r.xm()).collect();
        xms.sort();
        xms.dedup();
        let built: Vec<Arc<GroupIndex>> = pool.map(&xms, |xm| {
            Arc::new(GroupIndex::build(&master, xm, target.1))
        });
        let indexes = xms.into_iter().zip(built).collect();
        Ok(BatchRepairer {
            master,
            target,
            rules,
            indexes,
            lhs_groups,
            min_arity,
            pool,
            unordered: false,
            vote_rows: AtomicU64::new(0),
            signature_probes: AtomicU64::new(0),
        })
    }

    /// The master relation the repairer serves from.
    pub fn master(&self) -> &Relation {
        &self.master
    }

    /// The loaded rules.
    pub fn rules(&self) -> &[EditingRule] {
        &self.rules
    }

    /// The `(Y, Y_m)` target pair.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.target
    }

    /// Number of pre-built group indexes (distinct `X_m` lists).
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Number of LHS groups (distinct `(X, X_m)` lists) the rules share —
    /// the unit of signature grouping and probe dedup.
    pub fn num_lhs_groups(&self) -> usize {
        self.lhs_groups.len()
    }

    /// Whether the arrival-order fan-out is currently selected (see
    /// [`BatchRepairer::set_unordered`]).
    pub fn unordered(&self) -> bool {
        self.unordered
    }

    /// Select (`true`) or deselect (`false`) the arrival-order group
    /// fan-out. Callers must only pass `true` while they hold a valid
    /// er-analyze `ConfluenceCertificate` for exactly this rule set and
    /// master generation — the repairer trusts the license; the output is
    /// byte-identical either way (module docs, `par_determinism.rs`).
    pub fn set_unordered(&mut self, licensed: bool) {
        self.unordered = licensed;
    }

    /// Lifetime vote-batching counters: rows grouped vs. distinct signature
    /// probes, across every repair served so far.
    pub fn vote_stats(&self) -> VoteStats {
        VoteStats {
            rows: self.vote_rows.load(Ordering::Relaxed),
            probes: self.signature_probes.load(Ordering::Relaxed),
        }
    }

    /// Append rows (master-schema attribute order) to the master relation
    /// and delta-update every warmed group index in place — the incremental
    /// alternative to rebuilding the repairer when master data grows.
    ///
    /// Validation is all-or-nothing: every row is checked against the master
    /// schema before any is committed, so a failed append leaves the master
    /// and the indexes untouched. Returns the number of rows appended. The
    /// resulting indexes are identical to the ones a fresh
    /// [`BatchRepairer::new`] over the grown master would build (the
    /// `er-incr` equivalence suite enforces this at several thread counts).
    pub fn append_master(&mut self, rows: &[Vec<Value>]) -> Result<usize, BatchError> {
        for (i, row) in rows.iter().enumerate() {
            self.master
                .validate_row(row)
                .map_err(|e| BatchError::AppendRow {
                    row: i,
                    message: e.to_string(),
                })?;
        }
        let from_row = self
            .master
            .push_rows(rows)
            .map_err(|e| BatchError::AppendRow {
                row: 0,
                message: e.to_string(),
            })?;
        // Sequential delta updates: each index's apply_append is itself
        // deterministic, and the repair fan-out stays the only threaded part.
        for index in self.indexes.values_mut() {
            // Clone-on-write if a reader still holds an Arc from a previous
            // engine snapshot; the serving layer holds a write lock here.
            Arc::make_mut(index)
                .apply_append(&self.master, from_row)
                .map_err(|e| BatchError::AppendRow {
                    row: 0,
                    message: e.to_string(),
                })?;
        }
        Ok(rows.len())
    }

    /// Repair one batch of input rows. The report is identical to
    /// [`crate::apply_rules`] on a task built from the same batch and master.
    pub fn repair_batch(&self, batch: &Relation) -> Result<RepairReport, BatchError> {
        self.repair(batch, None)
    }

    /// Like [`BatchRepairer::repair_batch`] with a hard deadline: the LHS
    /// group fan-out is chunked and the clock is checked between chunks
    /// *and* between signature groups inside each chunk, so an overloaded
    /// server abandons a request within one stride's work even when a
    /// single rule covers an arbitrarily large batch.
    pub fn repair_batch_deadline(
        &self,
        batch: &Relation,
        deadline: Instant,
    ) -> Result<RepairReport, BatchError> {
        self.repair(batch, Some(deadline))
    }

    /// Reject batches the warm state cannot serve (shared by the batched
    /// and reference paths).
    fn validate_batch(&self, batch: &Relation) -> Result<(), BatchError> {
        if !Arc::ptr_eq(batch.pool(), self.master.pool()) {
            return Err(BatchError::PoolMismatch);
        }
        if batch.num_attrs() < self.min_arity {
            return Err(BatchError::BatchArity {
                needed: self.min_arity,
                got: batch.num_attrs(),
            });
        }
        Ok(())
    }

    fn repair(
        &self,
        batch: &Relation,
        deadline: Option<Instant>,
    ) -> Result<RepairReport, BatchError> {
        self.validate_batch(batch)?;
        // Placeholder contributions, overwritten below: every rule belongs
        // to exactly one LHS group and every group reports every rule.
        let mut contributions: Vec<Contribution> = (0..self.rules.len())
            .map(|_| Contribution::Flat(Vec::new()))
            .collect();
        let mut rows_grouped = 0u64;
        let mut probes = 0u64;
        for chunk in self.lhs_groups.chunks(GROUP_CHUNK) {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(BatchError::DeadlineExceeded);
            }
            if self.unordered {
                // Certificate-gated arrival-order fold: every outcome lands
                // in disjoint per-rule slots and the counters are exact
                // integer sums, so completion order is invisible in the
                // output. The only error a group worker can produce is
                // DeadlineExceeded, so arrival order cannot change which
                // error is reported either.
                let mut failure: Option<BatchError> = None;
                self.pool.unordered_fold(
                    chunk,
                    |group| self.group_contribution(group, batch, deadline),
                    |_, result| match result {
                        Ok(outcome) => {
                            rows_grouped += outcome.rows;
                            probes += outcome.probes;
                            for (rule, votes) in outcome.votes {
                                contributions[rule] = Contribution::Grouped(votes);
                            }
                        }
                        Err(e) => {
                            failure.get_or_insert(e);
                        }
                    },
                );
                if let Some(e) = failure {
                    return Err(e);
                }
            } else {
                let results = self.pool.map(chunk, |group| {
                    self.group_contribution(group, batch, deadline)
                });
                for result in results {
                    let outcome = result?;
                    rows_grouped += outcome.rows;
                    probes += outcome.probes;
                    for (rule, votes) in outcome.votes {
                        contributions[rule] = Contribution::Grouped(votes);
                    }
                }
            }
        }
        self.vote_rows.fetch_add(rows_grouped, Ordering::Relaxed);
        self.signature_probes.fetch_add(probes, Ordering::Relaxed);
        let report = fold_votes(batch.num_rows(), contributions);
        #[cfg(feature = "debug-invariants")]
        self.audit_report(&report);
        Ok(report)
    }

    /// Signature-batched votes of every rule in one LHS group: group the
    /// batch by LHS code signature once, probe the warmed index once per
    /// distinct signature, and emit per-rule row-major signature vectors
    /// over the shared candidate arena.
    fn group_contribution(
        &self,
        group: &LhsGroup,
        batch: &Relation,
        deadline: Option<Instant>,
    ) -> Result<GroupOutcome, BatchError> {
        let n = batch.num_rows();
        let xl = group.x.len();
        // Invariant: `new` built an index for every rule's X_m list.
        #[allow(clippy::unwrap_used)]
        let index = self.indexes.get(&group.xm).unwrap();
        // Catch silent stale reads: `append_master` must have delta-updated
        // every index to the master's current generation.
        #[cfg(feature = "debug-invariants")]
        index.assert_fresh(&self.master);

        // Pass 1 — intern every row's LHS code signature into a dense
        // first-occurrence id, row-major (`NO_SIG` where any key code is
        // NULL), working over raw column slices (no per-cell accessor
        // calls, no per-row `Vec`s). Single-attribute groups — the common
        // case — index a direct code→signature table and never hash at
        // all; wider groups go through the open-addressing interner.
        let cols: Vec<&[Code]> = group.x.iter().map(|&a| batch.column(a)).collect();
        let mut sigs: Vec<u32> = vec![NO_SIG; n];
        // Signature-key arena: the `xl` codes of signature `s` live at
        // `s*xl..(s+1)*xl`, in first-occurrence order (the probe keys).
        let mut sig_keys: Vec<Code> = Vec::new();
        let mut voting_rows = 0u64;
        let num_sigs;
        let pool_len = batch.pool().len();
        if xl == 1 && pool_len <= DENSE_SIG_TABLE_MAX {
            let col = cols[0];
            // Non-NULL codes are dense in 0..pool_len, so the code itself
            // addresses the table; u32::MAX = unseen.
            let mut table: Vec<u32> = vec![u32::MAX; pool_len];
            for (row, &c) in col.iter().enumerate() {
                if c == NULL_CODE {
                    continue;
                }
                let slot = &mut table[c as usize];
                if *slot == u32::MAX {
                    // Invariant: distinct signatures ≤ pool_len < u32::MAX.
                    *slot = sig_keys.len() as u32;
                    sig_keys.push(c);
                }
                sigs[row] = *slot;
                voting_rows += 1;
            }
            num_sigs = sig_keys.len();
        } else if xl == 2 {
            // Two-attribute groups pack both codes into one u64 and keep
            // the keys inline in the open-addressing table — one load per
            // probe, no arena indirection. `u64::MAX` can never collide
            // with a real key because the high half is a non-NULL code.
            let (ca, cb) = (cols[0], cols[1]);
            let cap = (n.max(4) * 2).next_power_of_two();
            let mask = cap - 1;
            let mut key_slots: Vec<u64> = vec![u64::MAX; cap];
            let mut id_slots: Vec<u32> = vec![0; cap];
            for row in 0..n {
                let (a, b) = (ca[row], cb[row]);
                if a == NULL_CODE || b == NULL_CODE {
                    continue;
                }
                let key = (u64::from(a) << 32) | u64::from(b);
                let mut h = (key ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 33;
                let mut idx = (h as usize) & mask;
                // First-occurrence ids: the hash function and table layout
                // never influence which id a signature gets.
                let id = loop {
                    let slot = key_slots[idx];
                    if slot == key {
                        break id_slots[idx];
                    }
                    if slot == u64::MAX {
                        // Invariant: distinct signatures ≤ rows < u32::MAX.
                        let id = (sig_keys.len() / 2) as u32;
                        key_slots[idx] = key;
                        id_slots[idx] = id;
                        sig_keys.push(a);
                        sig_keys.push(b);
                        break id;
                    }
                    idx = (idx + 1) & mask;
                };
                sigs[row] = id;
                voting_rows += 1;
            }
            num_sigs = sig_keys.len() / 2;
        } else {
            let mut keys: Vec<Code> = Vec::with_capacity(n * xl);
            let mut kept: Vec<RowId> = Vec::with_capacity(n);
            'rows: for row in 0..n {
                let base = keys.len();
                for col in &cols {
                    let c = col[row];
                    if c == NULL_CODE {
                        keys.truncate(base);
                        continue 'rows;
                    }
                    keys.push(c);
                }
                kept.push(row);
            }
            let mut interner = SigInterner::with_capacity(kept.len());
            // First filtered-row index carrying each signature.
            let mut rep: Vec<usize> = Vec::new();
            for (i, &row) in kept.iter().enumerate() {
                let id = interner.intern(i, &keys, xl, &rep);
                if id == rep.len() {
                    rep.push(i);
                }
                // Invariant: distinct signatures ≤ batch rows < u32::MAX.
                sigs[row] = id as u32;
            }
            num_sigs = rep.len();
            sig_keys.reserve(num_sigs * xl);
            for &i in &rep {
                sig_keys.extend_from_slice(&keys[i * xl..(i + 1) * xl]);
            }
            voting_rows = kept.len() as u64;
        }

        // Pass 2 — probe once per distinct signature: total and reciprocal
        // computed once, the NULL-free `(candidate, score)` run appended to
        // a shared arena in master-distribution order. The clock is checked
        // between signature groups so one huge rule cannot blow past the
        // deadline.
        let mut ticker = DeadlineTicker::new(deadline);
        let mut cands: Vec<(Code, f64)> = Vec::new();
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(num_sigs);
        for s in 0..num_sigs {
            ticker.tick()?;
            let key = &sig_keys[s * xl..(s + 1) * xl];
            let dist = index.get(key);
            let total: u32 = dist
                .iter()
                .filter(|&&(c, _)| c != NULL_CODE)
                .map(|&(_, m)| m)
                .sum();
            // Invariant: the arena is bounded by signatures × master Y_m
            // values, far below u32::MAX for any batch the engine accepts.
            let start = cands.len() as u32;
            if total > 0 {
                let recip = 1.0 / total as f64;
                for &(code, count) in dist {
                    if code == NULL_CODE {
                        continue;
                    }
                    cands.push((code, count as f64 * recip));
                }
            }
            ranges.push((start, cands.len() as u32));
        }
        let sigs = Arc::new(sigs);
        let cands = Arc::new(cands);
        let ranges = Arc::new(ranges);

        // Fan out per rule: pattern-free rules share the signature vector
        // and arenas wholesale; pattern rules clone the vector and blank
        // the rows their pattern rejects. Each condition's attribute kind
        // is resolved *once* here, so the per-row loop is plain code
        // compares plus a numeric decode only where a range condition
        // demands one.
        let mut votes = Vec::with_capacity(group.rules.len());
        for &ri in &group.rules {
            let rule = &self.rules[ri];
            if rule.pattern().is_empty() {
                votes.push((
                    ri,
                    RuleVotes {
                        sigs: Arc::clone(&sigs),
                        cands: Arc::clone(&cands),
                        ranges: Arc::clone(&ranges),
                        // Every signature has ≥ 1 row, so the rule votes
                        // iff any signature found candidates.
                        live: !cands.is_empty(),
                    },
                ));
            } else {
                let conds: Vec<(&[Code], AttrId, &crate::rule::Pred, bool)> = rule
                    .pattern()
                    .iter()
                    .map(|c| {
                        (
                            batch.column(c.attr),
                            c.attr,
                            &c.pred,
                            batch.schema().attr(c.attr).is_continuous(),
                        )
                    })
                    .collect();
                let matches = |row: RowId| {
                    conds.iter().all(|&(col, attr, pred, continuous)| {
                        let numeric = if continuous {
                            batch.value(row, attr).as_f64()
                        } else {
                            None
                        };
                        pred.matches(col[row], numeric)
                    })
                };
                let mut own: Vec<u32> = (*sigs).clone();
                let mut live = false;
                for (row, s) in own.iter_mut().enumerate() {
                    if *s == NO_SIG {
                        continue;
                    }
                    ticker.tick()?;
                    let (cs, ce) = ranges[*s as usize];
                    // Candidate-free signatures are blanked without even
                    // evaluating the pattern: they emit no votes either way.
                    if cs == ce || !matches(row) {
                        *s = NO_SIG;
                    } else {
                        live = true;
                    }
                }
                votes.push((
                    ri,
                    RuleVotes {
                        sigs: Arc::new(own),
                        cands: Arc::clone(&cands),
                        ranges: Arc::clone(&ranges),
                        live,
                    },
                ));
            }
        }
        Ok(GroupOutcome {
            votes,
            rows: voting_rows,
            probes: num_sigs as u64,
        })
    }

    /// The row-at-a-time reference implementation the signature-batched
    /// path replaced: per row, per rule — pattern check, key build, index
    /// probe, vote emission. Kept behind a cfg so the equivalence suite and
    /// `experiments repair_bench` can assert byte-identity and measure the
    /// speedup; it is not part of the serving surface.
    #[cfg(any(test, feature = "reference-path"))]
    pub fn repair_batch_reference(&self, batch: &Relation) -> Result<RepairReport, BatchError> {
        self.validate_batch(batch)?;
        let contributions: Vec<Contribution> = self
            .pool
            .map(&self.rules, |rule| {
                Contribution::Flat(self.contribution_reference(rule, batch))
            })
            .into_iter()
            .collect();
        Ok(fold_votes(batch.num_rows(), contributions))
    }

    /// One rule's `(row, candidate, certainty)` votes over the batch, row
    /// at a time — the same contributions [`crate::apply_rules_with`]
    /// collects, with the pattern cover computed inline.
    #[cfg(any(test, feature = "reference-path"))]
    fn contribution_reference(
        &self,
        rule: &EditingRule,
        batch: &Relation,
    ) -> Vec<(RowId, Code, f64)> {
        let numeric = |attr: AttrId, row: RowId| {
            if batch.schema().attr(attr).is_continuous() {
                batch.value(row, attr).as_f64()
            } else {
                None
            }
        };
        let x = rule.x();
        // Invariant: `new` built an index for every rule's X_m list.
        #[allow(clippy::unwrap_used)]
        let group = self.indexes.get(&rule.xm()).unwrap();
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(x.len());
        'rows: for row in 0..batch.num_rows() {
            if !rule.pattern_matches(batch, row, numeric) {
                continue;
            }
            key.clear();
            for &a in &x {
                let c = batch.code(row, a);
                if c == NULL_CODE {
                    continue 'rows;
                }
                key.push(c);
            }
            let dist = group.get(&key);
            let total: u32 = dist
                .iter()
                .filter(|&&(c, _)| c != NULL_CODE)
                .map(|&(_, n)| n)
                .sum();
            if total == 0 {
                continue;
            }
            // The same arithmetic shape as the batched path (see the module
            // docs): `count * (1/total)`, reciprocal computed once.
            let recip = 1.0 / total as f64;
            for &(code, count) in dist {
                if code == NULL_CODE {
                    continue;
                }
                out.push((row, code, count as f64 * recip));
            }
        }
        out
    }

    /// Certain-fix audit: every prediction must copy a value actually
    /// present in the master's `Y_m` column — the repair engine only ever
    /// transfers master data, never invents values.
    #[cfg(feature = "debug-invariants")]
    fn audit_report(&self, report: &RepairReport) {
        let valid: std::collections::HashSet<Code> = self
            .master
            .column(self.target.1)
            .iter()
            .copied()
            .filter(|&c| c != NULL_CODE)
            .collect();
        for (row, pred) in report.predictions.iter().enumerate() {
            if let Some(code) = pred {
                assert!(
                    valid.contains(code),
                    "BatchRepairer: prediction for row {row} is not a master Y_m value"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use crate::repair::apply_rules;
    use crate::rule::Condition;
    use crate::task::Task;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};

    fn fixture() -> (Relation, Relation) {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![s("HZ"), Value::Null]).unwrap();
        b.push_row(vec![s("BJ"), s("imports")]).unwrap();
        b.push_row(vec![s("SZ"), s("patient")]).unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
        let master = bm.finish();
        (input, master)
    }

    fn rules(input: &Relation) -> Vec<EditingRule> {
        let bj = input.pool().code_of(&Value::str("BJ")).unwrap();
        vec![
            EditingRule::new(vec![(0, 0)], (1, 1), vec![]),
            EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, bj)]),
        ]
    }

    fn assert_reports_bitwise_equal(a: &RepairReport, b: &RepairReport) {
        assert_eq!(a.predictions, b.predictions);
        let bits = |r: &RepairReport| r.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b), "scores diverged bitwise");
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.rules_applied, b.rules_applied);
    }

    #[test]
    fn matches_one_shot_apply_rules() {
        let (input, master) = fixture();
        let rules = rules(&input);
        let repairer = BatchRepairer::new(master.clone(), (1, 1), rules.clone(), 0).unwrap();
        let report = repairer.repair_batch(&input).unwrap();

        let task = Task::new(
            input,
            master,
            SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
            (1, 1),
        );
        let oneshot = apply_rules(&task, &rules);
        assert_reports_bitwise_equal(&report, &oneshot);
    }

    #[test]
    fn matches_the_row_at_a_time_reference() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let batched = repairer.repair_batch(&input).unwrap();
        let reference = repairer.repair_batch_reference(&input).unwrap();
        assert_reports_bitwise_equal(&batched, &reference);
        assert_eq!(batched.num_predictions(), 2);
    }

    #[test]
    fn indexes_warm_once_and_are_shared() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        // Both rules share X_m = [0] — one index serves them both, and one
        // LHS group means one signature grouping serves them both too.
        assert_eq!(repairer.num_indexes(), 1);
        assert_eq!(repairer.num_lhs_groups(), 1);
    }

    #[test]
    fn vote_stats_count_rows_and_probes() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        assert_eq!(repairer.vote_stats(), VoteStats::default());
        repairer.repair_batch(&input).unwrap();
        // One LHS group, 3 NULL-free rows, 3 distinct city signatures.
        let stats = repairer.vote_stats();
        assert_eq!(stats, VoteStats { rows: 3, probes: 3 });
        assert!((stats.dedup_ratio() - 1.0).abs() < 1e-12);
        // Counters are cumulative across repairs.
        repairer.repair_batch(&input).unwrap();
        assert_eq!(repairer.vote_stats(), VoteStats { rows: 6, probes: 6 });
    }

    #[test]
    fn shared_signatures_dedup_probes() {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        for _ in 0..10 {
            b.push_row(vec![s("HZ"), Value::Null]).unwrap();
        }
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        let master = bm.finish();
        let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        let repairer = BatchRepairer::new(master, (1, 1), rules, 0).unwrap();
        repairer.repair_batch(&input).unwrap();
        // Ten identical rows collapse to a single probe.
        let stats = repairer.vote_stats();
        assert_eq!(
            stats,
            VoteStats {
                rows: 10,
                probes: 1
            }
        );
        assert!((stats.dedup_ratio() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_batches_reuse_the_warm_state() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let first = repairer.repair_batch(&input).unwrap();
        let gathered = input.gather(&[2, 0]);
        let second = repairer.repair_batch(&gathered).unwrap();
        assert_eq!(second.predictions[1], first.predictions[0]);
        assert_eq!(second.predictions[0], first.predictions[2]);
    }

    #[test]
    fn mixed_targets_rejected() {
        let (input, master) = fixture();
        let mut rs = rules(&input);
        rs.push(EditingRule::new(vec![(1, 1)], (0, 0), vec![]));
        assert_eq!(
            BatchRepairer::new(master, (1, 1), rs, 0).unwrap_err(),
            BatchError::MixedTargets { rule: 2 }
        );
    }

    #[test]
    fn foreign_pool_rejected() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let foreign = Relation::empty(Arc::clone(input.schema()), Arc::new(Pool::new()));
        assert_eq!(
            repairer.repair_batch(&foreign).unwrap_err(),
            BatchError::PoolMismatch
        );
    }

    #[test]
    fn narrow_batch_rejected() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master.clone(), (1, 1), rules(&input), 0).unwrap();
        let narrow = input.project("slim", &[0]);
        assert_eq!(
            repairer.repair_batch(&narrow).unwrap_err(),
            BatchError::BatchArity { needed: 2, got: 1 }
        );
    }

    #[test]
    fn expired_deadline_is_reported() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            repairer.repair_batch_deadline(&input, expired).unwrap_err(),
            BatchError::DeadlineExceeded
        );
        // A generous deadline succeeds.
        let generous = Instant::now() + std::time::Duration::from_secs(60);
        assert!(repairer.repair_batch_deadline(&input, generous).is_ok());
    }

    /// Regression for the deadline-granularity fix: with a *single* rule
    /// there is only one fan-out chunk, so the old between-chunks check
    /// alone would run the entire rule to completion. The per-signature
    /// ticker must abandon the repair from inside the rule instead.
    #[test]
    fn deadline_expires_inside_a_single_huge_rule() {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        // Every row a distinct signature: tens of thousands of probes
        // inside one rule, far more than 100µs of work.
        for i in 0..60_000 {
            b.push_row(vec![Value::str(format!("C{i}")), Value::Null])
                .unwrap();
        }
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![Value::str("C0"), Value::str("patient")])
            .unwrap();
        let master = bm.finish();
        let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        let repairer = BatchRepairer::new(master, (1, 1), rules, 0).unwrap();
        let tight = Instant::now() + std::time::Duration::from_micros(100);
        assert_eq!(
            repairer.repair_batch_deadline(&input, tight).unwrap_err(),
            BatchError::DeadlineExceeded
        );
        // Without a deadline the same batch completes.
        assert!(repairer.repair_batch(&input).is_ok());
    }

    #[test]
    fn append_master_matches_rebuilt_repairer() {
        let (input, master) = fixture();
        let rules = rules(&input);
        let mut incremental = BatchRepairer::new(master.clone(), (1, 1), rules.clone(), 0).unwrap();
        let s = Value::str;
        // Flip HZ's majority to "imports" and introduce a brand-new city.
        let extra = vec![
            vec![s("HZ"), s("imports")],
            vec![s("HZ"), s("imports")],
            vec![s("HZ"), s("imports")],
            vec![s("SZ"), s("no symptoms")],
        ];
        assert_eq!(incremental.append_master(&extra).unwrap(), 4);

        let mut grown = master;
        grown.push_rows(&extra).unwrap();
        let rebuilt = BatchRepairer::new(grown, (1, 1), rules, 0).unwrap();

        let a = incremental.repair_batch(&input).unwrap();
        let b = rebuilt.repair_batch(&input).unwrap();
        assert_reports_bitwise_equal(&a, &b);
        // The append genuinely changed the vote: SZ now has master support.
        assert!(a.predictions[2].is_some());
    }

    #[test]
    fn append_master_is_atomic_on_bad_rows() {
        let (input, master) = fixture();
        let mut repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        let before = repairer.master().num_rows();
        let s = Value::str;
        let bad = vec![vec![s("HZ"), s("patient")], vec![s("only-one-cell")]];
        match repairer.append_master(&bad).unwrap_err() {
            BatchError::AppendRow { row, .. } => assert_eq!(row, 1),
            other => panic!("expected AppendRow, got {other:?}"),
        }
        assert_eq!(repairer.master().num_rows(), before);
        // The warm state still serves correctly after the rejected append.
        assert!(repairer.repair_batch(&input).is_ok());
    }

    #[test]
    fn unordered_fold_matches_ordered_fold_bitwise() {
        let (input, master) = fixture();
        for threads in [1, 2, 8] {
            let ordered =
                BatchRepairer::new(master.clone(), (1, 1), rules(&input), threads).unwrap();
            let mut unordered =
                BatchRepairer::new(master.clone(), (1, 1), rules(&input), threads).unwrap();
            assert!(!unordered.unordered());
            unordered.set_unordered(true);
            assert!(unordered.unordered());
            let a = ordered.repair_batch(&input).unwrap();
            let b = unordered.repair_batch(&input).unwrap();
            assert_reports_bitwise_equal(&a, &b);
            assert_eq!(ordered.vote_stats(), unordered.vote_stats());
        }
    }

    #[test]
    fn unordered_fold_still_honors_the_deadline() {
        let (input, master) = fixture();
        let mut repairer = BatchRepairer::new(master, (1, 1), rules(&input), 0).unwrap();
        repairer.set_unordered(true);
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            repairer.repair_batch_deadline(&input, expired).unwrap_err(),
            BatchError::DeadlineExceeded
        );
        assert!(repairer.repair_batch(&input).is_ok());
    }

    #[test]
    fn empty_rule_set_predicts_nothing() {
        let (input, master) = fixture();
        let repairer = BatchRepairer::new(master, (1, 1), Vec::new(), 0).unwrap();
        let report = repairer.repair_batch(&input).unwrap();
        assert_eq!(report.num_predictions(), 0);
        assert_eq!(repairer.vote_stats(), VoteStats::default());
    }
}
