//! Utility measures for editing rules (§II-B, Eqs. 1–5).
//!
//! For a rule `φ = ((X, X_m) → (Y, Y_m), t_p)` over input `D` and master
//! `D_m`:
//!
//! * **Support** `S(φ) = Σ_t f_s(φ, t)` — how many input tuples can be
//!   updated by some master tuple (Eq. 1).
//! * **Certainty** `C(φ)` — average concentration of the candidate-fix
//!   distribution over covered tuples (Eqs. 2–3); `C(φ) = 1` means every
//!   covered tuple receives exactly one candidate fix, i.e. a *certain fix*.
//! * **Quality** `Q(φ)` — whether the most frequent candidate equals the
//!   labelled truth, averaged with `+1/−1` scoring (Eqs. 4–5).
//! * **Utility** `U(φ) = (log S)² · (C + Q)` — the comprehensive measure
//!   (Fig. 2; `log` is base-10 so utility saturates at realistic supports).
//!
//! The [`Evaluator`] owns the per-task acceleration structures: a
//! [`GroupIndex`] on the master relation per distinct `X_m` list (built once,
//! shared by every rule with that LHS), and pattern covers computed by
//! *subspace search* — a child rule only rescans its parent's cover
//! (Algorithm 4, lines 9–10).

use crate::rule::EditingRule;
use crate::task::Task;
use er_par::{ShardedMap, WorkerPool};
use er_table::{Code, GroupIndex, RowId, NULL_CODE};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The four measures of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Support `S(φ)` (Eq. 1).
    pub support: usize,
    /// Certainty `C(φ) ∈ [0, 1]` (Eq. 3); 0 when support is 0.
    pub certainty: f64,
    /// Quality `Q(φ) ∈ [−1, 1]` (Eq. 5); 0 when support is 0.
    pub quality: f64,
    /// Utility `U(φ) = (log₁₀ S)² · (C + Q)`.
    pub utility: f64,
    /// Number of input tuples matching the pattern `t_p` (cover size; the
    /// support counts only the covered tuples that also hit master).
    pub cover: usize,
}

impl Measures {
    /// The all-zero measures of an inapplicable rule.
    pub fn zero() -> Self {
        Measures {
            support: 0,
            certainty: 0.0,
            quality: 0.0,
            utility: 0.0,
            cover: 0,
        }
    }
}

/// Minimum number of rows a pattern scan must touch before [`Evaluator::cover`]
/// fans out over the worker pool — below this the scan is cheaper than the
/// thread handoff.
const PAR_COVER_MIN_ROWS: usize = 2048;

/// Measure evaluator with shared acceleration caches for one [`Task`].
///
/// The evaluator is `Sync`: the miners share one instance across worker
/// threads. Both caches are N-way sharded (see [`ShardedMap`]) so concurrent
/// fills on different rules/attr-sets do not serialize on a global lock, and
/// each group index is wrapped in a [`OnceLock`] so under contention at most
/// one thread pays the build cost per `X_m` list.
pub struct Evaluator<'a> {
    task: &'a Task,
    /// Master-side group indexes, keyed by the `X_m` attribute list. The
    /// `OnceLock` level gives build-once semantics: the map entry is created
    /// cheaply under the shard lock, the expensive `GroupIndex::build` runs
    /// outside any lock in exactly one thread (`OnceLock::get_or_init`).
    group_indexes: ShardedMap<Vec<usize>, Arc<OnceLock<Arc<GroupIndex>>>>,
    /// Measures cache keyed by rule (the paper's reward map `R_Σ` reuses
    /// this through RLMiner; EnuMiner hits it when lattice paths converge).
    measures_cache: ShardedMap<EditingRule, Measures>,
    /// Pool for chunked full-table pattern scans in [`Evaluator::cover`].
    par: WorkerPool,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator for `task` with auto-resolved threading
    /// (`ER_THREADS` or sequential; see [`er_par::resolve_threads`]).
    pub fn new(task: &'a Task) -> Self {
        Self::with_threads(task, 0)
    }

    /// Create an evaluator for `task` scanning covers with up to `threads`
    /// threads (`0` = auto-resolve).
    pub fn with_threads(task: &'a Task, threads: usize) -> Self {
        Evaluator {
            task,
            group_indexes: ShardedMap::new(),
            measures_cache: ShardedMap::new(),
            par: WorkerPool::new(threads),
        }
    }

    /// The underlying task.
    pub fn task(&self) -> &Task {
        self.task
    }

    /// The worker pool cover scans fan out over (shared so the miners can
    /// reuse the same thread budget for their own fan-outs).
    pub fn pool(&self) -> WorkerPool {
        self.par
    }

    /// Number of distinct rules evaluated so far (cache size, summed over
    /// shards).
    pub fn evaluated_rules(&self) -> usize {
        self.measures_cache.len()
    }

    /// The group index on `X_m` (aggregating `Y_m` counts), building and
    /// caching it on first use. Under contention, at most one thread builds
    /// the index for a given `X_m`; the rest block on the `OnceLock` and
    /// share the result.
    pub fn group_index(&self, xm: &[usize]) -> Arc<GroupIndex> {
        let cell = self.group_indexes.get(xm).unwrap_or_else(|| {
            self.group_indexes
                .get_or_insert_with(&xm.to_vec(), Arc::default)
        });
        Arc::clone(cell.get_or_init(|| {
            let (_, ym) = self.task.target();
            Arc::new(GroupIndex::build(self.task.master(), xm, ym))
        }))
    }

    /// Rows of the input matching the rule's pattern, restricted to
    /// `within` when given (subspace search over the parent's cover).
    ///
    /// Large scans are chunked over contiguous row ranges and run on the
    /// worker pool; the per-chunk hit lists are concatenated in range order,
    /// so the result is identical to the sequential scan at any thread count.
    pub fn cover(&self, rule: &EditingRule, within: Option<&[RowId]>) -> Vec<RowId> {
        let input = self.task.input();
        let matches =
            |row: RowId| rule.pattern_matches(input, row, |attr, r| self.task.numeric(attr, r));
        let scan_len = within.map_or(input.num_rows(), <[RowId]>::len);
        if self.par.threads() > 1 && scan_len >= PAR_COVER_MIN_ROWS {
            let parts: Vec<Vec<RowId>> = match within {
                Some(rows) => self.par.ranges(rows.len(), |r| {
                    rows[r]
                        .iter()
                        .copied()
                        .filter(|&row| matches(row))
                        .collect()
                }),
                None => self.par.ranges(input.num_rows(), |r| {
                    r.filter(|&row| matches(row)).collect()
                }),
            };
            return parts.into_iter().flatten().collect();
        }
        match within {
            Some(rows) => rows.iter().copied().filter(|&r| matches(r)).collect(),
            None => (0..input.num_rows()).filter(|&r| matches(r)).collect(),
        }
    }

    /// Evaluate all measures of `rule`, using `parent_cover` to restrict the
    /// pattern scan when given. Results are cached by rule, so re-evaluating
    /// the same rule (e.g. across RL episodes) costs one hash lookup.
    pub fn eval(&self, rule: &EditingRule, parent_cover: Option<&[RowId]>) -> Measures {
        if let Some(m) = self.measures_cache.get(rule) {
            return m;
        }
        let cover = self.cover(rule, parent_cover);
        let m = self.eval_on_cover(rule, &cover);
        self.measures_cache.insert(rule.clone(), m);
        m
    }

    /// Cached measures of `rule`, if it was evaluated before.
    pub fn cached(&self, rule: &EditingRule) -> Option<Measures> {
        self.measures_cache.get(rule)
    }

    /// Like [`Evaluator::eval_on_cover`], but consults and fills the
    /// per-rule cache (the reward-reuse map `R_Σ` of Algorithm 2 is keyed
    /// off this). Use the uncached variant in one-pass enumerations where
    /// the caller already deduplicates rules.
    pub fn eval_on_cover_cached(&self, rule: &EditingRule, cover: &[RowId]) -> Measures {
        if let Some(m) = self.cached(rule) {
            return m;
        }
        let m = self.eval_on_cover(rule, cover);
        self.measures_cache.insert(rule.clone(), m);
        m
    }

    /// Evaluate measures given an already-computed pattern cover.
    pub fn eval_on_cover(&self, rule: &EditingRule, cover: &[RowId]) -> Measures {
        let input = self.task.input();
        let x = rule.x();
        let xm = rule.xm();
        let group = self.group_index(&xm);

        let mut support = 0usize;
        let mut certainty_sum = 0.0f64;
        let mut quality_sum = 0.0f64;
        let mut key = Vec::with_capacity(x.len());

        'rows: for &row in cover {
            key.clear();
            for &a in &x {
                let c = input.code(row, a);
                if c == NULL_CODE {
                    continue 'rows; // NULL never matches a master value
                }
                key.push(c);
            }
            let dist = group.get(&key);
            let (total, max_count, argmax) = summarize(dist);
            if total == 0 {
                continue; // no candidate fixes from master: f_s = 0
            }
            support += 1;
            certainty_sum += max_count as f64 / total as f64;
            let truth = self.task.label(row);
            quality_sum += if truth != NULL_CODE && argmax == truth {
                1.0
            } else {
                -1.0
            };
        }

        let (certainty, quality) = if support == 0 {
            (0.0, 0.0)
        } else {
            (certainty_sum / support as f64, quality_sum / support as f64)
        };
        let utility = utility(support, certainty, quality);
        Measures {
            support,
            certainty,
            quality,
            utility,
            cover: cover.len(),
        }
    }

    /// Invariants over the evaluator's caches, available under the
    /// `debug-invariants` feature:
    ///
    /// * every cached [`GroupIndex`] satisfies its own structural invariants;
    /// * every cached [`Measures`] is within range — `support ≤ cover`,
    ///   `cover ≤ |D|`, `C ∈ [0, 1]`, `Q ∈ [−1, 1]`, and support 0 implies
    ///   all-zero derived measures;
    /// * sharding is sound — every cached key is stored in exactly the shard
    ///   its hash selects, no key appears in two shards, and the shard sum
    ///   matches [`Evaluator::evaluated_rules`].
    ///
    /// Panics on violation; meant for debug builds and tests.
    #[cfg(feature = "debug-invariants")]
    pub fn check_invariants(&self) {
        self.group_indexes.for_each_shard(|shard_idx, shard| {
            for (xm, cell) in shard {
                assert_eq!(
                    self.group_indexes.shard_index(xm),
                    shard_idx,
                    "Evaluator: group index {xm:?} stored in the wrong shard"
                );
                if let Some(g) = cell.get() {
                    g.check_invariants();
                }
            }
        });
        let num_rows = self.task.input().num_rows();
        let mut seen: std::collections::HashSet<EditingRule> = std::collections::HashSet::new();
        let mut total = 0usize;
        self.measures_cache.for_each_shard(|shard_idx, shard| {
            for (rule, m) in shard {
                let r = rule.display(self.task.input(), self.task.master().schema());
                assert_eq!(
                    self.measures_cache.shard_index(rule),
                    shard_idx,
                    "Evaluator: {r} cached in the wrong shard"
                );
                assert!(
                    seen.insert(rule.clone()),
                    "Evaluator: {r} cached in two shards"
                );
                total += 1;
                assert!(m.support <= m.cover, "Evaluator: support > cover for {r}");
                assert!(m.cover <= num_rows, "Evaluator: cover > |D| for {r}");
                assert!(
                    (0.0..=1.0).contains(&m.certainty),
                    "Evaluator: certainty out of [0,1] for {r}"
                );
                assert!(
                    (-1.0..=1.0).contains(&m.quality),
                    "Evaluator: quality out of [-1,1] for {r}"
                );
                if m.support == 0 {
                    assert!(
                        m.certainty == 0.0 && m.quality == 0.0 && m.utility == 0.0,
                        "Evaluator: zero-support rule with non-zero measures: {r}"
                    );
                }
            }
        });
        assert_eq!(
            total,
            self.evaluated_rules(),
            "Evaluator: shard sum disagrees with evaluated_rules()"
        );
    }
}

/// Candidate distribution summary: `(Σ count, max count, argmax code)`,
/// excluding NULL master targets (a NULL can never be a fix).
/// `dist` is sorted by descending count with ties broken by code, so the
/// argmax is deterministic.
fn summarize(dist: &[(Code, u32)]) -> (u32, u32, Code) {
    let mut total = 0u32;
    let mut max_count = 0u32;
    let mut argmax = NULL_CODE;
    for &(code, count) in dist {
        if code == NULL_CODE {
            continue;
        }
        total += count;
        if count > max_count || (count == max_count && code < argmax) {
            max_count = count;
            argmax = code;
        }
    }
    (total, max_count, argmax)
}

/// The utility function `U(φ) = (log₁₀ S)² · (C + Q)` (§II-B4).
///
/// `log²` damps the marginal benefit of ever-larger support (Fig. 2b): a rule
/// with support 1 has utility 0 (one matching tuple proves nothing), and
/// beyond a few thousand tuples extra support barely moves the score.
pub fn utility(support: usize, certainty: f64, quality: f64) -> f64 {
    if support == 0 {
        return 0.0;
    }
    let log_s = (support as f64).log10();
    log_s * log_s * (certainty + quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use crate::rule::Condition;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    /// The paper's Figure 1 example, verbatim.
    pub(crate) fn figure1_task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "registration",
            vec![
                Attribute::categorical("Name"),
                Attribute::categorical("City"),
                Attribute::categorical("ZIP"),
                Attribute::categorical("AC"),
                Attribute::categorical("Phone"),
                Attribute::categorical("Sex"),
                Attribute::categorical("Case"),
                Attribute::categorical("Date"),
                Attribute::categorical("Overseas"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "covid_records",
            vec![
                Attribute::categorical("FN"),
                Attribute::categorical("LN"),
                Attribute::categorical("City"),
                Attribute::categorical("Zip"),
                Attribute::categorical("AC"),
                Attribute::categorical("Phone"),
                Attribute::categorical("Sex"),
                Attribute::categorical("Infection"),
                Attribute::categorical("Date"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![
            s("Kevin"),
            s("HZ"),
            Value::Null,
            Value::Null,
            s("325-8455"),
            s("Male"),
            Value::Null,
            s("2021-12"),
            s("No"),
        ])
        .unwrap();
        b.push_row(vec![
            s("Kyrie"),
            s("BJ"),
            s("10021"),
            s("010"),
            s("358-1553"),
            Value::Null,
            s("contact with imports"),
            s("2021-11"),
            s("No"),
        ])
        .unwrap();
        b.push_row(vec![
            s("Robin"),
            s("HZ"),
            s("31200"),
            Value::Null,
            s("325-7538"),
            s("Male"),
            s("Others"),
            s("2021-12"),
            s("Yes"),
        ])
        .unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![
            s("Kevin"),
            s("Lees"),
            s("SZ"),
            s("51800"),
            s("755"),
            s("625-0418"),
            s("Male"),
            s("contact with imports"),
            s("2021-10"),
        ])
        .unwrap();
        bm.push_row(vec![
            s("Kyrie"),
            s("Wang"),
            s("BJ"),
            s("10021"),
            s("010"),
            s("358-1563"),
            s("Female"),
            s("contact with imports"),
            s("2021-11"),
        ])
        .unwrap();
        bm.push_row(vec![
            s("Kevin"),
            s("Sun"),
            s("HZ"),
            s("31200"),
            s("571"),
            s("325-8465"),
            s("Male"),
            s("contact with patient"),
            s("2021-12"),
        ])
        .unwrap();
        bm.push_row(vec![
            s("Susan"),
            s("Lu"),
            s("HZ"),
            s("31200"),
            s("571"),
            s("325-8931"),
            s("Female"),
            s("contact with patient"),
            s("2021-12"),
        ])
        .unwrap();
        let master = bm.finish();
        // Name↔FN, City↔City, ZIP↔Zip, AC↔AC, Phone↔Phone, Sex↔Sex,
        // Case↔Infection, Date↔Date.
        let matching = SchemaMatch::from_pairs(
            9,
            &[
                (0, 0),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
        );
        // Target: (Case, Infection).
        Task::new(input, master, matching, (6, 7))
    }

    fn code(task: &Task, v: &str) -> Code {
        task.input().pool().code_of(&Value::str(v)).unwrap()
    }

    /// φ0 from Example 1: ((City,City),(Date,Date)) → (Case,Infection),
    /// t_p[City,Date,Overseas] = (HZ, 2021-12, No).
    fn phi0(task: &Task) -> EditingRule {
        EditingRule::new(
            vec![(1, 2), (7, 8)],
            (6, 7),
            vec![
                Condition::eq(1, code(task, "HZ")),
                Condition::eq(7, code(task, "2021-12")),
                Condition::eq(8, code(task, "No")),
            ],
        )
    }

    #[test]
    fn figure1_phi0_support_and_certainty() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        let m = ev.eval(&phi0(&task), None);
        // Only t1 matches the pattern (t2 is BJ/2021-11, t3 is Overseas=Yes);
        // t1's (HZ, 2021-12) hits s3 and s4, both "contact with patient".
        assert_eq!(m.cover, 1);
        assert_eq!(m.support, 1);
        assert!((m.certainty - 1.0).abs() < 1e-12);
        // t1's Case is NULL in the input (= approximate labels), so the
        // repair "contact with patient" is scored incorrect: Q = -1.
        assert!((m.quality + 1.0).abs() < 1e-12);
        // Support 1 ⇒ log10(1)² = 0 ⇒ utility 0.
        assert_eq!(m.utility, 0.0);
    }

    #[test]
    fn figure1_without_overseas_guard_covers_t3() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        let rule = EditingRule::new(
            vec![(1, 2), (7, 8)],
            (6, 7),
            vec![
                Condition::eq(1, code(&task, "HZ")),
                Condition::eq(7, code(&task, "2021-12")),
            ],
        );
        let m = ev.eval(&rule, None);
        // Without the Overseas=No guard, t3 is also covered (incorrectly
        // repairable — the master has no overseas cases).
        assert_eq!(m.cover, 2);
        assert_eq!(m.support, 2);
    }

    #[test]
    fn empty_lhs_root_rule_covers_everything() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        let root = EditingRule::root((6, 7));
        let m = ev.eval(&root, None);
        assert_eq!(m.cover, 3);
        assert_eq!(m.support, 3);
        // Cand for every tuple = all 4 master Infection values:
        // 2× "contact with imports", 2× "contact with patient" → f_c = 0.5.
        assert!((m.certainty - 0.5).abs() < 1e-12);
    }

    #[test]
    fn null_lhs_values_never_match() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        // LHS on (ZIP, Zip): t1 has NULL ZIP ⇒ cannot be matched.
        let rule = EditingRule::new(vec![(2, 3)], (6, 7), vec![]);
        let m = ev.eval(&rule, None);
        assert_eq!(m.cover, 3);
        assert_eq!(m.support, 2); // t2 (10021→s2), t3 (31200→s3,s4)
    }

    #[test]
    fn quality_rewards_correct_fixes() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        // ((Name,FN)) with no pattern: t2's Kyrie → s2 "contact with
        // imports" = t2's own Case ⇒ correct. t1 Kevin → s1,s3 (split 1/1),
        // argmax deterministic; t1's truth is NULL ⇒ incorrect. t3 Robin ∉
        // master ⇒ not supported.
        let rule = EditingRule::new(vec![(0, 0)], (6, 7), vec![]);
        let m = ev.eval(&rule, None);
        assert_eq!(m.support, 2);
        assert!((m.quality - 0.0).abs() < 1e-12); // (+1 − 1) / 2
    }

    #[test]
    fn utility_function_shape() {
        assert_eq!(utility(0, 1.0, 1.0), 0.0);
        assert_eq!(utility(1, 1.0, 1.0), 0.0);
        let u100 = utility(100, 1.0, 1.0);
        let u10000 = utility(10000, 1.0, 1.0);
        assert!(u100 > 0.0);
        assert!(u10000 > u100);
        // Marginal gain shrinks: 100→10000 only quadruples (log² scaling).
        assert!((u10000 / u100 - 4.0).abs() < 1e-9);
        // Linear in certainty+quality.
        assert!((utility(100, 0.5, 0.0) * 2.0 - utility(100, 1.0, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn cache_returns_identical_results() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        let rule = phi0(&task);
        let a = ev.eval(&rule, None);
        let b = ev.eval(&rule, None);
        assert_eq!(a, b);
        assert_eq!(ev.evaluated_rules(), 1);
    }

    #[test]
    fn subspace_search_matches_full_scan() {
        let task = figure1_task();
        let ev = Evaluator::new(&task);
        let parent = EditingRule::new(
            vec![(1, 2)],
            (6, 7),
            vec![Condition::eq(1, code(&task, "HZ"))],
        );
        let parent_cover = ev.cover(&parent, None);
        let child = parent.with_condition(Condition::eq(7, code(&task, "2021-12")));
        let full = ev.eval_on_cover(&child, &ev.cover(&child, None));
        let sub = ev.eval_on_cover(&child, &ev.cover(&child, Some(&parent_cover)));
        assert_eq!(full, sub);
    }
}
