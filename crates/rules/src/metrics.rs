//! Weighted precision / recall / F-measure over cell predictions (§V-A2).
//!
//! The evaluation universe is the union of (a) cells labelled dirty (they
//! need repair) and (b) cells that received a prediction. Per truth class
//! `l`:
//!
//! * `TP_l` — predicted `l` and the truth is `l`;
//! * `FP_l` — predicted `l` but the truth differs;
//! * `FN_l` — truth is `l`, cell is in the universe, and the prediction is
//!   absent or different.
//!
//! Class scores are averaged weighted by class frequency in the universe
//! (the paper's `|ŷ_l|` weights), matching scikit-learn's `average="weighted"`
//! convention the original implementation used.

use er_table::Code;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Weighted precision / recall / F-measure plus raw counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedPrf {
    /// Weighted precision.
    pub precision: f64,
    /// Weighted recall.
    pub recall: f64,
    /// Weighted F-measure.
    pub f1: f64,
    /// Number of cells in the evaluation universe.
    pub evaluated: usize,
    /// Number of predictions made (on universe cells).
    pub predicted: usize,
    /// Number of correct predictions.
    pub correct: usize,
}

impl WeightedPrf {
    /// All-zero metrics (empty universe).
    pub fn zero() -> Self {
        WeightedPrf {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            evaluated: 0,
            predicted: 0,
            correct: 0,
        }
    }
}

/// Evaluate predictions against ground truth.
///
/// * `truth[row]` — the true `Y` code of each input row;
/// * `dirty[row]` — whether the cell is erroneous/missing in the input and
///   therefore *needs* repair;
/// * `predictions[row]` — the predicted fix, if any.
///
/// All three slices must be row-aligned.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn evaluate_repairs(
    truth: &[Code],
    dirty: &[bool],
    predictions: &[Option<Code>],
) -> WeightedPrf {
    assert_eq!(truth.len(), dirty.len());
    assert_eq!(truth.len(), predictions.len());

    #[derive(Default, Clone, Copy)]
    struct ClassCounts {
        tp: usize,
        fp: usize,
        fn_: usize,
        weight: usize,
    }
    let mut classes: HashMap<Code, ClassCounts> = HashMap::new();
    let mut evaluated = 0usize;
    let mut predicted = 0usize;
    let mut correct = 0usize;

    for row in 0..truth.len() {
        let in_universe = dirty[row] || predictions[row].is_some();
        if !in_universe {
            continue;
        }
        evaluated += 1;
        let t = truth[row];
        classes.entry(t).or_default().weight += 1;
        match predictions[row] {
            Some(p) => {
                predicted += 1;
                if p == t {
                    correct += 1;
                    classes.entry(t).or_default().tp += 1;
                } else {
                    classes.entry(p).or_default().fp += 1;
                    classes.entry(t).or_default().fn_ += 1;
                }
            }
            None => {
                // Dirty cell nobody repaired: a miss for the truth class.
                classes.entry(t).or_default().fn_ += 1;
            }
        }
    }

    let total_weight: usize = classes.values().map(|c| c.weight).sum();
    if total_weight == 0 {
        return WeightedPrf::zero();
    }
    let mut precision = 0.0;
    let mut recall = 0.0;
    let mut f1 = 0.0;
    for counts in classes.values() {
        let w = counts.weight as f64 / total_weight as f64;
        let p = safe_div(counts.tp, counts.tp + counts.fp);
        let r = safe_div(counts.tp, counts.tp + counts.fn_);
        let f = if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        };
        precision += w * p;
        recall += w * r;
        f1 += w * f;
    }
    WeightedPrf {
        // Each metric is a convex combination of per-class values in [0, 1],
        // so mathematically it lies in [0, 1] — but the summation order over
        // the class map is not fixed, and an unlucky order can round a sum
        // of weights 1 to just above 1.0. Clamp away that float dust.
        precision: precision.clamp(0.0, 1.0),
        recall: recall.clamp(0.0, 1.0),
        f1: f1.clamp(0.0, 1.0),
        evaluated,
        predicted,
        correct,
    }
}

fn safe_div(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_never_exceed_one_with_inexact_class_weights() {
        // Three classes of weight 1/3 each: the weights are inexact in
        // binary, and before the output clamp an unlucky class-map
        // iteration order could sum a perfect score to just above 1.0
        // (the source of a flaky property-test failure). Perfect
        // predictions must report metrics ≤ 1 in every process.
        let truth: Vec<Code> = (0..21).map(|i| i % 3).collect();
        let dirty = vec![true; truth.len()];
        let preds: Vec<Option<Code>> = truth.iter().map(|&t| Some(t)).collect();
        let m = evaluate_repairs(&truth, &dirty, &preds);
        assert!(m.precision <= 1.0 && m.recall <= 1.0 && m.f1 <= 1.0);
        assert!((m.precision - 1.0).abs() < 1e-9);
        assert!((m.recall - 1.0).abs() < 1e-9);
        assert!((m.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_predictions() {
        let truth = vec![1, 2, 1];
        let dirty = vec![true, true, true];
        let preds = vec![Some(1), Some(2), Some(1)];
        let m = evaluate_repairs(&truth, &dirty, &preds);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.evaluated, 3);
        assert_eq!(m.correct, 3);
    }

    #[test]
    fn missed_dirty_cells_hurt_recall_not_precision() {
        let truth = vec![1, 1, 1, 1];
        let dirty = vec![true, true, true, true];
        let preds = vec![Some(1), Some(1), None, None];
        let m = evaluate_repairs(&truth, &dirty, &preds);
        assert_eq!(m.precision, 1.0);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrong_predictions_hurt_both() {
        let truth = vec![1, 1];
        let dirty = vec![true, true];
        let preds = vec![Some(1), Some(2)];
        let m = evaluate_repairs(&truth, &dirty, &preds);
        // Class 1 (weight 2): tp=1, fp=0, fn=1 → p=1, r=0.5.
        // Class 2 appears only as a wrong prediction (weight 0).
        assert!((m.precision - 1.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predictions_on_clean_cells_enter_universe() {
        let truth = vec![1, 2];
        let dirty = vec![false, false];
        let preds = vec![Some(1), Some(3)];
        let m = evaluate_repairs(&truth, &dirty, &preds);
        assert_eq!(m.evaluated, 2);
        assert_eq!(m.correct, 1);
        // Class 1: perfect. Class 2: fn=1 (pred 3). Weighted p = 0.5·1 + 0.5·0.
        assert!((m.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clean_unpredicted_cells_ignored() {
        let truth = vec![1, 1, 1];
        let dirty = vec![true, false, false];
        let preds = vec![Some(1), None, None];
        let m = evaluate_repairs(&truth, &dirty, &preds);
        assert_eq!(m.evaluated, 1);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn empty_universe_is_zero() {
        let m = evaluate_repairs(&[1, 2], &[false, false], &[None, None]);
        assert_eq!(m, WeightedPrf::zero());
    }

    #[test]
    fn weights_follow_class_frequency() {
        // Class 1 ×3 all correct; class 2 ×1 wrong → weighted precision
        // = 0.75·1 + 0.25·0 = 0.75.
        let truth = vec![1, 1, 1, 2];
        let dirty = vec![true; 4];
        let preds = vec![Some(1), Some(1), Some(1), Some(9)];
        let m = evaluate_repairs(&truth, &dirty, &preds);
        assert!((m.precision - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn misaligned_slices_panic() {
        evaluate_repairs(&[1], &[true, false], &[None]);
    }
}
