//! A minimal versioned rule store.
//!
//! Successive mining runs (the paper's RLMiner-ft loop, §V-D3) produce
//! successive rule sets; serving wants to promote them one at a time, keep
//! the lineage, and be able to roll back. The store keeps each promoted
//! version's portable JSON document verbatim, stamped with a content hash
//! and its parent's hash, so lineage integrity is checkable without parsing
//! a single rule: version `n` was derived from exactly the bytes version
//! `n-1` holds.
//!
//! The store is deliberately in-memory and append-only — it versions what a
//! *live service* has promoted, not a general artifact repository. Rollback
//! does not erase history: it commits nothing and simply moves the head to
//! an ancestor, so a later `lineage()` still shows every promotion.

use serde::Serialize;
use serde_json::Value;

/// One committed rule-set version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleVersion {
    /// Version id, assigned sequentially from 1.
    pub id: u64,
    /// The version this one was promoted over (`None` for the root).
    pub parent: Option<u64>,
    /// FNV-1a content hash of `json`.
    pub hash: u64,
    /// The parent version's content hash (`None` for the root). Lets a
    /// reader verify lineage integrity without loading the parent.
    pub parent_hash: Option<u64>,
    /// The portable rule-set document, verbatim.
    pub json: String,
    /// Free-form promotion note (e.g. the diff summary that gated it).
    pub note: String,
}

impl RuleVersion {
    /// The content hash in the fixed-width hex form used by the protocol.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

impl Serialize for RuleVersion {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::UInt(self.id)),
            (
                "parent".to_string(),
                match self.parent {
                    Some(p) => Value::UInt(p),
                    None => Value::Null,
                },
            ),
            ("hash".to_string(), Value::Str(self.hash_hex())),
            (
                "parent_hash".to_string(),
                match self.parent_hash {
                    Some(h) => Value::Str(format!("{h:016x}")),
                    None => Value::Null,
                },
            ),
            ("note".to_string(), Value::Str(self.note.clone())),
        ])
    }
}

/// FNV-1a over the raw document bytes. Stable, dependency-free, and good
/// enough for content identity of small JSON documents.
pub fn content_hash(json: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The append-only version store.
#[derive(Debug, Clone, Default)]
pub struct RuleStore {
    versions: Vec<RuleVersion>,
    head: Option<u64>,
}

impl RuleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commit a document as a child of the current head and move the head
    /// to it. Committing the exact bytes the head already holds is a no-op
    /// returning the head's id (promoting an unchanged set is not a new
    /// version).
    pub fn commit(&mut self, json: &str, note: &str) -> u64 {
        let hash = content_hash(json);
        if let Some(head) = self.head() {
            if head.hash == hash && head.json == json {
                return head.id;
            }
        }
        let parent = self.head;
        let parent_hash = self.head().map(|v| v.hash);
        let id = self.versions.len() as u64 + 1;
        self.versions.push(RuleVersion {
            id,
            parent,
            hash,
            parent_hash,
            json: json.to_string(),
            note: note.to_string(),
        });
        self.head = Some(id);
        id
    }

    /// The current head version.
    pub fn head(&self) -> Option<&RuleVersion> {
        self.head.and_then(|id| self.get(id))
    }

    /// The current head id.
    pub fn head_id(&self) -> Option<u64> {
        self.head
    }

    /// Look a version up by id.
    pub fn get(&self, id: u64) -> Option<&RuleVersion> {
        (id >= 1)
            .then(|| self.versions.get(id as usize - 1))
            .flatten()
    }

    /// Number of committed versions (rollbacks do not count).
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether nothing has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The head's ancestry, head first, ending at the root.
    pub fn lineage(&self) -> Vec<&RuleVersion> {
        let mut out = Vec::new();
        let mut cursor = self.head;
        while let Some(id) = cursor {
            let Some(v) = self.get(id) else { break };
            out.push(v);
            cursor = v.parent;
        }
        out
    }

    /// Move the head back to `id` (any committed version) and return its
    /// document. The history is kept; a later commit parents onto `id`.
    pub fn rollback(&mut self, id: u64) -> Option<&RuleVersion> {
        if self.get(id).is_some() {
            self.head = Some(id);
        } else {
            return None;
        }
        self.get(id)
    }

    /// All committed versions in commit order (protocol rendering).
    pub fn versions(&self) -> &[RuleVersion] {
        &self.versions
    }
}

impl Serialize for RuleStore {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "head".to_string(),
                match self.head {
                    Some(id) => Value::UInt(id),
                    None => Value::Null,
                },
            ),
            (
                "versions".to_string(),
                Value::Array(self.versions.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_chain_parent_hashes() {
        let mut store = RuleStore::new();
        assert!(store.is_empty());
        assert!(store.head().is_none());
        let v1 = store.commit("[1]", "initial");
        let v2 = store.commit("[2]", "narrowed");
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(store.len(), 2);
        let head = store.head().unwrap();
        assert_eq!(head.id, 2);
        assert_eq!(head.parent, Some(1));
        assert_eq!(head.parent_hash, Some(store.get(1).unwrap().hash));
        assert_eq!(head.hash, content_hash("[2]"));
        assert_ne!(head.hash, store.get(1).unwrap().hash);
    }

    #[test]
    fn identical_commit_is_a_no_op() {
        let mut store = RuleStore::new();
        let v1 = store.commit("[1]", "initial");
        let again = store.commit("[1]", "same bytes");
        assert_eq!(again, v1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn lineage_runs_head_to_root() {
        let mut store = RuleStore::new();
        store.commit("[1]", "a");
        store.commit("[2]", "b");
        store.commit("[3]", "c");
        let ids: Vec<u64> = store.lineage().iter().map(|v| v.id).collect();
        assert_eq!(ids, vec![3, 2, 1]);
    }

    #[test]
    fn rollback_moves_head_and_keeps_history() {
        let mut store = RuleStore::new();
        store.commit("[1]", "a");
        store.commit("[2]", "b");
        let back = store.rollback(1).expect("version 1 exists");
        assert_eq!(back.json, "[1]");
        assert_eq!(store.head_id(), Some(1));
        assert_eq!(store.len(), 2, "rollback erases nothing");
        assert!(store.rollback(9).is_none());
        // A commit after rollback parents onto the rolled-back-to version.
        let v3 = store.commit("[3]", "fork");
        assert_eq!(v3, 3);
        let head = store.head().unwrap();
        assert_eq!(head.parent, Some(1));
        let ids: Vec<u64> = store.lineage().iter().map(|v| v.id).collect();
        assert_eq!(ids, vec![3, 1]);
    }

    #[test]
    fn serializes_for_the_protocol() {
        let mut store = RuleStore::new();
        store.commit("[1]", "initial");
        let json = serde_json::to_string(&store).unwrap();
        assert!(json.contains("\"head\":1"), "{json}");
        assert!(json.contains("\"parent_hash\":null"), "{json}");
        assert!(json.contains("\"note\":\"initial\""), "{json}");
        assert_eq!(store.head().unwrap().hash_hex().len(), 16);
    }
}
