#![forbid(unsafe_code)]
//! # er-rules — editing rules, their measures, and the repair engine
//!
//! This crate is the domain model of the paper *"Discovering Editing Rules by
//! Deep Reinforcement Learning"* (ICDE 2023):
//!
//! * [`EditingRule`] — the rule `((X, X_m) → (Y, Y_m), t_p)` of Definition 1,
//!   with canonicalized LHS attribute pairs and pattern conditions (equality
//!   on categorical attributes, ranges on continuous ones).
//! * [`matching`] — the schema match `M` between the input schema `R` and the
//!   master schema `R_m` (§II-C), plus a simple name-based matcher.
//! * [`Task`] — a mining task: input relation `D`, master relation `D_m`,
//!   match `M`, target pair `(Y, Y_m)` and optional ground-truth labels `D_l`.
//! * [`Evaluator`] — Support `S(φ)`, Certainty `C(φ)`, Quality `Q(φ)` and
//!   Utility `U(φ)` of §II-B (Eqs. 1–5), computed through shared
//!   master-side group indexes and input-side pattern covers.
//! * [`domination`] — pattern/rule domination (Defs. 2–3) and non-redundant
//!   top-K selection (Def. 4, Problem 1).
//! * [`repair`] — applying a rule set: certainty-score voting across rules
//!   (§V-B2) and producing cell-level predictions.
//! * [`batch`] — the long-lived serving entry: a [`BatchRepairer`] warms the
//!   master-side indexes once and repairs streamed input batches with the
//!   exact voting semantics of [`repair`].
//! * [`store`] — a minimal versioned rule store: append-only, hash-chained
//!   lineage of portable rule-set documents with history-preserving
//!   rollback, backing `er-serve`'s gated promotions.
//! * [`metrics`] — weighted precision / recall / F-measure (§V-A2).

pub mod analysis;
pub mod batch;
pub mod chase;
pub mod domination;
pub mod io;
pub mod matching;
pub mod measures;
pub mod metrics;
pub mod repair;
pub mod rule;
pub mod store;
pub mod task;

pub use analysis::{coverage, overlap, CoverageReport, RuleCoverage};
pub use batch::{BatchError, BatchRepairer, VoteStats};
pub use chase::{chase, ChaseConfig, ChaseResult, Fix, TargetRules};
pub use domination::{dominates, pattern_dominates, select_top_k};
pub use io::{from_portable, rules_from_json, rules_to_json, to_portable, PortableRule};
pub use matching::SchemaMatch;
pub use measures::{Evaluator, Measures};
pub use metrics::{evaluate_repairs, WeightedPrf};
pub use repair::{apply_rules, apply_rules_with, changed_rows, RepairReport};
pub use rule::{Condition, EditingRule, Pred};
pub use store::{content_hash, RuleStore, RuleVersion};
pub use task::{ConditionSpace, ConditionSpaceConfig, Task};
