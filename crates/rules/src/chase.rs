//! Multi-target certain-fix chase.
//!
//! Editing rules were introduced (Fan et al., VLDB J. 2012) to produce
//! *certain fixes*: repairs guaranteed by master data. A single rule set
//! targets one attribute `Y`, but real cleaning runs rule sets for several
//! attributes, and fixes interact — filling `ZIP` can unlock a
//! `ZIP → AC` rule that was previously blocked by the NULL. This module
//! implements the round-based chase: apply every target's rules, commit the
//! confident fixes, and repeat until a fixpoint (or the round limit).
//!
//! A fix is committed when the winning candidate's accumulated certainty
//! score is at least `min_score` and either the current cell is NULL (a
//! fill) or overwriting is enabled (a correction). Committed cells are
//! frozen: later rounds never revise them, which keeps the chase
//! terminating and mirrors the "certain fix" contract.

use crate::matching::SchemaMatch;
use crate::measures::Evaluator;
use crate::repair::apply_rules_with;
use crate::rule::EditingRule;
use crate::task::Task;
use er_table::{AttrId, Code, Relation, RowId, NULL_CODE};

/// Rules discovered for one target attribute pair.
#[derive(Debug, Clone)]
pub struct TargetRules {
    /// The `(Y, Y_m)` pair the rules repair.
    pub target: (AttrId, AttrId),
    /// The rules (all must have this target).
    pub rules: Vec<EditingRule>,
}

/// Chase configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Maximum rounds (a fixpoint usually arrives in 2–3).
    pub max_rounds: usize,
    /// Minimum accumulated certainty score to commit a fix.
    pub min_score: f64,
    /// Whether non-NULL cells may be overwritten (corrections) or only
    /// NULL cells filled.
    pub overwrite: bool,
    /// Worker threads for the per-round repair passes (`0` = auto:
    /// `ER_THREADS` or sequential). Every rule's votes are collected in
    /// parallel and its cover scan is chunked across input tuples; the
    /// committed fixes are identical at any thread count.
    pub threads: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 5,
            min_score: 0.9,
            overwrite: true,
            threads: 0,
        }
    }
}

impl ChaseConfig {
    /// A configuration with no round cap. Only sound for rule sets whose
    /// termination has been certified (weak acyclicity of the attribute
    /// dependency graph — see `er-analyze`); the chase still terminates
    /// structurally because committed cells are frozen, but without a
    /// certificate the cap is the honest guard.
    pub fn uncapped() -> Self {
        ChaseConfig {
            max_rounds: usize::MAX,
            ..Default::default()
        }
    }
}

/// One committed fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Fix {
    /// Input row.
    pub row: RowId,
    /// Repaired attribute (`Y` of some target).
    pub attr: AttrId,
    /// Chase round (1-based) the fix was committed in.
    pub round: usize,
    /// The cell's previous code.
    pub from: Code,
    /// The committed code.
    pub to: Code,
    /// The winning candidate's accumulated certainty score.
    pub score: f64,
}

/// Chase outcome.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The repaired input relation.
    pub repaired: Relation,
    /// Rounds executed (including the final fixpoint round).
    pub rounds: usize,
    /// Every committed fix, in commit order.
    pub fixes: Vec<Fix>,
    /// Rows where rules disagreed (more than one candidate received votes)
    /// at the moment their fix was committed.
    pub contested: usize,
    /// Whether the chase reached a fixpoint (a round committed no fix).
    /// `false` means [`ChaseConfig::max_rounds`] cut it off while fixes were
    /// still landing — the result is sound but possibly incomplete, and the
    /// ER008 runtime diagnostic (`er_analyze::cap_finding`) reports it.
    pub converged: bool,
}

/// Run the chase.
///
/// # Panics
/// Panics if a rule's target differs from its [`TargetRules::target`].
pub fn chase(
    input: &Relation,
    master: &Relation,
    matching: &SchemaMatch,
    targets: &[TargetRules],
    config: ChaseConfig,
) -> ChaseResult {
    for t in targets {
        for r in &t.rules {
            assert_eq!(r.target(), t.target, "rule target mismatch in TargetRules");
        }
    }
    let mut current = input.clone();
    let mut fixes: Vec<Fix> = Vec::new();
    let mut contested = 0usize;
    // (row, attr) cells already committed — frozen for later rounds.
    let mut frozen: std::collections::HashSet<(RowId, AttrId)> = Default::default();
    let mut rounds = 0usize;

    // Chase audit: per-target master Y_m domains (certain fixes may only
    // copy these), plus the frozen count after the previous round — every
    // continuing round must strictly shrink the set of unfixed dirty cells,
    // i.e. strictly grow the frozen set, or the chase could loop.
    #[cfg(feature = "debug-invariants")]
    let master_domains: std::collections::HashMap<AttrId, std::collections::HashSet<Code>> =
        targets
            .iter()
            .map(|t| {
                let dom = master
                    .column(t.target.1)
                    .iter()
                    .copied()
                    .filter(|&c| c != NULL_CODE)
                    .collect();
                (t.target.0, dom)
            })
            .collect();
    #[cfg(feature = "debug-invariants")]
    let mut prev_frozen = 0usize;

    let mut converged = false;
    while rounds < config.max_rounds {
        rounds += 1;
        let mut changed = false;
        for t in targets {
            let (y, _) = t.target;
            let task = Task::new(current.clone(), master.clone(), matching.clone(), t.target);
            let ev = Evaluator::with_threads(&task, config.threads);
            let report = apply_rules_with(&ev, &t.rules);
            for row in 0..current.num_rows() {
                let Some(code) = report.predictions[row] else {
                    continue;
                };
                if frozen.contains(&(row, y)) || report.scores[row] < config.min_score {
                    continue;
                }
                let old = current.code(row, y);
                if old == code {
                    continue;
                }
                if old != NULL_CODE && !config.overwrite {
                    continue;
                }
                current.set_code(row, y, code);
                frozen.insert((row, y));
                if report.candidates[row] > 1 {
                    contested += 1;
                }
                fixes.push(Fix {
                    row,
                    attr: y,
                    round: rounds,
                    from: old,
                    to: code,
                    score: report.scores[row],
                });
                changed = true;
            }
        }
        #[cfg(feature = "debug-invariants")]
        if changed {
            assert!(
                frozen.len() > prev_frozen,
                "chase: round {rounds} reported progress without shrinking the dirty-cell count"
            );
            prev_frozen = frozen.len();
            for f in &fixes {
                assert!(
                    master_domains
                        .get(&f.attr)
                        .is_some_and(|dom| dom.contains(&f.to)),
                    "chase: fix {f:?} writes a value absent from the master Y_m column"
                );
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    #[cfg(feature = "debug-invariants")]
    if !converged {
        eprintln!(
            "chase: round cap {} hit without reaching a fixpoint ({} fixes committed); \
             certify termination with er-analyze or raise max_rounds",
            config.max_rounds,
            fixes.len()
        );
    }
    ChaseResult {
        repaired: current,
        rounds,
        fixes,
        contested,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    /// Input (City, ZIP, AC): ZIP is missing for row 0 but City → ZIP in
    /// master; AC needs ZIP (ZIP → AC), so fixing AC requires the chase to
    /// first fill ZIP.
    fn setup() -> (Relation, Relation, SchemaMatch) {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "t",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("ZIP"),
                Attribute::categorical("AC"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(Arc::clone(&schema), Arc::clone(&pool));
        b.push_row(vec![s("HZ"), Value::Null, Value::Null]).unwrap();
        b.push_row(vec![s("BJ"), s("10021"), Value::Null]).unwrap();
        b.push_row(vec![s("SZ"), s("51800"), s("755")]).unwrap();
        let input = b.finish();
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("ZIP"),
                Attribute::categorical("AC"),
            ],
        ));
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("31200"), s("571")]).unwrap();
        bm.push_row(vec![s("BJ"), s("10021"), s("010")]).unwrap();
        bm.push_row(vec![s("SZ"), s("51800"), s("755")]).unwrap();
        let master = bm.finish();
        let matching = SchemaMatch::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]);
        (input, master, matching)
    }

    fn targets(input: &Relation) -> Vec<TargetRules> {
        let _ = input;
        vec![
            // City → ZIP.
            TargetRules {
                target: (1, 1),
                rules: vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])],
            },
            // ZIP → AC.
            TargetRules {
                target: (2, 2),
                rules: vec![EditingRule::new(vec![(1, 1)], (2, 2), vec![])],
            },
        ]
    }

    #[test]
    fn chase_cascades_fixes_across_targets() {
        let (input, master, matching) = setup();
        let result = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::default(),
        );
        let pool = input.pool();
        let code = |v: &str| pool.code_of(&Value::str(v)).unwrap();
        // Row 0: ZIP filled from City, then AC filled from the new ZIP.
        assert_eq!(result.repaired.code(0, 1), code("31200"));
        assert_eq!(result.repaired.code(0, 2), code("571"));
        // Row 1: AC filled directly.
        assert_eq!(result.repaired.code(1, 2), code("010"));
        // Row 2 untouched.
        assert_eq!(result.repaired.code(2, 2), code("755"));
        // The AC fix for row 0 must be a later-or-equal round than its ZIP
        // fix (per-round target order already allows same-round cascade).
        let zip_fix = result
            .fixes
            .iter()
            .find(|f| f.row == 0 && f.attr == 1)
            .unwrap();
        let ac_fix = result
            .fixes
            .iter()
            .find(|f| f.row == 0 && f.attr == 2)
            .unwrap();
        assert!(ac_fix.round >= zip_fix.round);
        assert_eq!(result.fixes.len(), 3);
    }

    #[test]
    fn chase_reaches_fixpoint() {
        let (input, master, matching) = setup();
        let result = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::default(),
        );
        assert!(result.rounds <= 3, "rounds {}", result.rounds);
        // Re-running on the repaired relation changes nothing.
        let again = chase(
            &result.repaired,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::default(),
        );
        assert!(again.fixes.is_empty());
    }

    #[test]
    fn no_overwrite_mode_only_fills_nulls() {
        let (mut input, master, matching) = setup();
        // Plant a wrong (non-NULL) AC for row 2.
        input.set(2, 2, Value::str("999")).unwrap();
        let config = ChaseConfig {
            overwrite: false,
            ..Default::default()
        };
        let result = chase(&input, &master, &matching, &targets(&input), config);
        let pool = input.pool();
        assert_eq!(
            result.repaired.code(2, 2),
            pool.code_of(&Value::str("999")).unwrap()
        );
        // With overwrite on, the cell is corrected.
        let corrected = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::default(),
        );
        assert_eq!(
            corrected.repaired.code(2, 2),
            pool.code_of(&Value::str("755")).unwrap()
        );
    }

    #[test]
    fn min_score_blocks_uncertain_fixes() {
        let (input, master, matching) = setup();
        let config = ChaseConfig {
            min_score: 10.0,
            ..Default::default()
        };
        let result = chase(&input, &master, &matching, &targets(&input), config);
        assert!(result.fixes.is_empty());
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn fixpoint_runs_report_convergence() {
        let (input, master, matching) = setup();
        let result = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::default(),
        );
        assert!(result.converged);
        // An uncapped run on a certified-terminating set converges too.
        let uncapped = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::uncapped(),
        );
        assert!(uncapped.converged);
        assert_eq!(uncapped.fixes.len(), result.fixes.len());
    }

    #[test]
    fn round_cap_hit_is_recorded() {
        let (input, master, matching) = setup();
        // One round is not enough to prove a fixpoint here: round 1 commits
        // the cascade's first wave, so the chase is cut off mid-flight.
        let config = ChaseConfig {
            max_rounds: 1,
            ..Default::default()
        };
        let result = chase(&input, &master, &matching, &targets(&input), config);
        assert!(!result.converged);
        assert_eq!(result.rounds, 1);
        // A zero-round "chase" trivially proves nothing.
        let none = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig {
                max_rounds: 0,
                ..Default::default()
            },
        );
        assert!(!none.converged);
        assert!(none.fixes.is_empty());
    }

    #[test]
    fn committed_cells_are_frozen() {
        let (input, master, matching) = setup();
        let result = chase(
            &input,
            &master,
            &matching,
            &targets(&input),
            ChaseConfig::default(),
        );
        // No cell is fixed twice.
        let mut seen = std::collections::HashSet::new();
        for f in &result.fixes {
            assert!(seen.insert((f.row, f.attr)), "cell fixed twice: {f:?}");
        }
    }
}
