//! Mining tasks and the shared condition space.
//!
//! A [`Task`] bundles everything Problem 1 takes as input: the input relation
//! `D`, the master relation `D_m`, the schema match `M`, the target pair
//! `(Y, Y_m)`, and the (optional) labelled truths `D_l`. Both miners and the
//! repair engine operate on a `Task`.
//!
//! [`ConditionSpace`] materializes the candidate pattern conditions for every
//! input attribute — the `(A, v)` actions of the paper's MDP — applying the
//! two domain-taming tricks of §IV-A: continuous attributes are split into
//! `N_split` ranges, and over-large categorical domains are reduced to `K`
//! common-prefix groups. EnuMiner and RLMiner share this space, so their
//! search universes are identical and accuracy comparisons are apples to
//! apples.

use crate::matching::SchemaMatch;
use crate::rule::{Condition, Pred};
use er_table::{AttrId, Code, Relation, RowId};

/// A single editing-rule mining task (the input of Problem 1).
#[derive(Debug, Clone)]
pub struct Task {
    input: Relation,
    master: Relation,
    matching: SchemaMatch,
    target: (AttrId, AttrId),
    /// Ground-truth code of `Y` per input row (the labelled instance `D_l`,
    /// row-aligned with `D`).
    labels: Vec<Code>,
    /// Cached numeric views of the input's continuous columns
    /// (`NaN` = NULL / non-numeric).
    numeric: Vec<Option<Vec<f64>>>,
}

impl Task {
    /// Build a task. Per §II-B3, when no labelled data is available the input
    /// data itself is taken as the (approximate) labelled instance — this
    /// constructor does exactly that; use [`Task::with_labels`] to override.
    pub fn new(
        input: Relation,
        master: Relation,
        matching: SchemaMatch,
        target: (AttrId, AttrId),
    ) -> Self {
        let y = target.0;
        let labels = input.column(y).to_vec();
        Self::with_labels(input, master, matching, target, labels)
    }

    /// Build a task with explicit ground-truth labels for `Y` (one code per
    /// input row).
    ///
    /// # Panics
    /// Panics if `labels.len() != input.num_rows()`, if the input and master
    /// relations do not share a pool, or if `Y`/`Y_m` are out of range.
    pub fn with_labels(
        input: Relation,
        master: Relation,
        matching: SchemaMatch,
        target: (AttrId, AttrId),
        labels: Vec<Code>,
    ) -> Self {
        assert_eq!(
            labels.len(),
            input.num_rows(),
            "labels must align with input rows"
        );
        assert!(
            std::sync::Arc::ptr_eq(input.pool(), master.pool()),
            "input and master must share a value pool"
        );
        assert!(target.0 < input.num_attrs(), "Y out of range");
        assert!(target.1 < master.num_attrs(), "Y_m out of range");
        assert_eq!(
            matching.input_arity(),
            input.num_attrs(),
            "match arity mismatch"
        );
        let numeric = (0..input.num_attrs())
            .map(|a| {
                if input.schema().attr(a).is_continuous() {
                    Some(
                        (0..input.num_rows())
                            .map(|r| input.value(r, a).as_f64().unwrap_or(f64::NAN))
                            .collect(),
                    )
                } else {
                    None
                }
            })
            .collect();
        Task {
            input,
            master,
            matching,
            target,
            labels,
            numeric,
        }
    }

    /// The input relation `D`.
    pub fn input(&self) -> &Relation {
        &self.input
    }

    /// The master relation `D_m`.
    pub fn master(&self) -> &Relation {
        &self.master
    }

    /// The schema match `M`.
    pub fn matching(&self) -> &SchemaMatch {
        &self.matching
    }

    /// The target pair `(Y, Y_m)`.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.target
    }

    /// Ground-truth code of `Y` for `row`.
    pub fn label(&self, row: RowId) -> Code {
        self.labels[row]
    }

    /// All ground-truth codes, row-aligned with the input.
    pub fn labels(&self) -> &[Code] {
        &self.labels
    }

    /// Numeric value of the input cell at (`attr`, `row`) if the attribute is
    /// continuous and the cell is numeric.
    #[inline]
    pub fn numeric(&self, attr: AttrId, row: RowId) -> Option<f64> {
        match &self.numeric[attr] {
            Some(col) => {
                let v = col[row];
                if v.is_nan() {
                    None
                } else {
                    Some(v)
                }
            }
            None => None,
        }
    }

    /// Candidate LHS attribute pairs `{(A, A_m) | A ∈ R \ {Y}, A_m ∈ M(A)}`
    /// in deterministic order. (The per-rule exclusion `A ∉ X` is applied by
    /// the miners.)
    pub fn candidate_lhs_pairs(&self) -> Vec<(AttrId, AttrId)> {
        let y = self.target.0;
        self.matching.pairs().filter(|&(a, _)| a != y).collect()
    }
}

/// Configuration for [`ConditionSpace`].
#[derive(Debug, Clone, Copy)]
pub struct ConditionSpaceConfig {
    /// Number of ranges continuous attributes are split into (`N_split`).
    pub n_split: usize,
    /// Categorical domains larger than this are prefix-reduced.
    pub max_domain: usize,
    /// Target number of prefix groups (`K ≪ |dom(x_i)|`).
    pub reduce_to: usize,
    /// Skip categorical attributes whose active domain exceeds this fraction
    /// of the rows — near-unique identifier columns (store numbers, names)
    /// where every equality condition has support ≈ 1 and even prefix groups
    /// carry no semantics. Set to `1.0` to disable.
    pub identifier_fraction: f64,
}

impl Default for ConditionSpaceConfig {
    fn default() -> Self {
        ConditionSpaceConfig {
            n_split: 5,
            max_domain: 64,
            reduce_to: 16,
            identifier_fraction: 0.5,
        }
    }
}

/// The materialized pattern-condition space: for every input attribute
/// `A ∈ R \ {Y}`, the candidate conditions `(A, v)` a miner may add to `t_p`.
#[derive(Debug, Clone)]
pub struct ConditionSpace {
    /// `conditions[a]` = candidate conditions on input attribute `a`
    /// (empty for `Y`).
    conditions: Vec<Vec<Condition>>,
}

impl ConditionSpace {
    /// Build the condition space for `task` under `config`.
    ///
    /// * Continuous attributes → `N_split` equal-width ranges over the
    ///   observed `[min, max]` (last bucket open-ended).
    /// * Categorical attributes with `|dom(A)| ≤ max_domain` → one `Eq`
    ///   condition per active-domain value.
    /// * Larger categorical domains → `reduce_to` common-prefix groups, each
    ///   a `OneOf` condition.
    pub fn build(task: &Task, config: ConditionSpaceConfig) -> Self {
        let input = task.input();
        let y = task.target().0;
        let mut conditions = Vec::with_capacity(input.num_attrs());
        for a in 0..input.num_attrs() {
            if a == y {
                conditions.push(Vec::new());
                continue;
            }
            let attr = input.schema().attr(a);
            let conds = if attr.is_continuous() {
                continuous_conditions(input, a, config.n_split)
            } else {
                categorical_conditions(input, a, config)
            };
            conditions.push(conds);
        }
        ConditionSpace { conditions }
    }

    /// Candidate conditions on attribute `a`.
    pub fn of(&self, a: AttrId) -> &[Condition] {
        &self.conditions[a]
    }

    /// Number of attributes covered (input arity).
    pub fn num_attrs(&self) -> usize {
        self.conditions.len()
    }

    /// Total number of candidate conditions (the `dim(s_p)` of Eq. 8).
    pub fn total_conditions(&self) -> usize {
        self.conditions.iter().map(Vec::len).sum()
    }

    /// Iterate `(attr, condition index within attr, condition)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, usize, &Condition)> {
        self.conditions
            .iter()
            .enumerate()
            .flat_map(|(a, cs)| cs.iter().enumerate().map(move |(i, c)| (a, i, c)))
    }
}

fn continuous_conditions(input: &Relation, attr: AttrId, n_split: usize) -> Vec<Condition> {
    let Some((lo, hi)) = input.numeric_bounds(attr) else {
        return Vec::new();
    };
    let n_split = n_split.max(1);
    if lo == hi {
        return vec![Condition::range(attr, lo, f64::INFINITY)];
    }
    let width = (hi - lo) / n_split as f64;
    (0..n_split)
        .map(|i| {
            let b_lo = lo + width * i as f64;
            let b_hi = if i + 1 == n_split {
                f64::INFINITY
            } else {
                lo + width * (i + 1) as f64
            };
            Condition::range(attr, b_lo, b_hi)
        })
        .collect()
}

fn categorical_conditions(
    input: &Relation,
    attr: AttrId,
    config: ConditionSpaceConfig,
) -> Vec<Condition> {
    let domain = input.distinct_codes(attr);
    let rows = input.num_rows().max(1);
    if domain.len() as f64 > config.identifier_fraction * rows as f64 {
        return Vec::new(); // near-unique identifier column
    }
    if domain.len() <= config.max_domain {
        return domain.into_iter().map(|c| Condition::eq(attr, c)).collect();
    }
    prefix_groups(input, attr, &domain, config.reduce_to.max(1))
        .into_iter()
        .map(|group| Condition {
            attr,
            pred: Pred::one_of(group),
        })
        .collect()
}

/// Reduce a large domain to at most `k` groups of values.
///
/// The paper reduces large domains by shared *prefix* (§IV-A). We generalize
/// slightly: values are sorted lexicographically (so values sharing a prefix
/// are adjacent) and cut into `k` contiguous buckets of roughly equal total
/// row frequency. On prefix-structured domains (postcodes, phone numbers)
/// this recovers prefix groups; on domains with one long shared prefix it
/// still produces `k` selective, frequency-balanced conditions instead of a
/// single vacuous group.
fn prefix_groups(input: &Relation, attr: AttrId, domain: &[Code], k: usize) -> Vec<Vec<Code>> {
    let pool = input.pool();
    // Row frequency per domain code.
    let mut freq: std::collections::HashMap<Code, usize> = Default::default();
    for &c in input.column(attr) {
        if c != er_table::NULL_CODE {
            *freq.entry(c).or_insert(0) += 1;
        }
    }
    let mut rendered: Vec<(String, Code)> = domain
        .iter()
        .map(|&c| (pool.value(c).render().into_owned(), c))
        .collect();
    rendered.sort();
    let total: usize = rendered
        .iter()
        .map(|(_, c)| freq.get(c).copied().unwrap_or(0))
        .sum();
    let per_bucket = (total as f64 / k as f64).max(1.0);

    let mut groups: Vec<Vec<Code>> = Vec::with_capacity(k);
    let mut bucket: Vec<Code> = Vec::new();
    let mut mass = 0usize;
    for (i, (_, code)) in rendered.iter().enumerate() {
        bucket.push(*code);
        mass += freq.get(code).copied().unwrap_or(0);
        let remaining_values = rendered.len() - i - 1;
        let remaining_buckets = k - groups.len();
        // Close the bucket when it holds its share, but never leave more
        // buckets to fill than values to fill them with.
        if (mass as f64 >= per_bucket && groups.len() + 1 < k)
            || remaining_values + 1 == remaining_buckets
        {
            groups.push(std::mem::take(&mut bucket));
            mass = 0;
        }
    }
    if !bucket.is_empty() {
        groups.push(bucket);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    fn small_task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::continuous("Age"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![Value::str("HZ"), Value::int(20), Value::str("c1")])
            .unwrap();
        b.push_row(vec![Value::str("BJ"), Value::int(40), Value::str("c2")])
            .unwrap();
        b.push_row(vec![Value::str("HZ"), Value::Null, Value::str("c1")])
            .unwrap();
        b.push_row(vec![Value::str("BJ"), Value::int(25), Value::str("c2")])
            .unwrap();
        b.push_row(vec![Value::str("HZ"), Value::int(33), Value::str("c1")])
            .unwrap();
        b.push_row(vec![Value::str("BJ"), Value::int(21), Value::str("c2")])
            .unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![Value::str("HZ"), Value::str("c1")])
            .unwrap();
        let master = bm.finish();
        let matching = SchemaMatch::from_pairs(3, &[(0, 0), (2, 1)]);
        Task::new(input, master, matching, (2, 1))
    }

    #[test]
    fn labels_default_to_input() {
        let t = small_task();
        assert_eq!(t.label(0), t.input().code(0, 2));
        assert_eq!(t.labels().len(), 6);
    }

    #[test]
    fn numeric_cache() {
        let t = small_task();
        assert_eq!(t.numeric(1, 0), Some(20.0));
        assert_eq!(t.numeric(1, 2), None); // NULL
        assert_eq!(t.numeric(0, 0), None); // categorical
    }

    #[test]
    fn candidate_lhs_pairs_exclude_y() {
        let t = small_task();
        assert_eq!(t.candidate_lhs_pairs(), vec![(0, 0)]);
    }

    #[test]
    fn condition_space_shapes() {
        let t = small_task();
        let cs = ConditionSpace::build(
            &t,
            ConditionSpaceConfig {
                n_split: 4,
                ..Default::default()
            },
        );
        // City: 2 Eq conditions; Age: 4 ranges; Case (=Y): none.
        assert_eq!(cs.of(0).len(), 2);
        assert_eq!(cs.of(1).len(), 4);
        assert_eq!(cs.of(2).len(), 0);
        assert_eq!(cs.total_conditions(), 6);
    }

    #[test]
    fn continuous_buckets_cover_domain() {
        let t = small_task();
        let cs = ConditionSpace::build(
            &t,
            ConditionSpaceConfig {
                n_split: 4,
                ..Default::default()
            },
        );
        // Age 20 and 40 must each match exactly one bucket.
        for (row, expected) in [(0usize, 20.0), (1, 40.0)] {
            let hits = cs
                .of(1)
                .iter()
                .filter(|c| c.pred.matches(t.input().code(row, 1), Some(expected)))
                .count();
            assert_eq!(hits, 1, "value {expected} should match exactly one bucket");
        }
    }

    #[test]
    fn prefix_reduction_kicks_in_for_large_domains() {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![Attribute::categorical("Code"), Attribute::categorical("Y")],
        ));
        let m_schema = Arc::new(Schema::new("m", vec![Attribute::categorical("Y")]));
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        for i in 0..300 {
            b.push_row(vec![
                Value::str(format!("P{:03}", i % 100)),
                Value::str("y"),
            ])
            .unwrap();
        }
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![Value::str("y")]).unwrap();
        let master = bm.finish();
        let task = Task::new(input, master, SchemaMatch::from_pairs(2, &[(1, 0)]), (1, 0));
        let cfg = ConditionSpaceConfig {
            n_split: 5,
            max_domain: 16,
            reduce_to: 12,
            ..Default::default()
        };
        let cs = ConditionSpace::build(&task, cfg);
        let conds = cs.of(0);
        assert!(conds.len() <= 12, "got {} conditions", conds.len());
        assert!(!conds.is_empty());
        // Every domain value must be matched by exactly one group.
        for code in task.input().distinct_codes(0) {
            let hits = conds.iter().filter(|c| c.pred.matches(code, None)).count();
            assert_eq!(hits, 1);
        }
    }

    #[test]
    fn identifier_columns_get_no_conditions() {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![Attribute::categorical("Id"), Attribute::categorical("Y")],
        ));
        let m_schema = Arc::new(Schema::new("m", vec![Attribute::categorical("Y")]));
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        for i in 0..100 {
            b.push_row(vec![Value::str(format!("ID{i}")), Value::str("y")])
                .unwrap();
        }
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![Value::str("y")]).unwrap();
        let master = bm.finish();
        let task = Task::new(input, master, SchemaMatch::from_pairs(2, &[(1, 0)]), (1, 0));
        let cs = ConditionSpace::build(&task, ConditionSpaceConfig::default());
        assert!(cs.of(0).is_empty(), "near-unique column must be skipped");
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn misaligned_labels_rejected() {
        let t = small_task();
        let input = t.input().clone();
        let master = t.master().clone();
        Task::with_labels(input, master, t.matching().clone(), (2, 1), vec![0]);
    }
}
