//! Schema matching `M` between the input schema `R` and master schema `R_m`.
//!
//! The paper assumes the match is given (§II-C): `M(A)` is the set of master
//! attributes matched to input attribute `A` (possibly empty). This module
//! provides the match container plus a name-based matcher convenient for the
//! synthetic datasets, whose matched attributes share (normalized) names.

use er_table::{AttrId, Schema};
use serde::{Deserialize, Serialize};

/// The schema match `M = {A : {A_m}}` (§II-C), stored per input attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaMatch {
    /// `matched[a]` = master attributes matched to input attribute `a`.
    matched: Vec<Vec<AttrId>>,
}

impl SchemaMatch {
    /// Build from explicit per-input-attribute lists. `matched.len()` must be
    /// the input schema's arity.
    pub fn new(matched: Vec<Vec<AttrId>>) -> Self {
        SchemaMatch { matched }
    }

    /// Build from `(input, master)` pairs, given the input arity.
    pub fn from_pairs(input_arity: usize, pairs: &[(AttrId, AttrId)]) -> Self {
        let mut matched = vec![Vec::new(); input_arity];
        for &(a, am) in pairs {
            if !matched[a].contains(&am) {
                matched[a].push(am);
            }
        }
        for v in &mut matched {
            v.sort_unstable();
        }
        SchemaMatch { matched }
    }

    /// Match attributes by case-insensitive, separator-insensitive name
    /// equality (`"area_code"` matches `"AreaCode"`).
    pub fn by_name(input: &Schema, master: &Schema) -> Self {
        let norm = |s: &str| -> String {
            s.chars()
                .filter(|c| c.is_alphanumeric())
                .flat_map(|c| c.to_lowercase())
                .collect()
        };
        let mut matched = vec![Vec::new(); input.arity()];
        for (a, attr) in input.iter() {
            let na = norm(&attr.name);
            for (am, mattr) in master.iter() {
                if norm(&mattr.name) == na {
                    matched[a].push(am);
                }
            }
        }
        SchemaMatch { matched }
    }

    /// `M(a)` — master attributes matched to input attribute `a`.
    pub fn of(&self, a: AttrId) -> &[AttrId] {
        &self.matched[a]
    }

    /// Number of input attributes the match is defined over.
    pub fn input_arity(&self) -> usize {
        self.matched.len()
    }

    /// Total number of matched pairs `|M|` (drives the enumeration-space
    /// bound `N_enum = 2^{|M|} · Π(|dom(A)|+1)` of §II-D).
    pub fn num_pairs(&self) -> usize {
        self.matched.iter().map(Vec::len).sum()
    }

    /// Iterate all `(input, master)` matched pairs in order.
    pub fn pairs(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.matched
            .iter()
            .enumerate()
            .flat_map(|(a, ms)| ms.iter().map(move |&am| (a, am)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::Attribute;

    #[test]
    fn from_pairs_dedupes_and_sorts() {
        let m = SchemaMatch::from_pairs(3, &[(0, 2), (0, 1), (0, 2), (2, 0)]);
        assert_eq!(m.of(0), &[1, 2]);
        assert_eq!(m.of(1), &[] as &[AttrId]);
        assert_eq!(m.of(2), &[0]);
        assert_eq!(m.num_pairs(), 3);
        assert_eq!(m.input_arity(), 3);
    }

    #[test]
    fn by_name_is_case_and_separator_insensitive() {
        let input = Schema::new(
            "in",
            vec![
                Attribute::categorical("area_code"),
                Attribute::categorical("City"),
                Attribute::categorical("Overseas"),
            ],
        );
        let master = Schema::new(
            "m",
            vec![
                Attribute::categorical("AreaCode"),
                Attribute::categorical("city"),
            ],
        );
        let m = SchemaMatch::by_name(&input, &master);
        assert_eq!(m.of(0), &[0]);
        assert_eq!(m.of(1), &[1]);
        assert_eq!(m.of(2), &[] as &[AttrId]);
    }

    #[test]
    fn pairs_iterates_in_order() {
        let m = SchemaMatch::from_pairs(2, &[(1, 0), (0, 1)]);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }
}
