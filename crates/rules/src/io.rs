//! Rule-set persistence.
//!
//! Discovered rules are meant to outlive the mining run: they get reviewed,
//! versioned, and applied to future batches of input data. This module
//! serializes rule sets to a self-describing JSON document that stores
//! values *by content* (attribute names and rendered values), so a rule set
//! saved against one pool can be loaded against another — or against a
//! re-loaded dataset — as long as the schemas still match.

use crate::measures::Measures;
use crate::rule::{Condition, EditingRule, Pred};
use crate::task::Task;
use er_table::Value;
use serde::{Deserialize, Serialize};

/// A portable (pool-independent) rule representation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PortableRule {
    /// LHS pairs as `(input attribute name, master attribute name)`.
    pub lhs: Vec<(String, String)>,
    /// Target pair as `(Y name, Y_m name)`.
    pub target: (String, String),
    /// Pattern conditions with rendered values.
    pub pattern: Vec<PortableCondition>,
    /// Measures at save time (informational; re-evaluate after loading).
    pub measures: Option<Measures>,
}

/// A portable pattern condition.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum PortableCondition {
    /// `t[attr] = value` (value in rendered form).
    Eq {
        /// Input attribute name.
        attr: String,
        /// Rendered constant.
        value: String,
        /// Whether the constant was numeric (`Int`) in the pool.
        numeric: bool,
    },
    /// `lo ≤ t[attr] < hi`.
    Range {
        /// Input attribute name.
        attr: String,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound (`null`/∞ encoded as `f64::INFINITY`).
        hi: f64,
    },
    /// `t[attr] ∈ values`.
    OneOf {
        /// Input attribute name.
        attr: String,
        /// Rendered members.
        values: Vec<String>,
        /// Whether members were numeric in the pool.
        numeric: bool,
    },
}

/// Convert a rule to its portable form using `task`'s schemas and pool.
pub fn to_portable(rule: &EditingRule, task: &Task, measures: Option<Measures>) -> PortableRule {
    let in_schema = task.input().schema();
    let m_schema = task.master().schema();
    let pool = task.input().pool();
    let render = |code: er_table::Code| pool.value(code);
    let lhs = rule
        .lhs()
        .iter()
        .map(|&(a, am)| {
            (
                in_schema.attr(a).name.clone(),
                m_schema.attr(am).name.clone(),
            )
        })
        .collect();
    let (y, ym) = rule.target();
    let pattern = rule
        .pattern()
        .iter()
        .map(|c| {
            let attr = in_schema.attr(c.attr).name.clone();
            match &c.pred {
                Pred::Eq(code) => {
                    let v = render(*code);
                    PortableCondition::Eq {
                        attr,
                        numeric: matches!(v, Value::Int(_) | Value::Float(_)),
                        value: v.render().into_owned(),
                    }
                }
                Pred::Range { lo, hi } => PortableCondition::Range {
                    attr,
                    lo: *lo,
                    hi: *hi,
                },
                Pred::OneOf(codes) => {
                    let vals: Vec<Value> = codes.iter().map(|&c| render(c)).collect();
                    PortableCondition::OneOf {
                        attr,
                        numeric: vals
                            .first()
                            .is_some_and(|v| matches!(v, Value::Int(_) | Value::Float(_))),
                        values: vals.iter().map(|v| v.render().into_owned()).collect(),
                    }
                }
            }
        })
        .collect();
    PortableRule {
        lhs,
        target: (
            in_schema.attr(y).name.clone(),
            m_schema.attr(ym).name.clone(),
        ),
        pattern,
        measures,
    }
}

/// Errors when resolving a portable rule against a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// An attribute name no longer exists in the schema.
    UnknownAttribute(String),
    /// The rule's target differs from the task's target.
    TargetMismatch,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            ResolveError::TargetMismatch => write!(f, "rule target differs from task target"),
        }
    }
}

impl std::error::Error for ResolveError {}

fn parse_value(raw: &str, numeric: bool) -> Value {
    if numeric {
        if let Ok(v) = raw.parse::<i64>() {
            return Value::Int(v);
        }
        if let Ok(v) = raw.parse::<f64>() {
            return Value::Float(v);
        }
    }
    Value::str(raw)
}

/// Resolve a portable rule against `task` (re-interning values in the
/// task's pool).
pub fn from_portable(portable: &PortableRule, task: &Task) -> Result<EditingRule, ResolveError> {
    let in_schema = task.input().schema();
    let m_schema = task.master().schema();
    let pool = task.input().pool();
    let in_attr = |name: &str| {
        in_schema
            .attr_id(name)
            .map_err(|_| ResolveError::UnknownAttribute(name.to_string()))
    };
    let m_attr = |name: &str| {
        m_schema
            .attr_id(name)
            .map_err(|_| ResolveError::UnknownAttribute(name.to_string()))
    };
    let (y_name, ym_name) = &portable.target;
    let target = (in_attr(y_name)?, m_attr(ym_name)?);
    if target != task.target() {
        return Err(ResolveError::TargetMismatch);
    }
    let mut lhs = Vec::with_capacity(portable.lhs.len());
    for (a, am) in &portable.lhs {
        lhs.push((in_attr(a)?, m_attr(am)?));
    }
    let mut pattern = Vec::with_capacity(portable.pattern.len());
    for cond in &portable.pattern {
        pattern.push(match cond {
            PortableCondition::Eq {
                attr,
                value,
                numeric,
            } => Condition {
                attr: in_attr(attr)?,
                pred: Pred::Eq(pool.intern(parse_value(value, *numeric))),
            },
            PortableCondition::Range { attr, lo, hi } => Condition::range(in_attr(attr)?, *lo, *hi),
            PortableCondition::OneOf {
                attr,
                values,
                numeric,
            } => Condition {
                attr: in_attr(attr)?,
                pred: Pred::one_of(
                    values
                        .iter()
                        .map(|v| pool.intern(parse_value(v, *numeric)))
                        .collect(),
                ),
            },
        });
    }
    Ok(EditingRule::new(lhs, target, pattern))
}

/// Serialize a scored rule set to pretty JSON.
pub fn rules_to_json(rules: &[(EditingRule, Measures)], task: &Task) -> String {
    let portable: Vec<PortableRule> = rules
        .iter()
        .map(|(r, m)| to_portable(r, task, Some(*m)))
        .collect();
    // Invariant: PortableRule is a pure data tree (strings, numbers, options)
    // whose serialization is infallible by construction.
    #[allow(clippy::expect_used)]
    serde_json::to_string_pretty(&portable).expect("portable rules serialize")
}

/// Deserialize a rule set saved by [`rules_to_json`] against a task.
pub fn rules_from_json(
    json: &str,
    task: &Task,
) -> Result<Vec<EditingRule>, Box<dyn std::error::Error>> {
    let portable: Vec<PortableRule> = serde_json::from_str(json)?;
    portable
        .iter()
        .map(|p| from_portable(p, task).map_err(Into::into))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use er_table::{Attribute, Pool, RelationBuilder, Schema};
    use std::sync::Arc;

    fn task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::continuous("Age"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![Value::str("HZ"), Value::int(30), Value::str("c1")])
            .unwrap();
        b.push_row(vec![Value::str("BJ"), Value::int(44), Value::str("c2")])
            .unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![Value::str("HZ"), Value::str("c1")])
            .unwrap();
        let master = bm.finish();
        Task::new(
            input,
            master,
            SchemaMatch::from_pairs(3, &[(0, 0), (2, 1)]),
            (2, 1),
        )
    }

    fn sample_rule(t: &Task) -> EditingRule {
        let hz = t.input().pool().code_of(&Value::str("HZ")).unwrap();
        EditingRule::new(
            vec![(0, 0)],
            (2, 1),
            vec![Condition::eq(0, hz), Condition::range(1, 20.0, 40.0)],
        )
    }

    #[test]
    fn round_trip_same_task() {
        let t = task();
        let rule = sample_rule(&t);
        let p = to_portable(&rule, &t, None);
        let back = from_portable(&p, &t).unwrap();
        assert_eq!(back, rule);
    }

    #[test]
    fn round_trip_through_json_and_fresh_pool() {
        let t1 = task();
        let rule = sample_rule(&t1);
        let ev = crate::measures::Evaluator::new(&t1);
        let m = ev.eval(&rule, None);
        let json = rules_to_json(&[(rule.clone(), m)], &t1);

        // A fresh, structurally identical task with its own pool.
        let t2 = task();
        let loaded = rules_from_json(&json, &t2).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].lhs(), rule.lhs());
        assert_eq!(loaded[0].pattern_len(), rule.pattern_len());
        // Same measures on the identical data.
        let ev2 = crate::measures::Evaluator::new(&t2);
        assert_eq!(ev2.eval(&loaded[0], None), m);
    }

    #[test]
    fn unknown_attribute_is_reported() {
        let t = task();
        let mut p = to_portable(&sample_rule(&t), &t, None);
        p.lhs[0].0 = "Nope".to_string();
        assert_eq!(
            from_portable(&p, &t).unwrap_err(),
            ResolveError::UnknownAttribute("Nope".to_string())
        );
    }

    #[test]
    fn target_mismatch_is_reported() {
        let t = task();
        let mut p = to_portable(&sample_rule(&t), &t, None);
        p.target = ("City".to_string(), "City".to_string());
        assert_eq!(
            from_portable(&p, &t).unwrap_err(),
            ResolveError::TargetMismatch
        );
    }

    #[test]
    fn one_of_conditions_round_trip() {
        let t = task();
        let pool = t.input().pool();
        let codes = vec![
            pool.code_of(&Value::str("HZ")).unwrap(),
            pool.code_of(&Value::str("BJ")).unwrap(),
        ];
        let rule = EditingRule::new(
            vec![(0, 0)],
            (2, 1),
            vec![Condition {
                attr: 0,
                pred: Pred::one_of(codes),
            }],
        );
        let p = to_portable(&rule, &t, None);
        let back = from_portable(&p, &t).unwrap();
        assert_eq!(back, rule);
    }
}
