//! Rule-set analysis: coverage, overlap, and marginal contribution.
//!
//! The paper motivates top-K selection by noting that "an overly large rule
//! set not only makes it difficult for users to focus on the valuable rules
//! but also makes it more time-consuming to apply" (§II-C). This module
//! quantifies that: which input tuples each rule can actually repair, how
//! much the rules overlap, and what each rule adds at the margin — the
//! numbers a practitioner looks at when deciding how many rules to keep.

use crate::measures::Evaluator;
use crate::rule::EditingRule;
use crate::task::Task;
use er_table::{RowId, NULL_CODE};

/// Per-rule coverage report.
#[derive(Debug, Clone)]
pub struct RuleCoverage {
    /// Index into the analyzed rule slice.
    pub rule: usize,
    /// Input rows the rule can repair (pattern matches ∧ master hit).
    pub supported_rows: Vec<RowId>,
    /// Rows supported by this rule and no earlier rule in the slice —
    /// the rule's marginal contribution under the given ordering.
    pub marginal_rows: usize,
}

/// Whole-set coverage analysis.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Per-rule coverage, in input order.
    pub rules: Vec<RuleCoverage>,
    /// Rows supported by at least one rule.
    pub covered: usize,
    /// Input size.
    pub total_rows: usize,
    /// Cumulative coverage after each rule (the knee of this curve is the
    /// natural K).
    pub cumulative: Vec<usize>,
}

impl CoverageReport {
    /// Fraction of input rows repairable by the set.
    pub fn coverage_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.covered as f64 / self.total_rows as f64
        }
    }

    /// The smallest prefix length reaching `fraction` of the full set's
    /// coverage — a data-driven choice of K.
    pub fn knee(&self, fraction: f64) -> usize {
        let target = (self.covered as f64 * fraction).ceil() as usize;
        self.cumulative
            .iter()
            .position(|&c| c >= target)
            .map(|i| i + 1)
            .unwrap_or(self.rules.len())
    }
}

/// Rows a rule can actually repair on `task`.
fn supported_rows(ev: &Evaluator<'_>, rule: &EditingRule) -> Vec<RowId> {
    let task = ev.task();
    let input = task.input();
    let x = rule.x();
    let group = ev.group_index(&rule.xm());
    let mut out = Vec::new();
    let mut key = Vec::with_capacity(x.len());
    'rows: for row in ev.cover(rule, None) {
        key.clear();
        for &a in &x {
            let c = input.code(row, a);
            if c == NULL_CODE {
                continue 'rows;
            }
            key.push(c);
        }
        let dist = group.get(&key);
        if dist.iter().any(|&(c, _)| c != NULL_CODE) {
            out.push(row);
        }
    }
    out
}

/// Analyze a rule set's coverage on `task` (rules are considered in the
/// given order for marginal/cumulative numbers — pass them sorted by
/// utility to see the top-K trade-off).
pub fn coverage(task: &Task, rules: &[EditingRule]) -> CoverageReport {
    let ev = Evaluator::new(task);
    let n = task.input().num_rows();
    let mut seen = vec![false; n];
    let mut covered = 0usize;
    let mut out = Vec::with_capacity(rules.len());
    let mut cumulative = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let rows = supported_rows(&ev, rule);
        let mut marginal = 0usize;
        for &r in &rows {
            if !seen[r] {
                seen[r] = true;
                covered += 1;
                marginal += 1;
            }
        }
        out.push(RuleCoverage {
            rule: i,
            supported_rows: rows,
            marginal_rows: marginal,
        });
        cumulative.push(covered);
    }
    CoverageReport {
        rules: out,
        covered,
        total_rows: n,
        cumulative,
    }
}

/// Jaccard overlap of two rules' supported row sets.
pub fn overlap(task: &Task, a: &EditingRule, b: &EditingRule) -> f64 {
    let ev = Evaluator::new(task);
    let ra = supported_rows(&ev, a);
    let rb = supported_rows(&ev, b);
    if ra.is_empty() && rb.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<_> = ra.iter().copied().collect();
    let inter = rb.iter().filter(|r| sa.contains(r)).count();
    let union = ra.len() + rb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::SchemaMatch;
    use crate::rule::Condition;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    fn task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        for city in ["HZ", "HZ", "BJ", "SZ", "XX"] {
            b.push_row(vec![s(city), Value::Null]).unwrap();
        }
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("p")]).unwrap();
        bm.push_row(vec![s("BJ"), s("i")]).unwrap();
        let master = bm.finish();
        Task::new(
            input,
            master,
            SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
            (1, 1),
        )
    }

    fn code(t: &Task, v: &str) -> er_table::Code {
        t.input().pool().code_of(&Value::str(v)).unwrap()
    }

    #[test]
    fn coverage_counts_supported_rows() {
        let t = task();
        let all = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = coverage(&t, &[all]);
        // HZ×2, BJ — SZ and XX are not in master.
        assert_eq!(report.covered, 3);
        assert_eq!(report.total_rows, 5);
        assert!((report.coverage_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(report.rules[0].supported_rows, vec![0, 1, 2]);
    }

    #[test]
    fn marginal_rows_respect_order() {
        let t = task();
        let hz_only =
            EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, code(&t, "HZ"))]);
        let all = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = coverage(&t, &[hz_only.clone(), all.clone()]);
        assert_eq!(report.rules[0].marginal_rows, 2); // HZ rows
        assert_eq!(report.rules[1].marginal_rows, 1); // only BJ is new
        assert_eq!(report.cumulative, vec![2, 3]);
        // Reversed order flips the marginals.
        let rev = coverage(&t, &[all, hz_only]);
        assert_eq!(rev.rules[0].marginal_rows, 3);
        assert_eq!(rev.rules[1].marginal_rows, 0);
    }

    #[test]
    fn duplicate_rules_do_not_double_count_marginals() {
        // Tied (here: identical) rules must not inflate coverage: the first
        // occurrence claims all its rows, every later duplicate is pure
        // overlap with marginal 0, and `covered` counts distinct rows once.
        let t = task();
        let all = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = coverage(&t, &[all.clone(), all]);
        assert_eq!(report.rules[0].marginal_rows, 3);
        assert_eq!(report.rules[1].marginal_rows, 0);
        assert_eq!(
            report.rules[1].supported_rows,
            report.rules[0].supported_rows
        );
        assert_eq!(report.cumulative, vec![3, 3]);
        assert_eq!(report.covered, 3);
    }

    #[test]
    fn knee_finds_minimal_prefix() {
        let t = task();
        let hz_only =
            EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, code(&t, "HZ"))]);
        let all = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let report = coverage(&t, &[hz_only, all]);
        assert_eq!(report.knee(0.6), 1); // 2 of 3 ≥ 60%
        assert_eq!(report.knee(1.0), 2);
    }

    #[test]
    fn overlap_is_jaccard() {
        let t = task();
        let hz_only =
            EditingRule::new(vec![(0, 0)], (1, 1), vec![Condition::eq(0, code(&t, "HZ"))]);
        let all = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        // HZ ⊂ all: |∩| = 2, |∪| = 3.
        assert!((overlap(&t, &hz_only, &all) - 2.0 / 3.0).abs() < 1e-12);
        assert!((overlap(&t, &all, &all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rule_set_covers_nothing() {
        let t = task();
        let report = coverage(&t, &[]);
        assert_eq!(report.covered, 0);
        assert_eq!(report.coverage_fraction(), 0.0);
        assert_eq!(report.knee(0.5), 0);
    }
}
