//! The wire protocol: newline-delimited JSON.
//!
//! One request object per line, one response object per line, in request
//! order. The grammar (§10 of DESIGN.md):
//!
//! ```text
//! request  := {"op":"ping"}
//!           | {"op":"stats"}
//!           | {"op":"reload"}
//!           | {"op":"reload","scope":scope}     // gate on a declared edit scope
//!           | {"op":"shutdown"}
//!           | {"op":"repair","rows":[row...]}   // input-schema order
//!           | {"op":"append","rows":[row...]}   // master-schema order
//!           | {"op":"repair_csv","path":string} // stream a server-side CSV
//!           | {"op":"repair_csv","path":string,"chunk_bytes":number}
//!           | {"op":"diff","rules":[rule...]}   // candidate portable rules
//!           | {"op":"diff","rules":[rule...],"scope":scope}
//!           | {"op":"versions"}
//! row      := [cell...]             // one cell per schema attribute
//! cell     := null | string | number
//! scope    := {attr:value,...} | [{attr:value,...}...]   // see er-analyze EditScope
//! response := {"ok":true,"op":...,...} | {"ok":false,"error":string,...}
//! ```
//!
//! Every parse failure is answered with an error response on the same
//! connection — a malformed line never tears the session down.

use crate::engine::RepairOutcome;
use crate::metrics::Snapshot;
use er_analyze::{DiffReport, EditScope};
use er_rules::RuleStore;
use er_table::Value as Cell;
use serde_json::Value as Json;

/// A reusable decoded-rows buffer, one per serving session.
///
/// `repair`/`append` requests arrive as JSON row arrays every few
/// milliseconds on a busy session; decoding each into a fresh
/// `Vec<Vec<Cell>>` allocates one vector per row per request. This buffer
/// keeps both the outer vector and every inner row vector alive across
/// requests — [`RowBatch::clear`] resets the logical length without
/// releasing capacity, and the parser refills the same slots in place.
#[derive(Debug, Default)]
pub struct RowBatch {
    rows: Vec<Vec<Cell>>,
    len: usize,
}

impl RowBatch {
    /// An empty buffer (no capacity until the first request).
    pub fn new() -> Self {
        RowBatch::default()
    }

    /// Forget the decoded rows but keep every allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of decoded rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The decoded rows, in request order.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows[..self.len]
    }

    /// Hand out the next reusable row slot, cleared but with its capacity
    /// intact.
    fn next_row(&mut self) -> &mut Vec<Cell> {
        if self.len == self.rows.len() {
            self.rows.push(Vec::new());
        }
        let row = &mut self.rows[self.len];
        row.clear();
        self.len += 1;
        row
    }
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Metrics snapshot.
    Stats,
    /// Rebuild the engine from its configured source (rules file). With a
    /// declared scope, the promotion is additionally gated on the edit-scope
    /// diff: verdict changes outside the scope reject the reload (ER012).
    Reload {
        /// The declared edit scope, if any.
        scope: Option<EditScope>,
    },
    /// Begin a graceful drain and close the session.
    Shutdown,
    /// Repair a batch of rows laid out in input-schema attribute order. The
    /// rows themselves are decoded into the session's [`RowBatch`].
    Repair,
    /// Append rows (master-schema attribute order) to the master relation,
    /// delta-updating the warmed indexes in place. The rows are decoded
    /// into the session's [`RowBatch`].
    Append,
    /// Stream a server-side CSV file through the chunked ingest reader and
    /// repair it chunk by chunk (bulk repair without per-row JSON).
    RepairCsv {
        /// Path of the CSV file, resolved on the server's filesystem. Its
        /// header must match the engine's input schema.
        path: String,
        /// Optional chunk-size override in bytes.
        chunk_bytes: Option<usize>,
    },
    /// Compare the live rule set against a candidate document without
    /// promoting anything: report the edit scope of the would-be change.
    Diff {
        /// The candidate rule set as a portable JSON document.
        rules_json: String,
        /// The declared edit scope, if any (out-of-scope changes → ER012).
        scope: Option<EditScope>,
    },
    /// Report the rule version store: lineage, hashes, promotion notes.
    Versions,
}

/// Parse one request line. `max_rows` bounds the batch size a single
/// `repair` request may carry; `repair`/`append` rows are decoded into
/// `batch` (cleared first), so the caller can reuse one buffer per session.
pub fn parse_request(line: &str, max_rows: usize, batch: &mut RowBatch) -> Result<Request, String> {
    batch.clear();
    let value: Json = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"op\" field".to_string())?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "reload" => Ok(Request::Reload {
            scope: parse_scope(&value)?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        "repair" => {
            parse_rows(&value, "repair", max_rows, batch)?;
            Ok(Request::Repair)
        }
        "append" => {
            parse_rows(&value, "append", max_rows, batch)?;
            Ok(Request::Append)
        }
        "repair_csv" => {
            let path = value
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| "repair_csv needs a \"path\" string".to_string())?
                .to_string();
            let chunk_bytes = match value.get("chunk_bytes") {
                None | Some(Json::Null) => None,
                Some(Json::Int(i)) if *i > 0 => Some(*i as usize),
                Some(Json::UInt(u)) if *u > 0 => usize::try_from(*u)
                    .map(Some)
                    .map_err(|_| "oversized \"chunk_bytes\"".to_string())?,
                Some(_) => return Err("\"chunk_bytes\" must be a positive integer".to_string()),
            };
            Ok(Request::RepairCsv { path, chunk_bytes })
        }
        "diff" => {
            let rules = value
                .get("rules")
                .ok_or_else(|| "diff needs a \"rules\" array".to_string())?;
            if !matches!(rules, Json::Array(_)) {
                return Err("diff needs a \"rules\" array".to_string());
            }
            Ok(Request::Diff {
                rules_json: serde_json::to_string(rules)
                    .map_err(|e| format!("unserializable rules: {e}"))?,
                scope: parse_scope(&value)?,
            })
        }
        "versions" => Ok(Request::Versions),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Decode the optional `"scope"` field shared by `reload` and `diff`.
fn parse_scope(value: &Json) -> Result<Option<EditScope>, String> {
    match value.get("scope") {
        None | Some(Json::Null) => Ok(None),
        Some(raw) => EditScope::from_json_value(raw).map(Some),
    }
}

/// Decode the `"rows"` array shared by the `repair` and `append` ops into
/// the session's reusable batch buffer. On error the batch is cleared, so a
/// rejected request never leaks half-decoded rows into the next one.
fn parse_rows(value: &Json, op: &str, max_rows: usize, batch: &mut RowBatch) -> Result<(), String> {
    let fill = |batch: &mut RowBatch| -> Result<(), String> {
        let rows = value
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{op} needs a \"rows\" array"))?;
        if rows.len() > max_rows {
            return Err(format!(
                "batch of {} rows exceeds the {max_rows}-row limit",
                rows.len()
            ));
        }
        for (i, row) in rows.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("row {i} is not an array"))?;
            let tuple = batch.next_row();
            for (j, cell) in cells.iter().enumerate() {
                tuple.push(
                    decode_cell(cell).map_err(|kind| format!("row {i} column {j}: {kind} cell"))?,
                );
            }
        }
        Ok(())
    };
    fill(batch).inspect_err(|_| batch.clear())
}

/// Map one JSON scalar to a table cell. Booleans and nested containers have
/// no dictionary representation and are rejected.
fn decode_cell(value: &Json) -> Result<Cell, &'static str> {
    match value {
        Json::Null => Ok(Cell::Null),
        Json::Str(s) => Ok(Cell::str(s.as_str())),
        Json::Int(i) => Ok(Cell::int(*i)),
        Json::UInt(u) => i64::try_from(*u)
            .map(Cell::int)
            .map_err(|_| "oversized integer"),
        Json::Float(f) => Ok(Cell::float(*f)),
        Json::Bool(_) => Err("unsupported boolean"),
        Json::Array(_) => Err("unsupported array"),
        Json::Object(_) => Err("unsupported object"),
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Render a response value as one compact line. Responses are built from
/// finite scalars only, so serialization cannot fail; the fallback keeps
/// the protocol well-formed even if that ever changes.
fn render(value: &Json) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| "{\"ok\":false,\"error\":\"response serialization failed\"}".into())
}

/// `ping` response.
pub fn ok_ping() -> String {
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("ping".into())),
    ]))
}

/// `shutdown` acknowledgement (sent before the drain closes the session).
pub fn ok_shutdown() -> String {
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("shutdown".into())),
    ]))
}

/// `reload` acknowledgement: reloaded rule count, the version id the
/// promotion committed to the store, and (when the diff gate ran) the
/// edit-scope summary of what the promotion changes.
pub fn ok_reload(num_rules: usize, version: Option<u64>, diff: Option<&DiffReport>) -> String {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("reload".into())),
        ("rules", Json::Int(num_rules as i64)),
    ];
    if let Some(v) = version {
        fields.push(("version", Json::UInt(v)));
    }
    if let Some(report) = diff {
        fields.push(("diff", diff_summary(report)));
    }
    render(&obj(fields))
}

/// The compact edit-scope summary embedded in `reload` and rejection
/// responses: counts plus the certificate when the change is a no-op.
fn diff_summary(report: &DiffReport) -> Json {
    obj(vec![
        ("equivalent", Json::Bool(report.equivalent())),
        ("added", Json::Int(report.added as i64)),
        ("removed", Json::Int(report.removed as i64)),
        ("changes", Json::Int(report.changes.len() as i64)),
        ("infos", Json::Int(report.infos() as i64)),
        ("errors", Json::Int(report.errors() as i64)),
        (
            "certificate",
            match report.certificate() {
                Some(c) => Json::Str(c),
                None => Json::Null,
            },
        ),
    ])
}

/// `diff` response: the full edit-scope report (summary, verdict changes
/// with witnesses, findings) for the live-vs-candidate comparison.
pub fn ok_diff(report: &DiffReport) -> String {
    use serde::Serialize as _;
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("diff".into())),
        ("summary", diff_summary(report)),
        ("report", report.to_value()),
    ]))
}

/// `versions` response: the rule version store (head id plus each version's
/// id, parent, content hash and promotion note).
pub fn ok_versions(store: &RuleStore) -> String {
    use serde::Serialize as _;
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("versions".into())),
        ("store", store.to_value()),
    ]))
}

/// Edit-scope gate rejection: the `reload` was refused because the
/// candidate changes repair verdicts outside the declared edit scope
/// (ER012). The response carries the full diff report — every out-of-scope
/// signature with its master-row witness — and the live engine is
/// untouched.
pub fn diff_rejected(op: &str, report: &DiffReport) -> String {
    use serde::Serialize as _;
    render(&obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "{op} rejected by edit-scope analysis: {} verdict change{} outside the declared scope",
                report.errors(),
                if report.errors() == 1 { "" } else { "s" },
            )),
        ),
        ("op", Json::Str(op.to_string())),
        ("rejected", Json::Bool(true)),
        ("summary", diff_summary(report)),
        ("report", report.to_value()),
    ]))
}

/// `stats` response wrapping a metrics snapshot.
pub fn ok_stats(snapshot: &Snapshot) -> String {
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("stats".into())),
        ("stats", snapshot.to_value()),
    ]))
}

/// `repair` response: the number of cells a repair would change and each
/// changed cell as `{"row":i,"attr":name,"value":rendered,"score":s}`.
pub fn ok_repair(outcome: &RepairOutcome) -> String {
    let cells: Vec<Json> = outcome
        .cells
        .iter()
        .map(|c| {
            obj(vec![
                ("row", Json::Int(c.row as i64)),
                ("attr", Json::Str(c.attr.clone())),
                ("value", Json::Str(c.value.clone())),
                ("score", Json::Float(c.score)),
            ])
        })
        .collect();
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("repair".into())),
        ("rows", Json::Int(outcome.rows as i64)),
        ("fixed", Json::Int(outcome.fixed() as i64)),
        ("cells", Json::Array(cells)),
    ]))
}

/// `repair_csv` response: totals only (rows streamed, chunks committed,
/// cells a repair would change) — a bulk file can carry millions of rows,
/// so per-cell detail stays with the row-level `repair` op.
pub fn ok_repair_csv(rows: usize, chunks: usize, fixed: usize) -> String {
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("repair_csv".into())),
        ("rows", Json::Int(rows as i64)),
        ("chunks", Json::Int(chunks as i64)),
        ("fixed", Json::Int(fixed as i64)),
    ]))
}

/// `append` acknowledgement: rows appended, the master's new row count,
/// and its new generation.
pub fn ok_append(outcome: &er_incr::AppendOutcome) -> String {
    render(&obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("append".into())),
        ("appended", Json::Int(outcome.appended as i64)),
        ("master_rows", Json::Int(outcome.master_rows as i64)),
        ("generation", Json::UInt(outcome.generation)),
    ]))
}

/// Static-analysis gate rejection: the op (`reload` or `append`) was
/// refused because the resulting rule-set/master combination fails the
/// analysis gate (ER008 cycle or ER009 conflict). The response carries the
/// analysis findings so the client can see *why* — the certificates and
/// witnesses — without a second round trip; the live engine is untouched.
pub fn analysis_rejected(op: &str, report: &er_analyze::AnalysisReport) -> String {
    use serde::Serialize as _;
    let findings: Vec<Json> = report.findings.iter().map(|f| f.to_value()).collect();
    render(&obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str(format!(
                "{op} rejected by static analysis: {} error{}",
                report.errors(),
                if report.errors() == 1 { "" } else { "s" },
            )),
        ),
        ("op", Json::Str(op.to_string())),
        ("rejected", Json::Bool(true)),
        ("errors", Json::Int(report.errors() as i64)),
        ("warnings", Json::Int(report.warnings() as i64)),
        ("certified", Json::Bool(report.termination.certified)),
        ("findings", Json::Array(findings)),
    ]))
}

/// Generic error response.
pub fn error(message: &str) -> String {
    render(&obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ]))
}

/// Backpressure response: the in-flight queue is full; the client should
/// retry after a backoff.
pub fn overloaded() -> String {
    render(&obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("overloaded".into())),
        ("retry", Json::Bool(true)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parse with a throwaway batch, for tests that don't inspect rows.
    fn parse(line: &str, max_rows: usize) -> Result<Request, String> {
        parse_request(line, max_rows, &mut RowBatch::new())
    }

    #[test]
    fn parses_simple_ops() {
        assert_eq!(parse("{\"op\":\"ping\"}", 10), Ok(Request::Ping));
        assert_eq!(parse("{\"op\":\"stats\"}", 10), Ok(Request::Stats));
        assert_eq!(
            parse("{\"op\":\"reload\"}", 10),
            Ok(Request::Reload { scope: None })
        );
        assert_eq!(parse("{\"op\":\"shutdown\"}", 10), Ok(Request::Shutdown));
        assert_eq!(parse("{\"op\":\"versions\"}", 10), Ok(Request::Versions));
    }

    #[test]
    fn parses_reload_scope_and_diff() {
        let req = parse("{\"op\":\"reload\",\"scope\":{\"Date\":\"2021-12\"}}", 10).unwrap();
        let Request::Reload { scope: Some(scope) } = req else {
            panic!("expected a scoped reload");
        };
        assert!(scope.contains(&[("Date".to_string(), "2021-12".to_string())]));
        // A null scope means no scope was declared.
        assert_eq!(
            parse("{\"op\":\"reload\",\"scope\":null}", 10),
            Ok(Request::Reload { scope: None })
        );
        let req = parse(
            "{\"op\":\"diff\",\"rules\":[{\"x\":1}],\"scope\":[{\"City\":\"HZ\"}]}",
            10,
        )
        .unwrap();
        let Request::Diff { rules_json, scope } = req else {
            panic!("expected a diff request");
        };
        assert_eq!(rules_json, "[{\"x\":1}]");
        assert!(scope.is_some());
        let err = parse("{\"op\":\"diff\"}", 10).unwrap_err();
        assert!(err.contains("diff needs"), "{err}");
        let err = parse("{\"op\":\"diff\",\"rules\":7}", 10).unwrap_err();
        assert!(err.contains("diff needs"), "{err}");
        let err = parse("{\"op\":\"reload\",\"scope\":7}", 10).unwrap_err();
        assert!(err.contains("scope"), "{err}");
    }

    #[test]
    fn parses_repair_rows_into_the_batch() {
        let mut batch = RowBatch::new();
        let req = parse_request(
            "{\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\",\"imports\"]]}",
            10,
            &mut batch,
        )
        .unwrap();
        assert_eq!(req, Request::Repair);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.rows()[0], vec![Cell::str("HZ"), Cell::Null]);
        assert_eq!(batch.rows()[1], vec![Cell::str("BJ"), Cell::str("imports")]);
    }

    #[test]
    fn parses_append_rows() {
        let mut batch = RowBatch::new();
        let req = parse_request(
            "{\"op\":\"append\",\"rows\":[[\"SZ\",\"no symptoms\"]]}",
            10,
            &mut batch,
        )
        .unwrap();
        assert_eq!(req, Request::Append);
        assert_eq!(
            batch.rows(),
            &[vec![Cell::str("SZ"), Cell::str("no symptoms")]]
        );
        // The same row-array rules apply as for repair.
        let err = parse("{\"op\":\"append\",\"rows\":[[1],[2],[3]]}", 2).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        let err = parse("{\"op\":\"append\"}", 10).unwrap_err();
        assert!(err.contains("append needs"), "{err}");
    }

    #[test]
    fn batch_buffer_is_reused_across_requests() {
        let mut batch = RowBatch::new();
        parse_request(
            "{\"op\":\"repair\",\"rows\":[[\"a\"],[\"b\"],[\"c\"]]}",
            10,
            &mut batch,
        )
        .unwrap();
        assert_eq!(batch.len(), 3);
        // A smaller follow-up request truncates the logical view but keeps
        // the old slots allocated for reuse.
        parse_request(
            "{\"op\":\"repair\",\"rows\":[[\"z\",\"y\"]]}",
            10,
            &mut batch,
        )
        .unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.rows(), &[vec![Cell::str("z"), Cell::str("y")]]);
        // Row-less ops clear the batch outright.
        parse_request("{\"op\":\"ping\"}", 10, &mut batch).unwrap();
        assert!(batch.is_empty());
        // A rejected request never leaks half-decoded rows.
        parse_request(
            "{\"op\":\"repair\",\"rows\":[[\"ok\"],[true]]}",
            10,
            &mut batch,
        )
        .unwrap_err();
        assert!(batch.is_empty());
    }

    #[test]
    fn parses_repair_csv() {
        let req = parse("{\"op\":\"repair_csv\",\"path\":\"in.csv\"}", 10).unwrap();
        assert_eq!(
            req,
            Request::RepairCsv {
                path: "in.csv".to_string(),
                chunk_bytes: None
            }
        );
        let req = parse(
            "{\"op\":\"repair_csv\",\"path\":\"in.csv\",\"chunk_bytes\":4096}",
            10,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::RepairCsv {
                path: "in.csv".to_string(),
                chunk_bytes: Some(4096)
            }
        );
        let err = parse("{\"op\":\"repair_csv\"}", 10).unwrap_err();
        assert!(err.contains("path"), "{err}");
        let err = parse(
            "{\"op\":\"repair_csv\",\"path\":\"x\",\"chunk_bytes\":0}",
            10,
        )
        .unwrap_err();
        assert!(err.contains("chunk_bytes"), "{err}");
    }

    #[test]
    fn repair_csv_response_shape() {
        let resp = ok_repair_csv(1000, 4, 37);
        let parsed: Json = serde_json::from_str(&resp).unwrap();
        assert_eq!(parsed.get("rows"), Some(&Json::Int(1000)));
        assert_eq!(parsed.get("chunks"), Some(&Json::Int(4)));
        assert_eq!(parsed.get("fixed"), Some(&Json::Int(37)));
    }

    #[test]
    fn append_response_shape() {
        let resp = ok_append(&er_incr::AppendOutcome {
            appended: 2,
            master_rows: 6,
            generation: 9,
            indexes_updated: 1,
        });
        let parsed: Json = serde_json::from_str(&resp).unwrap();
        assert_eq!(parsed.get("appended"), Some(&Json::Int(2)));
        assert_eq!(parsed.get("master_rows"), Some(&Json::Int(6)));
        assert_eq!(parsed.get("generation"), Some(&Json::Int(9)));
    }

    #[test]
    fn numbers_decode_to_typed_cells() {
        let mut batch = RowBatch::new();
        let req = parse_request("{\"op\":\"repair\",\"rows\":[[3,2.5]]}", 10, &mut batch).unwrap();
        assert_eq!(req, Request::Repair);
        assert_eq!(batch.rows()[0], vec![Cell::int(3), Cell::float(2.5)]);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(parse("{\"op\":", 10).is_err());
        assert!(parse("not json at all", 10).is_err());
    }

    #[test]
    fn unknown_and_missing_ops_are_errors() {
        let err = parse("{\"op\":\"frobnicate\"}", 10).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
        let err = parse("{\"rows\":[]}", 10).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let err = parse("{\"op\":\"repair\",\"rows\":[[1],[2],[3]]}", 2).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn unsupported_cells_are_rejected_with_position() {
        let err = parse("{\"op\":\"repair\",\"rows\":[[\"x\",true]]}", 10).unwrap_err();
        assert!(err.contains("row 0 column 1"), "{err}");
    }

    #[test]
    fn responses_are_single_lines() {
        for resp in [
            ok_ping(),
            ok_shutdown(),
            ok_reload(3, Some(2), None),
            error("x"),
            overloaded(),
        ] {
            assert!(!resp.contains('\n'), "{resp}");
            let parsed: Json = serde_json::from_str(&resp).unwrap();
            assert!(parsed.get("ok").is_some());
        }
    }
}
