//! The transport-agnostic server core and the pipe front-end.
//!
//! [`Server`] owns the engine, the configuration, the metrics, and the two
//! pieces of cross-cutting serving state: the in-flight counter that
//! implements backpressure and the draining flag that implements graceful
//! shutdown. Front-ends (the pipe loop here, the TCP listener in
//! [`crate::tcp`]) read lines, call [`Server::handle_line`], and write the
//! response line back; everything protocol-level lives in one place.

use crate::engine::RepairEngine;
use crate::lock;
use crate::metrics::{Metrics, Snapshot};
use crate::proto::{self, Request, RowBatch};
use er_analyze::EditScope;
use er_ingest::{Format, IngestConfig, RowStream, SchemaMode};
use er_lint::Severity;
use er_rules::RuleStore;
use er_table::Value;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serving configuration, shared by pipe and socket mode.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Optional per-request repair deadline. `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Maximum repair requests in flight (and, in socket mode, maximum
    /// accepted connections waiting for a worker). Excess requests receive
    /// the `overloaded` backpressure response immediately.
    pub queue_capacity: usize,
    /// Maximum request line length in bytes; longer lines are consumed and
    /// answered with an error without being buffered.
    pub max_line_bytes: usize,
    /// Maximum rows one `repair` request may carry.
    pub max_batch_rows: usize,
    /// Connection-handling worker threads in socket mode.
    pub workers: usize,
    /// Emit the metrics log line to stderr every N requests (0 = never).
    pub log_every: u64,
    /// Gate `reload` and `append` on a clean static analysis (no ER008
    /// cycle, no ER009 conflict): a dirty reload never swaps the live
    /// engine, a dirty append never commits its rows.
    pub analysis_gate: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            deadline: None,
            queue_capacity: 64,
            max_line_bytes: 1 << 20,
            max_batch_rows: 4096,
            workers: 4,
            log_every: 0,
            analysis_gate: true,
        }
    }
}

/// Why a `reload` did not swap the engine.
#[derive(Debug)]
pub enum ReloadError {
    /// Rebuilding the engine failed outright (unreadable rules file,
    /// unresolvable rules, ...).
    Failed(String),
    /// The candidate rule set failed the static-analysis gate; the engine
    /// was never built or never offered for the swap.
    Analysis(Box<er_analyze::AnalysisReport>),
}

/// Rebuilds the engine for the `reload` op (e.g. re-reading the rules file).
pub type Reloader = Box<dyn Fn() -> Result<RepairEngine, ReloadError> + Send + Sync>;

/// The long-lived server core.
pub struct Server {
    engine: parking_lot::RwLock<RepairEngine>,
    reloader: Option<Reloader>,
    config: ServeConfig,
    metrics: Metrics,
    /// The rule version store: the initially loaded set is version 1; every
    /// promoted reload commits the candidate's canonical document on top.
    store: Mutex<RuleStore>,
    in_flight: AtomicUsize,
    draining: AtomicBool,
}

/// Distinct error-severity diagnostic codes of a report, for the
/// per-code rejection breakdown in `stats`.
fn error_codes(findings: &[er_lint::Finding]) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| f.code.as_str())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

impl Server {
    /// Wrap a loaded engine with a serving configuration.
    pub fn new(engine: RepairEngine, config: ServeConfig) -> Self {
        let metrics = Metrics::new();
        metrics.set_engine_generation(engine.generation());
        let stats = engine.shard_stats();
        metrics.set_shard_stats(
            stats.shards as u64,
            stats.routed,
            stats.broadcast,
            stats.rows_max,
            stats.rows_total,
        );
        // Run the confluence pass once at startup: a certified rule set
        // licenses the commutative repair fold for the engine's lifetime
        // (until an append or reload invalidates the stamp).
        metrics.set_confluence_certified(engine.restamp_confluence());
        let mut store = RuleStore::new();
        store.commit(&engine.rules_json(), "initial load");
        Server {
            engine: parking_lot::RwLock::new(engine),
            reloader: None,
            config,
            metrics,
            store: Mutex::new(store),
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// Configure the `reload` op.
    pub fn with_reloader(mut self, reloader: Reloader) -> Self {
        self.reloader = Some(reloader);
        self
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The serving metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Metrics snapshot including the current queue depth.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics
            .snapshot(self.in_flight.load(Ordering::Relaxed))
    }

    /// Copy the engine's shard counters into the metrics gauges (the same
    /// pattern as the vote-stats gauges: written after ops, so `stats`
    /// stays lock-free).
    fn publish_shard_stats(&self, engine: &RepairEngine) {
        let stats = engine.shard_stats();
        self.metrics.set_shard_stats(
            stats.shards as u64,
            stats.routed,
            stats.broadcast,
            stats.rows_max,
            stats.rows_total,
        );
    }

    /// Whether a graceful drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begin a graceful drain: front-ends stop accepting new work, finish
    /// the requests they have fully read, and close.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Handle one request line. `batch` is the session's reusable row
    /// buffer: `repair`/`append` rows are decoded into it instead of fresh
    /// per-request vectors. Returns the response line (without the trailing
    /// newline) and whether the session should close after sending it.
    pub fn handle_line(&self, line: &str, batch: &mut RowBatch) -> (String, bool) {
        let seen = self.metrics.record_request();
        if self.config.log_every > 0 && seen.is_multiple_of(self.config.log_every) {
            eprintln!("{}", self.snapshot().log_line());
        }
        match proto::parse_request(line, self.config.max_batch_rows, batch) {
            Err(message) => {
                self.metrics.record_error();
                (proto::error(&message), false)
            }
            Ok(Request::Ping) => (proto::ok_ping(), false),
            Ok(Request::Stats) => (proto::ok_stats(&self.snapshot()), false),
            Ok(Request::Shutdown) => {
                self.begin_drain();
                (proto::ok_shutdown(), true)
            }
            Ok(Request::Reload { scope }) => self.handle_reload(scope.as_ref()),
            Ok(Request::Repair) => self.handle_repair(batch.rows()),
            Ok(Request::Append) => self.handle_append(batch.rows()),
            Ok(Request::RepairCsv { path, chunk_bytes }) => {
                self.handle_repair_csv(&path, chunk_bytes)
            }
            Ok(Request::Diff { rules_json, scope }) => {
                self.handle_diff(&rules_json, scope.as_ref())
            }
            Ok(Request::Versions) => (proto::ok_versions(&lock(&self.store)), false),
        }
    }

    fn handle_reload(&self, scope: Option<&EditScope>) -> (String, bool) {
        let Some(reload) = &self.reloader else {
            self.metrics.record_error();
            return (
                proto::error("reload is not configured for this server"),
                false,
            );
        };
        match reload() {
            Ok(engine) => {
                let mut diff = None;
                if self.config.analysis_gate {
                    let report = engine.analyze();
                    if !report.gate_clean() {
                        self.metrics.record_rejected(&error_codes(&report.findings));
                        return (proto::analysis_rejected("reload", &report), false);
                    }
                    // Re-check the certificate against the candidate's own
                    // report: a confluent candidate serves unordered, a
                    // non-confluent one silently falls back to ordered.
                    engine.apply_confluence(&report);
                    // The edit-scope gate: diff the live set against the
                    // candidate's canonical document. ER012 (a verdict
                    // change outside the declared scope) refuses the swap.
                    let candidate_json = engine.rules_json();
                    match self.engine.read().diff_against(&candidate_json, scope) {
                        Ok(report) => {
                            if !report.gate_clean() {
                                self.metrics.record_rejected(&error_codes(&report.findings));
                                return (proto::diff_rejected("reload", &report), false);
                            }
                            diff = Some(report);
                        }
                        Err(e) => {
                            self.metrics.record_error();
                            return (proto::error(&format!("reload diff failed: {e}")), false);
                        }
                    }
                } else {
                    // No gate report to reuse: run the confluence pass
                    // directly so a gate-less reload still re-earns (or
                    // loses) the unordered-fold license.
                    engine.restamp_confluence();
                }
                let rules = engine.num_rules();
                let candidate_json = engine.rules_json();
                self.metrics.set_engine_generation(engine.generation());
                self.metrics
                    .set_confluence_certified(engine.confluence_certified());
                *self.engine.write() = engine;
                self.metrics.record_reload();
                let note = match &diff {
                    Some(report) => match report.certificate() {
                        Some(cert) => format!("promoted: {cert}"),
                        None => format!(
                            "promoted: {} signature(s) change verdict",
                            report.changes.len()
                        ),
                    },
                    None => "promoted without diff gate".to_string(),
                };
                let version = lock(&self.store).commit(&candidate_json, &note);
                (proto::ok_reload(rules, Some(version), diff.as_ref()), false)
            }
            Err(ReloadError::Analysis(report)) => {
                self.metrics.record_rejected(&error_codes(&report.findings));
                (proto::analysis_rejected("reload", &report), false)
            }
            Err(ReloadError::Failed(message)) => {
                self.metrics.record_error();
                (proto::error(&format!("reload failed: {message}")), false)
            }
        }
    }

    fn handle_diff(&self, rules_json: &str, scope: Option<&EditScope>) -> (String, bool) {
        match self.engine.read().diff_against(rules_json, scope) {
            Ok(report) => {
                self.metrics.record_diff();
                (proto::ok_diff(&report), false)
            }
            Err(e) => {
                self.metrics.record_error();
                (proto::error(&e.to_string()), false)
            }
        }
    }

    fn handle_append(&self, rows: &[Vec<Value>]) -> (String, bool) {
        // Appends hold every *shard* write lock (via the append
        // transaction): in-flight repairs finish first, and every later
        // repair sees the delta-updated indexes on every shard. The
        // analysis gate previews the combined grown master under the same
        // locks, so no other append can slip between the check and the
        // commit; the outer engine lock is only read-held, letting the
        // reloader (the sole outer writer) stay exclusive with us.
        let engine = self.engine.read();
        let txn = engine.begin_append();
        let mut gate_report = None;
        if self.config.analysis_gate {
            // A row the preview cannot take will fail the real append with
            // its proper row error; only a clean preview is analyzed.
            if let Some(preview) = txn.preview(rows) {
                let report = engine.analyze_with_master(&preview);
                if !report.gate_clean() {
                    drop(txn);
                    drop(engine);
                    self.metrics.record_rejected(&error_codes(&report.findings));
                    return (proto::analysis_rejected("append", &report), false);
                }
                gate_report = Some(report);
            }
        }
        let result = txn.commit(rows);
        match result {
            Ok(outcome) => {
                self.metrics.record_append();
                self.metrics.set_engine_generation(outcome.generation);
                // Committing invalidated the confluence stamp. The gate's
                // preview report analyzed exactly the combined master this
                // commit produced (same generation), so it can re-earn the
                // stamp; a stale or absent report leaves the engine on the
                // ordered fallback until the next reload.
                if let Some(report) = &gate_report {
                    engine.apply_confluence(report);
                }
                self.metrics
                    .set_confluence_certified(engine.confluence_certified());
                self.publish_shard_stats(&engine);
                drop(engine);
                (proto::ok_append(&outcome), false)
            }
            Err(e) => {
                drop(engine);
                self.metrics.record_error();
                (proto::error(&e.to_string()), false)
            }
        }
    }

    fn handle_repair(&self, rows: &[Vec<Value>]) -> (String, bool) {
        // Admission control: claim an in-flight slot or push back.
        if !self.try_claim_slot() {
            self.metrics.record_overloaded();
            return (proto::overloaded(), false);
        }
        let started = Instant::now();
        let deadline = self.config.deadline.map(|d| started + d);
        // Hold the read guard across the repair *and* the stats read, so the
        // vote-batching gauges reflect the engine that served this request.
        let (result, votes) = {
            let engine = self.engine.read();
            let result = engine.repair(rows, deadline);
            self.publish_shard_stats(&engine);
            (result, engine.vote_stats())
        };
        self.release_slot();
        match result {
            Ok(outcome) => {
                self.metrics
                    .record_repair(started.elapsed(), outcome.fixed());
                self.metrics.set_vote_stats(votes.rows, votes.probes);
                (proto::ok_repair(&outcome), false)
            }
            Err(e) => {
                self.metrics.record_error();
                (proto::error(&e.to_string()), false)
            }
        }
    }

    /// Try to claim one in-flight backpressure slot; false = at capacity.
    fn try_claim_slot(&self) -> bool {
        let depth = self.in_flight.fetch_add(1, Ordering::SeqCst);
        if depth >= self.config.queue_capacity {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Release a previously claimed backpressure slot.
    fn release_slot(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Claim a slot, waiting for one to free up instead of refusing —
    /// used between `repair_csv` chunks, where the file as a whole was
    /// already admitted. Gives up (false) once a drain begins.
    fn claim_slot_waiting(&self) -> bool {
        loop {
            if self.try_claim_slot() {
                return true;
            }
            if self.is_draining() {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stream a server-side CSV through the chunked ingest reader and
    /// repair it chunk by chunk. Admission is decided once, up front (a
    /// bulk file at a full queue is refused like any other request), but
    /// the in-flight slot is *released and re-claimed per chunk* so a long
    /// file cannot starve interactive `repair` requests between chunks.
    /// The configured deadline is applied per chunk — a bounded deadline
    /// bounds each chunk's vote, not the whole (arbitrarily long) file.
    fn handle_repair_csv(&self, path: &str, chunk_bytes: Option<usize>) -> (String, bool) {
        if !self.try_claim_slot() {
            self.metrics.record_overloaded();
            return (proto::overloaded(), false);
        }
        // Between chunks the stream loop claims its own slot; drop the
        // admission claim so it never double-counts.
        self.release_slot();
        let result = self.repair_csv_stream(path, chunk_bytes);
        match result {
            Ok((rows, chunks, fixed)) => (proto::ok_repair_csv(rows, chunks, fixed), false),
            Err(message) => {
                self.metrics.record_error();
                (proto::error(&message), false)
            }
        }
    }

    /// The `repair_csv` streaming loop: returns `(rows, chunks, fixed)`
    /// totals. The CSV header must match the engine's input schema (the
    /// explicit-schema mode of the ingest stream enforces it). Each chunk
    /// takes the engine read lock independently, so reloads and appends can
    /// interleave with a long-running bulk repair.
    fn repair_csv_stream(
        &self,
        path: &str,
        chunk_bytes: Option<usize>,
    ) -> Result<(usize, usize, usize), String> {
        let file = std::fs::File::open(path)
            .map_err(|e| format!("repair_csv: cannot open {path}: {e}"))?;
        let schema = std::sync::Arc::clone(self.engine.read().schema());
        let mut config = IngestConfig {
            format: Format::Csv,
            schema: SchemaMode::Explicit(schema),
            ..IngestConfig::default()
        };
        if let Some(bytes) = chunk_bytes {
            config.chunk.chunk_bytes = bytes;
        }
        let mut stream = RowStream::new("repair_csv", file, &config);
        let mut fixed = 0usize;
        loop {
            let rows = match stream.next_batch() {
                Ok(Some(rows)) => rows,
                Ok(None) => break,
                Err(e) => return Err(format!("repair_csv: {e}")),
            };
            // One backpressure slot per chunk: between chunks the slot is
            // free and interactive repairs can slip in (waiting here, not
            // refusing — the file itself was admitted up front).
            if !self.claim_slot_waiting() {
                return Err("repair_csv: server is draining".into());
            }
            let started = Instant::now();
            let deadline = self.config.deadline.map(|d| started + d);
            let (result, votes) = {
                let engine = self.engine.read();
                let result = engine.repair(&rows, deadline);
                self.publish_shard_stats(&engine);
                (result, engine.vote_stats())
            };
            self.release_slot();
            let outcome = result.map_err(|e| format!("repair_csv: {e}"))?;
            self.metrics
                .record_repair(started.elapsed(), outcome.fixed());
            self.metrics.set_vote_stats(votes.rows, votes.probes);
            fixed += outcome.fixed();
        }
        let stats = stream.stats();
        self.metrics
            .record_ingest(stats.rows as u64, stats.chunks as u64);
        Ok((stats.rows, stats.chunks, fixed))
    }
}

/// One bounded line read.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum LineRead {
    /// A complete line (newline stripped, lossy UTF-8).
    Line(String),
    /// The line exceeded the limit; it was consumed without being buffered.
    TooLong,
    /// End of stream.
    Eof,
}

/// Read one `\n`-terminated line, buffering at most `max` bytes. Oversized
/// lines are drained to their newline so the session can continue — a
/// misbehaving client costs bounded memory, not the connection.
pub(crate) fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a trailing unterminated line still counts as a line.
            return Ok(if overflow {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && buf.len() + pos <= max {
                    buf.extend_from_slice(&chunk[..pos]);
                } else {
                    overflow = true;
                }
                reader.consume(pos + 1);
                return Ok(if overflow {
                    LineRead::TooLong
                } else {
                    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
                });
            }
            None => {
                let len = chunk.len();
                if !overflow {
                    if buf.len() + len <= max {
                        buf.extend_from_slice(chunk);
                    } else {
                        overflow = true;
                        buf.clear();
                    }
                }
                reader.consume(len);
            }
        }
    }
}

/// Pipe mode: serve the line protocol over any reader/writer pair (stdin
/// and stdout in the CLI). Returns when the reader hits EOF or a `shutdown`
/// op is processed; either way every fully-read request has been answered.
pub fn serve_pipe<R: BufRead, W: Write>(
    server: &Server,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<()> {
    // One reusable row buffer for the whole session: request row vectors
    // are decoded into it in place instead of being reallocated per line.
    let mut batch = RowBatch::new();
    loop {
        match read_bounded_line(reader, server.config().max_line_bytes)? {
            LineRead::Eof => break,
            LineRead::TooLong => {
                server.metrics().record_error();
                writeln!(
                    writer,
                    "{}",
                    proto::error(&format!(
                        "line exceeds {} bytes",
                        server.config().max_line_bytes
                    ))
                )?;
                writer.flush()?;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (response, stop) = server.handle_line(&line, &mut batch);
                writeln!(writer, "{response}")?;
                writer.flush()?;
                if stop {
                    break;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reader_splits_lines() {
        let mut r = Cursor::new(b"one\ntwo\nthree".to_vec());
        assert_eq!(
            read_bounded_line(&mut r, 100).unwrap(),
            LineRead::Line("one".into())
        );
        assert_eq!(
            read_bounded_line(&mut r, 100).unwrap(),
            LineRead::Line("two".into())
        );
        // Unterminated trailing line still arrives.
        assert_eq!(
            read_bounded_line(&mut r, 100).unwrap(),
            LineRead::Line("three".into())
        );
        assert_eq!(read_bounded_line(&mut r, 100).unwrap(), LineRead::Eof);
    }

    #[test]
    fn bounded_reader_rejects_and_skips_long_lines() {
        let mut data = vec![b'x'; 50];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut r = Cursor::new(data);
        assert_eq!(read_bounded_line(&mut r, 10).unwrap(), LineRead::TooLong);
        // The oversized line was consumed; the session continues.
        assert_eq!(
            read_bounded_line(&mut r, 10).unwrap(),
            LineRead::Line("ok".into())
        );
    }

    #[test]
    fn bounded_reader_is_lossy_on_invalid_utf8() {
        let mut r = Cursor::new(b"M\xFCnchen\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut r, 100).unwrap(),
            LineRead::Line("M\u{FFFD}nchen".into())
        );
    }

    #[test]
    fn exact_limit_is_allowed() {
        let mut r = Cursor::new(b"12345\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut r, 5).unwrap(),
            LineRead::Line("12345".into())
        );
        let mut r = Cursor::new(b"123456\n".to_vec());
        assert_eq!(read_bounded_line(&mut r, 5).unwrap(), LineRead::TooLong);
    }
}
