//! Serving metrics: counters plus a sliding latency window.
//!
//! Counters are lock-free atomics; repair latencies go into a fixed-size
//! ring (the last [`WINDOW`] requests) from which the `stats` op computes
//! p50/p99. Everything is monotonic except the queue-depth gauge, which the
//! server samples at snapshot time.

use crate::lock;
use serde_json::Value as Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latency window size: large enough for stable tail percentiles, small
/// enough that a snapshot's sort is negligible.
const WINDOW: usize = 4096;

/// Ring buffer of the most recent repair latencies, in microseconds.
struct Reservoir {
    buf: Vec<u64>,
    next: usize,
}

impl Reservoir {
    fn push(&mut self, micros: u64) {
        if self.buf.len() < WINDOW {
            self.buf.push(micros);
        } else {
            self.buf[self.next] = micros;
        }
        self.next = (self.next + 1) % WINDOW;
    }
}

/// Shared serving metrics. One instance per [`crate::Server`], updated from
/// every front-end thread.
pub struct Metrics {
    requests: AtomicU64,
    repairs: AtomicU64,
    repaired_cells: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    reloads: AtomicU64,
    appends: AtomicU64,
    diffs: AtomicU64,
    rejected: AtomicU64,
    ingested_rows: AtomicU64,
    ingest_chunks: AtomicU64,
    /// Gauge, not a counter: the engine's master generation, stored after
    /// every engine-mutating op so `stats` can report it lock-free.
    engine_generation: AtomicU64,
    /// Gauges mirroring the engine's lifetime vote-batching counters
    /// (rows grouped vs. distinct signature probes), stored after every
    /// successful repair so `stats` can report the batching payoff
    /// (`signature_dedup`) lock-free.
    vote_rows: AtomicU64,
    signature_probes: AtomicU64,
    /// Shard gauges mirroring the sharded engine's counters (shard count,
    /// routed/broadcast request rows, fullest-shard and total master rows),
    /// stored after repairs and appends. `shard_imbalance` is computed from
    /// the row gauges at render time.
    shards: AtomicU64,
    shard_routed: AtomicU64,
    shard_broadcast: AtomicU64,
    shard_rows_max: AtomicU64,
    shard_rows_total: AtomicU64,
    /// Gauge (0/1): whether the engine holds a live er-analyze confluence
    /// certificate licensing its arrival-order merge paths. Stored at load
    /// and after every reload/append re-check.
    confluence_certified: AtomicU64,
    /// Per-diagnostic-code breakdown of gate rejections, so `stats` can
    /// attribute *why* promotions were refused (BTreeMap: deterministic
    /// rendering order).
    rejected_by_code: Mutex<BTreeMap<String, u64>>,
    latencies: Mutex<Reservoir>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            repaired_cells: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            diffs: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            ingested_rows: AtomicU64::new(0),
            ingest_chunks: AtomicU64::new(0),
            engine_generation: AtomicU64::new(0),
            vote_rows: AtomicU64::new(0),
            signature_probes: AtomicU64::new(0),
            shards: AtomicU64::new(1),
            shard_routed: AtomicU64::new(0),
            shard_broadcast: AtomicU64::new(0),
            shard_rows_max: AtomicU64::new(0),
            shard_rows_total: AtomicU64::new(0),
            confluence_certified: AtomicU64::new(0),
            rejected_by_code: Mutex::new(BTreeMap::new()),
            latencies: Mutex::new(Reservoir {
                buf: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Count one incoming request; returns the new total (used for the
    /// periodic log line).
    pub fn record_request(&self) -> u64 {
        self.requests.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Count one completed repair with its latency and changed-cell count.
    pub fn record_repair(&self, elapsed: Duration, fixed: usize) {
        self.repairs.fetch_add(1, Ordering::Relaxed);
        self.repaired_cells
            .fetch_add(fixed as u64, Ordering::Relaxed);
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        lock(&self.latencies).push(micros);
    }

    /// Count one request answered with an error response.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request refused with the backpressure response.
    pub fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful engine reload.
    pub fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful master append.
    pub fn record_append(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one served `diff` comparison.
    pub fn record_diff(&self) {
        self.diffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Count the rows and chunks one `repair_csv` op streamed through the
    /// chunked ingest reader.
    pub fn record_ingest(&self, rows: u64, chunks: u64) {
        self.ingested_rows.fetch_add(rows, Ordering::Relaxed);
        self.ingest_chunks.fetch_add(chunks, Ordering::Relaxed);
    }

    /// Count one reload or append refused by an analysis gate, attributing
    /// the rejection to the diagnostic codes that caused it (each distinct
    /// code counts once per rejection).
    pub fn record_rejected(&self, codes: &[&str]) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        if !codes.is_empty() {
            let mut by_code = lock(&self.rejected_by_code);
            for code in codes {
                *by_code.entry((*code).to_string()).or_insert(0) += 1;
            }
        }
    }

    /// Update the engine-generation gauge (after load, reload, or append).
    pub fn set_engine_generation(&self, generation: u64) {
        self.engine_generation.store(generation, Ordering::Relaxed);
    }

    /// Update the vote-batching gauges from the engine's lifetime counters
    /// (after a successful repair).
    pub fn set_vote_stats(&self, rows: u64, probes: u64) {
        self.vote_rows.store(rows, Ordering::Relaxed);
        self.signature_probes.store(probes, Ordering::Relaxed);
    }

    /// Update the shard gauges from the sharded engine's counters (at load
    /// and after repairs/appends).
    pub fn set_shard_stats(
        &self,
        shards: u64,
        routed: u64,
        broadcast: u64,
        rows_max: u64,
        rows_total: u64,
    ) {
        self.shards.store(shards.max(1), Ordering::Relaxed);
        self.shard_routed.store(routed, Ordering::Relaxed);
        self.shard_broadcast.store(broadcast, Ordering::Relaxed);
        self.shard_rows_max.store(rows_max, Ordering::Relaxed);
        self.shard_rows_total.store(rows_total, Ordering::Relaxed);
    }

    /// Update the confluence-certificate gauge (at load and after every
    /// reload/append re-check of the certificate).
    pub fn set_confluence_certified(&self, certified: bool) {
        self.confluence_certified
            .store(u64::from(certified), Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting (counters are read
    /// individually; exactness across counters is not required).
    pub fn snapshot(&self, queue_depth: usize) -> Snapshot {
        let (p50_us, p99_us) = {
            let reservoir = lock(&self.latencies);
            let mut sorted = reservoir.buf.clone();
            drop(reservoir);
            sorted.sort_unstable();
            (percentile(&sorted, 0.50), percentile(&sorted, 0.99))
        };
        Snapshot {
            requests: self.requests.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            repaired_cells: self.repaired_cells.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            diffs: self.diffs.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            ingested_rows: self.ingested_rows.load(Ordering::Relaxed),
            ingest_chunks: self.ingest_chunks.load(Ordering::Relaxed),
            rejected_by_code: lock(&self.rejected_by_code)
                .iter()
                .map(|(code, n)| (code.clone(), *n))
                .collect(),
            engine_generation: self.engine_generation.load(Ordering::Relaxed),
            vote_rows: self.vote_rows.load(Ordering::Relaxed),
            signature_probes: self.signature_probes.load(Ordering::Relaxed),
            shards: self.shards.load(Ordering::Relaxed),
            shard_routed: self.shard_routed.load(Ordering::Relaxed),
            shard_broadcast: self.shard_broadcast.load(Ordering::Relaxed),
            shard_rows_max: self.shard_rows_max.load(Ordering::Relaxed),
            shard_rows_total: self.shard_rows_total.load(Ordering::Relaxed),
            confluence_certified: self.confluence_certified.load(Ordering::Relaxed) != 0,
            queue_depth,
            p50_us,
            p99_us,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted window; 0 when empty.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One point-in-time view of the metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Total requests received (all ops, including rejected ones).
    pub requests: u64,
    /// Completed repair requests.
    pub repairs: u64,
    /// Total cells those repairs would change.
    pub repaired_cells: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Requests refused with the backpressure response.
    pub overloaded: u64,
    /// Successful engine reloads.
    pub reloads: u64,
    /// Successful master appends.
    pub appends: u64,
    /// Served `diff` comparisons.
    pub diffs: u64,
    /// Reloads and appends refused by the static-analysis gate.
    pub rejected: u64,
    /// Rows streamed through `repair_csv`'s chunked ingest reader.
    pub ingested_rows: u64,
    /// Chunks those streamed rows arrived in.
    pub ingest_chunks: u64,
    /// Gate rejections attributed per diagnostic code, sorted by code.
    pub rejected_by_code: Vec<(String, u64)>,
    /// The engine's master generation at the last engine-mutating op.
    pub engine_generation: u64,
    /// Rows that entered signature grouping across all repairs (engine
    /// lifetime counter, sampled at the last successful repair).
    pub vote_rows: u64,
    /// Distinct-signature index probes those rows collapsed to.
    pub signature_probes: u64,
    /// Master partitions the engine serves from (1 = unsharded).
    pub shards: u64,
    /// Request rows routed to exactly one shard (engine lifetime counter).
    pub shard_routed: u64,
    /// Request rows broadcast to every shard (NULL routing keys).
    pub shard_broadcast: u64,
    /// Master rows on the fullest shard.
    pub shard_rows_max: u64,
    /// Master rows across all shards.
    pub shard_rows_total: u64,
    /// Whether a live confluence certificate licenses the engine's
    /// arrival-order merge paths.
    pub confluence_certified: bool,
    /// Repair requests in flight when the snapshot was taken.
    pub queue_depth: usize,
    /// Median repair latency over the window, microseconds.
    pub p50_us: u64,
    /// 99th-percentile repair latency over the window, microseconds.
    pub p99_us: u64,
}

impl Snapshot {
    /// Rows handled per distinct signature probe — the batching payoff of
    /// the signature-batched repair path on live traffic (`0.0` before any
    /// repair). Computed, not stored, so the snapshot stays `Eq`.
    pub fn signature_dedup(&self) -> f64 {
        if self.signature_probes == 0 {
            0.0
        } else {
            self.vote_rows as f64 / self.signature_probes as f64
        }
    }

    /// Master placement skew: `shard_rows_max * shards / shard_rows_total`.
    /// 1.0 is a perfect spread; equal to `shards` when everything landed on
    /// one shard (e.g. the degenerate no-common-LHS-pair plan). Computed,
    /// not stored, so the snapshot stays `Eq`.
    pub fn shard_imbalance(&self) -> f64 {
        if self.shard_rows_total == 0 {
            1.0
        } else {
            (self.shard_rows_max * self.shards) as f64 / self.shard_rows_total as f64
        }
    }

    /// JSON object for the `stats` response.
    pub fn to_value(&self) -> Json {
        Json::Object(vec![
            ("requests".to_string(), Json::UInt(self.requests)),
            ("repairs".to_string(), Json::UInt(self.repairs)),
            (
                "repaired_cells".to_string(),
                Json::UInt(self.repaired_cells),
            ),
            ("errors".to_string(), Json::UInt(self.errors)),
            ("overloaded".to_string(), Json::UInt(self.overloaded)),
            ("reloads".to_string(), Json::UInt(self.reloads)),
            ("appends".to_string(), Json::UInt(self.appends)),
            ("diffs".to_string(), Json::UInt(self.diffs)),
            ("rejected".to_string(), Json::UInt(self.rejected)),
            ("ingested_rows".to_string(), Json::UInt(self.ingested_rows)),
            ("ingest_chunks".to_string(), Json::UInt(self.ingest_chunks)),
            (
                "rejected_by_code".to_string(),
                Json::Object(
                    self.rejected_by_code
                        .iter()
                        .map(|(code, n)| (code.clone(), Json::UInt(*n)))
                        .collect(),
                ),
            ),
            (
                "engine_generation".to_string(),
                Json::UInt(self.engine_generation),
            ),
            ("vote_rows".to_string(), Json::UInt(self.vote_rows)),
            (
                "signature_probes".to_string(),
                Json::UInt(self.signature_probes),
            ),
            (
                "signature_dedup".to_string(),
                Json::Float(self.signature_dedup()),
            ),
            ("shards".to_string(), Json::UInt(self.shards)),
            ("shard_routed".to_string(), Json::UInt(self.shard_routed)),
            (
                "shard_broadcast".to_string(),
                Json::UInt(self.shard_broadcast),
            ),
            (
                "shard_imbalance".to_string(),
                Json::Float(self.shard_imbalance()),
            ),
            (
                "confluence_certified".to_string(),
                Json::Bool(self.confluence_certified),
            ),
            (
                "queue_depth".to_string(),
                Json::UInt(self.queue_depth as u64),
            ),
            ("p50_us".to_string(), Json::UInt(self.p50_us)),
            ("p99_us".to_string(), Json::UInt(self.p99_us)),
        ])
    }

    /// One human-readable line for the periodic stderr log.
    pub fn log_line(&self) -> String {
        format!(
            "serve: requests={} repairs={} fixed={} errors={} overloaded={} reloads={} appends={} rejected={} gen={} dedup={:.1} queue={} p50={}us p99={}us",
            self.requests,
            self.repairs,
            self.repaired_cells,
            self.errors,
            self.overloaded,
            self.reloads,
            self.appends,
            self.rejected,
            self.engine_generation,
            self.signature_dedup(),
            self.queue_depth,
            self.p50_us,
            self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_lint::DiagnosticCode;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_request();
        m.record_request();
        m.record_repair(Duration::from_micros(100), 3);
        m.record_error();
        m.record_overloaded();
        let s = m.snapshot(1);
        assert_eq!(s.requests, 2);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.repaired_cells, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.p50_us, 100);
    }

    #[test]
    fn maintenance_counters_and_generation_gauge() {
        let m = Metrics::new();
        m.record_reload();
        m.record_append();
        m.record_append();
        m.record_diff();
        m.record_rejected(&[DiagnosticCode::Er009.as_str()]);
        m.record_rejected(&[
            DiagnosticCode::Er009.as_str(),
            DiagnosticCode::Er012.as_str(),
        ]);
        m.set_engine_generation(42);
        let s = m.snapshot(0);
        assert_eq!(s.reloads, 1);
        assert_eq!(s.appends, 2);
        assert_eq!(s.diffs, 1);
        assert_eq!(s.rejected, 2);
        assert_eq!(
            s.rejected_by_code,
            vec![
                (DiagnosticCode::Er009.to_string(), 2),
                (DiagnosticCode::Er012.to_string(), 1)
            ]
        );
        assert_eq!(s.engine_generation, 42);
        // The gauge tracks the latest value, it does not accumulate.
        m.set_engine_generation(7);
        assert_eq!(m.snapshot(0).engine_generation, 7);
        let line = serde_json::to_string(&s.to_value()).unwrap();
        assert!(line.contains("\"appends\""));
        assert!(line.contains("\"engine_generation\""));
        assert!(line.contains("\"rejected_by_code\":{\"ER009\":2,\"ER012\":1}"));
    }

    #[test]
    fn vote_stats_gauges_and_dedup_ratio() {
        let m = Metrics::new();
        let fresh = m.snapshot(0);
        assert_eq!(fresh.vote_rows, 0);
        assert_eq!(fresh.signature_probes, 0);
        assert_eq!(fresh.signature_dedup(), 0.0);
        m.set_vote_stats(120, 30);
        let s = m.snapshot(0);
        assert_eq!(s.vote_rows, 120);
        assert_eq!(s.signature_probes, 30);
        assert!((s.signature_dedup() - 4.0).abs() < 1e-12);
        // Gauges track the latest engine counters, they do not accumulate.
        m.set_vote_stats(200, 40);
        assert_eq!(m.snapshot(0).vote_rows, 200);
        let line = serde_json::to_string(&s.to_value()).unwrap();
        assert!(line.contains("\"vote_rows\":120"));
        assert!(line.contains("\"signature_probes\":30"));
        assert!(line.contains("\"signature_dedup\":4"));
        assert!(s.log_line().contains("dedup=4.0"));
    }

    #[test]
    fn shard_gauges_and_imbalance() {
        let m = Metrics::new();
        let fresh = m.snapshot(0);
        assert_eq!(fresh.shards, 1);
        assert_eq!(fresh.shard_imbalance(), 1.0, "empty master reports 1.0");
        // 4 shards, fullest holds 60 of 120 rows: imbalance 2.0.
        m.set_shard_stats(4, 100, 7, 60, 120);
        let s = m.snapshot(0);
        assert_eq!(s.shards, 4);
        assert_eq!(s.shard_routed, 100);
        assert_eq!(s.shard_broadcast, 7);
        assert!((s.shard_imbalance() - 2.0).abs() < 1e-12);
        let line = serde_json::to_string(&s.to_value()).unwrap();
        assert!(line.contains("\"shards\":4"));
        assert!(line.contains("\"shard_routed\":100"));
        assert!(line.contains("\"shard_broadcast\":7"));
        assert!(line.contains("\"shard_imbalance\":2"));
        // Gauges track the latest engine counters, they do not accumulate.
        m.set_shard_stats(4, 120, 9, 30, 120);
        let s = m.snapshot(0);
        assert_eq!(s.shard_routed, 120);
        assert!((s.shard_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confluence_gauge_tracks_the_latest_verdict() {
        let m = Metrics::new();
        assert!(!m.snapshot(0).confluence_certified, "uncertified at birth");
        m.set_confluence_certified(true);
        let s = m.snapshot(0);
        assert!(s.confluence_certified);
        let line = serde_json::to_string(&s.to_value()).unwrap();
        assert!(line.contains("\"confluence_certified\":true"));
        m.set_confluence_certified(false);
        let line = serde_json::to_string(&m.snapshot(0).to_value()).unwrap();
        assert!(line.contains("\"confluence_certified\":false"));
    }

    #[test]
    fn ingest_counters_accumulate() {
        let m = Metrics::new();
        m.record_ingest(1000, 4);
        m.record_ingest(24, 1);
        let s = m.snapshot(0);
        assert_eq!(s.ingested_rows, 1024);
        assert_eq!(s.ingest_chunks, 5);
        let line = serde_json::to_string(&s.to_value()).unwrap();
        assert!(line.contains("\"ingested_rows\":1024"));
        assert!(line.contains("\"ingest_chunks\":5"));
    }

    #[test]
    fn percentiles_over_the_window() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record_repair(Duration::from_micros(us), 0);
        }
        let s = m.snapshot(0);
        assert_eq!(s.p50_us, 51); // nearest-rank on 1..=100
        assert_eq!(s.p99_us, 99);
    }

    #[test]
    fn window_is_bounded() {
        let m = Metrics::new();
        for _ in 0..(WINDOW + 500) {
            m.record_repair(Duration::from_micros(7), 0);
        }
        assert_eq!(lock(&m.latencies).buf.len(), WINDOW);
        assert_eq!(m.snapshot(0).p99_us, 7);
    }

    #[test]
    fn empty_window_reports_zero() {
        let s = Metrics::new().snapshot(0);
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p99_us, 0);
    }

    #[test]
    fn snapshot_serializes() {
        let s = Metrics::new().snapshot(0);
        let line = serde_json::to_string(&s.to_value()).unwrap();
        assert!(line.contains("\"requests\""));
        assert!(!s.log_line().is_empty());
    }
}
