//! The warmed repair engine behind every front-end.
//!
//! [`RepairEngine`] binds the long-lived state together: the input schema
//! (incoming rows must match its attribute order), the shared value pool,
//! and an [`er_incr::IncrEngine`] whose master-side group indexes were
//! built once at load time. A `repair` call materializes the incoming rows
//! as a throwaway [`Relation`] over the *shared* pool — unseen values are
//! interned as fresh codes that by construction match nothing in the master
//! indexes, which is exactly the right semantics for foreign data — and
//! runs the certainty-score vote of §V-B2 against the warm indexes. An
//! `append` call grows the master in place: the warmed indexes are
//! delta-updated rather than rebuilt, and the engine's generation counter
//! advances so `stats` (and the ER007 lint) can report rule staleness.

use er_analyze::{
    analyze, analyze_json, diff_json, AnalysisReport, AnalyzeConfig, DiffReport, EditScope,
};
use er_incr::{AppendOutcome, IncrCounters};
use er_rules::{
    rules_from_json, rules_to_json, BatchError, EditingRule, Measures, SchemaMatch, TargetRules,
    Task, VoteStats,
};
use er_shard::{AppendGuard, ShardStats, ShardedEngine};
use er_table::{AttrId, Pool, Relation, Schema, Value};
use std::sync::Arc;
use std::time::Instant;

/// One cell a repair would change.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedCell {
    /// Row index within the request batch.
    pub row: usize,
    /// Target attribute name (the engine's `Y`).
    pub attr: String,
    /// The repaired value, rendered the way the CSV writer renders it.
    pub value: String,
    /// Accumulated certainty score of the winning candidate.
    pub score: f64,
}

/// The result of repairing one batch.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Number of rows in the batch.
    pub rows: usize,
    /// Cells whose predicted value differs from the value sent (predictions
    /// that merely confirm the current value are not repairs).
    pub cells: Vec<RepairedCell>,
}

impl RepairOutcome {
    /// Number of cells a repair would change.
    pub fn fixed(&self) -> usize {
        self.cells.len()
    }
}

/// Errors from building or running a [`RepairEngine`].
#[derive(Debug)]
pub enum EngineError {
    /// The rule set failed to parse or resolve against the task.
    Rules(String),
    /// A batch-level failure from the underlying repairer.
    Batch(BatchError),
    /// One request row could not be mapped onto the input schema.
    Row {
        /// Index of the offending row within the batch.
        row: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The rule set failed the static-analysis gate (ER008 cycle or ER009
    /// conflict); the full report carries the certificates and witnesses.
    Analysis(Box<AnalysisReport>),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Rules(msg) => write!(f, "rule set rejected: {msg}"),
            EngineError::Batch(e) => write!(f, "batch repair failed: {e}"),
            EngineError::Row { row, message } => write!(f, "row {row}: {message}"),
            EngineError::Analysis(report) => write!(
                f,
                "rule set rejected by static analysis: {} error{}",
                report.errors(),
                if report.errors() == 1 { "" } else { "s" },
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// A loaded, warmed repair engine: input schema + shared pool + a sharded
/// batch repairer with pre-built master indexes. With one shard (the
/// default) this is exactly the unsharded engine; with N it partitions the
/// master by the deterministic LHS routing hash and stays bitwise identical
/// (see `er-shard`).
pub struct RepairEngine {
    schema: Arc<Schema>,
    pool: Arc<Pool>,
    matching: SchemaMatch,
    /// Canonical copy of the installed rules/target: immutable for the
    /// engine's lifetime, so analysis and JSON rendering need no shard locks.
    rules: Vec<EditingRule>,
    target: (AttrId, AttrId),
    engine: ShardedEngine,
}

impl std::fmt::Debug for RepairEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairEngine")
            .field("schema", &self.schema.name())
            .field("engine", &self.engine)
            .finish()
    }
}

impl RepairEngine {
    /// Build a single-shard engine from already-resolved rules. The task
    /// supplies the input schema, the shared pool, the master relation and
    /// the target.
    pub fn new(task: &Task, rules: Vec<EditingRule>, threads: usize) -> Result<Self, EngineError> {
        Self::with_shards(task, rules, threads, 1)
    }

    /// Build an engine over `shards` master partitions (0 and 1 both mean
    /// unsharded). Placement and routing follow the common LHS routing pair
    /// of the rule set; see `er-shard` for the exactness argument.
    pub fn with_shards(
        task: &Task,
        rules: Vec<EditingRule>,
        threads: usize,
        shards: usize,
    ) -> Result<Self, EngineError> {
        let engine = ShardedEngine::new(
            task.master().clone(),
            task.target(),
            rules.clone(),
            threads,
            shards,
        )
        .map_err(EngineError::Batch)?;
        Ok(RepairEngine {
            schema: Arc::clone(task.input().schema()),
            pool: Arc::clone(task.input().pool()),
            matching: task.matching().clone(),
            rules,
            target: task.target(),
            engine,
        })
    }

    /// Build an engine from a rule-set JSON document (the format
    /// [`er_rules::rules_to_json`] writes and the miners emit).
    pub fn from_json(task: &Task, rules_json: &str, threads: usize) -> Result<Self, EngineError> {
        Self::from_json_sharded(task, rules_json, threads, 1)
    }

    /// [`RepairEngine::from_json`] over `shards` master partitions.
    pub fn from_json_sharded(
        task: &Task,
        rules_json: &str,
        threads: usize,
        shards: usize,
    ) -> Result<Self, EngineError> {
        let rules =
            rules_from_json(rules_json, task).map_err(|e| EngineError::Rules(e.to_string()))?;
        Self::with_shards(task, rules, threads, shards)
    }

    /// [`RepairEngine::from_json`] behind the static-analysis gate: the
    /// document is analyzed *before* single-target resolution (so a
    /// multi-target document with an ER008 cycle is diagnosed as such, not
    /// as a target mismatch), and a set with analysis errors is rejected
    /// with [`EngineError::Analysis`] carrying the full report.
    pub fn from_json_gated(
        task: &Task,
        rules_json: &str,
        threads: usize,
    ) -> Result<Self, EngineError> {
        Self::from_json_gated_sharded(task, rules_json, threads, 1)
    }

    /// [`RepairEngine::from_json_gated`] over `shards` master partitions.
    pub fn from_json_gated_sharded(
        task: &Task,
        rules_json: &str,
        threads: usize,
        shards: usize,
    ) -> Result<Self, EngineError> {
        let report = analyze_json(rules_json, task, &AnalyzeConfig::with_threads(threads))
            .map_err(EngineError::Rules)?;
        if !report.gate_clean() {
            return Err(EngineError::Analysis(Box::new(report)));
        }
        Self::from_json_sharded(task, rules_json, threads, shards)
    }

    /// Number of loaded rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Number of pre-built master-side group indexes (identical per shard).
    pub fn num_indexes(&self) -> usize {
        self.engine.read_view().num_indexes()
    }

    /// The input schema incoming rows must follow.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// A consistent snapshot of the full master relation the warmed indexes
    /// cover, rows in global arrival order (reassembled across shards under
    /// all shard read locks).
    pub fn master_snapshot(&self) -> Relation {
        self.engine.read_view().combined_master()
    }

    /// Number of master partitions.
    pub fn shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// Aggregate shard counters (routing, broadcast, placement skew).
    pub fn shard_stats(&self) -> ShardStats {
        self.engine.shard_stats()
    }

    /// Statically analyze the loaded rule set against the engine's current
    /// master (termination, conflicts, confluence, reachability — see
    /// `er-analyze`).
    pub fn analyze(&self) -> AnalysisReport {
        self.analyze_with_master(&self.master_snapshot())
    }

    /// Whether a live confluence certificate currently licenses the
    /// engines' arrival-order merge paths — the `confluence_certified`
    /// field of the serve `stats` op.
    pub fn confluence_certified(&self) -> bool {
        self.engine.confluence_certified()
    }

    /// Install (or drop) the arrival-order license from an analysis report
    /// already computed for this engine's rules and master: a certified
    /// confluence pass over the matching rule count stamps every shard;
    /// anything else clears any existing stamp. Returns whether the
    /// license is now held. The generation check inside the stamp refuses
    /// reports that raced with an append.
    pub fn apply_confluence(&self, report: &AnalysisReport) -> bool {
        let cert = &report.confluence;
        if cert.certified && cert.num_rules == self.rules.len() {
            self.engine.set_confluence_stamp(cert.generation)
        } else {
            self.engine.clear_confluence_stamp();
            false
        }
    }

    /// Re-run the confluence pass against the current master and install
    /// or drop the arrival-order license accordingly — the re-check serve
    /// performs at startup and after every `reload`/`append`.
    pub fn restamp_confluence(&self) -> bool {
        self.apply_confluence(&self.analyze())
    }

    /// [`RepairEngine::analyze`] against an explicit master relation — used
    /// by the serve `append` gate to analyze a preview of the grown master
    /// before committing the rows.
    pub fn analyze_with_master(&self, master: &Relation) -> AnalysisReport {
        let targets = [TargetRules {
            target: self.target,
            rules: self.rules.clone(),
        }];
        analyze(&self.schema, master, &targets, &AnalyzeConfig::default())
    }

    /// A task equivalent to the one the engine was loaded with, rebuilt from
    /// the engine's own state (empty input over the live schema and pool —
    /// neither the diff pass nor portable resolution reads input *data*).
    fn probe_task(&self) -> Task {
        Task::new(
            Relation::empty(Arc::clone(&self.schema), Arc::clone(&self.pool)),
            self.master_snapshot(),
            self.matching.clone(),
            self.target,
        )
    }

    /// The live rule set rendered back to the portable JSON document format
    /// (the canonical bytes committed to the version store).
    pub fn rules_json(&self) -> String {
        let rules: Vec<(EditingRule, Measures)> = self
            .rules
            .iter()
            .map(|r| (r.clone(), Measures::zero()))
            .collect();
        rules_to_json(&rules, &self.probe_task())
    }

    /// Compute the edit scope of replacing the live rule set with
    /// `candidate_json` (a portable rule-set document), against the engine's
    /// current master. With a declared `scope`, verdict changes outside it
    /// are ER012 errors and [`DiffReport::gate_clean`] fails — the serve
    /// `reload` gate refuses such a promotion.
    pub fn diff_against(
        &self,
        candidate_json: &str,
        scope: Option<&EditScope>,
    ) -> Result<DiffReport, EngineError> {
        diff_json(
            &self.rules_json(),
            candidate_json,
            &self.probe_task(),
            scope,
            &AnalyzeConfig::default(),
        )
        .map_err(EngineError::Rules)
    }

    /// Name of the target attribute `Y` repairs are written to.
    pub fn target_attr(&self) -> &str {
        &self.schema.attr(self.target.0).name
    }

    /// Current master generation (rows the master has grown by since it was
    /// first built), aggregated across shards.
    pub fn generation(&self) -> u64 {
        self.engine.read_view().generation()
    }

    /// How many rows the master has grown since the rule set was installed.
    pub fn staleness(&self) -> u64 {
        self.engine.read_view().staleness()
    }

    /// Lifetime incremental-vs-rebuild counters, summed across shards.
    pub fn counters(&self) -> IncrCounters {
        self.engine.read_view().counters()
    }

    /// Lifetime vote-batching counters (rows grouped vs. distinct signature
    /// probes), summed across shards — the `signature_dedup` payoff the
    /// `stats` op reports. Exact: every routed row is grouped on exactly one
    /// shard and NULL-keyed rows on none.
    pub fn vote_stats(&self) -> VoteStats {
        self.engine.read_view().vote_stats()
    }

    /// Append rows (master-schema attribute order) to the master, updating
    /// the warmed indexes in place. All-or-nothing across all shards: a bad
    /// row rejects the whole batch and leaves every shard unchanged.
    pub fn append(&self, rows: &[Vec<Value>]) -> Result<AppendOutcome, EngineError> {
        self.begin_append().commit(rows)
    }

    /// Take every shard write lock for a gated append: the caller can
    /// preview the combined post-append master for the analysis gate and
    /// then commit under the *same* locks — no TOCTOU window between gate
    /// and mutation, and readers never observe a partial fan-out.
    pub fn begin_append(&self) -> AppendTxn<'_> {
        AppendTxn {
            guard: self.engine.begin_append(),
        }
    }

    /// Repair one batch of rows (input-schema attribute order). With a
    /// deadline, the vote is abandoned between rule chunks once the clock
    /// expires.
    pub fn repair(
        &self,
        rows: &[Vec<Value>],
        deadline: Option<Instant>,
    ) -> Result<RepairOutcome, EngineError> {
        let mut batch = Relation::empty(Arc::clone(&self.schema), Arc::clone(&self.pool));
        for (i, row) in rows.iter().enumerate() {
            batch.push_row_ref(row).map_err(|e| EngineError::Row {
                row: i,
                message: e.to_string(),
            })?;
        }
        let report = self
            .engine
            .repair_batch(&batch, deadline)
            .map_err(EngineError::Batch)?;
        let (y, _) = self.target;
        let attr = self.schema.attr(y).name.clone();
        let mut cells = Vec::new();
        for (row, pred) in report.predictions.iter().enumerate() {
            let Some(code) = pred else {
                continue;
            };
            if *code == batch.code(row, y) {
                continue;
            }
            cells.push(RepairedCell {
                row,
                attr: attr.clone(),
                value: self.pool.value(*code).render().into_owned(),
                score: report.scores[row],
            });
        }
        Ok(RepairOutcome {
            rows: rows.len(),
            cells,
        })
    }
}

/// An in-progress append holding every shard write lock (see
/// [`RepairEngine::begin_append`]).
pub struct AppendTxn<'a> {
    guard: AppendGuard<'a>,
}

impl AppendTxn<'_> {
    /// The combined master with `rows` appended — the analysis-gate
    /// preview. `None` if any row fails schema validation; committing then
    /// reports the per-row error.
    pub fn preview(&self, rows: &[Vec<Value>]) -> Option<Relation> {
        self.guard.preview(rows)
    }

    /// Commit the rows to their home shards, all-or-nothing.
    pub fn commit(self, rows: &[Vec<Value>]) -> Result<AppendOutcome, EngineError> {
        self.guard.commit(rows).map_err(|e| match e {
            BatchError::AppendRow { row, message } => EngineError::Row { row, message },
            other => EngineError::Batch(other),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_rules::SchemaMatch;
    use er_table::{Attribute, Pool, RelationBuilder};

    pub(crate) fn covid_task() -> Task {
        let pool = Arc::new(Pool::new());
        let in_schema = Arc::new(Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ));
        let m_schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let s = Value::str;
        let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
        b.push_row(vec![s("HZ"), Value::Null]).unwrap();
        let input = b.finish();
        let mut bm = RelationBuilder::new(m_schema, pool);
        bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
        bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
        let master = bm.finish();
        Task::new(
            input,
            master,
            SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
            (1, 1),
        )
    }

    fn engine() -> RepairEngine {
        let task = covid_task();
        let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        RepairEngine::new(&task, rules, 0).unwrap()
    }

    #[test]
    fn repairs_a_batch_of_external_rows() {
        let e = engine();
        let rows = vec![
            vec![Value::str("HZ"), Value::Null],
            vec![Value::str("BJ"), Value::Null],
            vec![Value::str("Nowhere"), Value::Null],
        ];
        let out = e.repair(&rows, None).unwrap();
        assert_eq!(out.rows, 3);
        assert_eq!(out.fixed(), 2);
        assert_eq!(out.cells[0].row, 0);
        assert_eq!(out.cells[0].value, "patient");
        assert_eq!(out.cells[1].row, 1);
        assert_eq!(out.cells[1].value, "imports");
        assert_eq!(out.cells[0].attr, "Case");
    }

    #[test]
    fn confirming_predictions_are_not_fixes() {
        let e = engine();
        let rows = vec![vec![Value::str("HZ"), Value::str("patient")]];
        let out = e.repair(&rows, None).unwrap();
        assert_eq!(out.fixed(), 0);
    }

    #[test]
    fn wrong_arity_rows_are_row_errors() {
        let e = engine();
        let rows = vec![vec![Value::str("HZ"), Value::Null], vec![Value::str("BJ")]];
        let err = e.repair(&rows, None).unwrap_err();
        match err {
            EngineError::Row { row, .. } => assert_eq!(row, 1),
            other => panic!("expected a row error, got {other:?}"),
        }
    }

    #[test]
    fn unseen_values_intern_without_matching_anything() {
        let e = engine();
        let before = e.pool.len();
        let rows = vec![vec![Value::str("Atlantis"), Value::Null]];
        let out = e.repair(&rows, None).unwrap();
        assert_eq!(out.fixed(), 0);
        assert!(e.pool.len() > before, "foreign value should intern");
    }

    #[test]
    fn expired_deadline_is_a_batch_error() {
        let e = engine();
        let rows = vec![vec![Value::str("HZ"), Value::Null]];
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let err = e.repair(&rows, Some(expired)).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Batch(BatchError::DeadlineExceeded)
        ));
    }

    #[test]
    fn append_updates_the_served_vote() {
        let e = engine();
        let rows = vec![vec![Value::str("SZ"), Value::Null]];
        assert_eq!(e.repair(&rows, None).unwrap().fixed(), 0);
        let g0 = e.generation();
        let out = e
            .append(&[
                vec![Value::str("SZ"), Value::str("no symptoms")],
                vec![Value::str("SZ"), Value::str("no symptoms")],
            ])
            .unwrap();
        assert_eq!(out.appended, 2);
        assert_eq!(out.generation, g0 + 2);
        assert_eq!(e.staleness(), 2);
        assert_eq!(e.counters().incremental_updates, 1);
        let fixed = e.repair(&rows, None).unwrap();
        assert_eq!(fixed.fixed(), 1);
        assert_eq!(fixed.cells[0].value, "no symptoms");
    }

    #[test]
    fn append_rejects_bad_rows_atomically() {
        let e = engine();
        let g0 = e.generation();
        let err = e
            .append(&[
                vec![Value::str("SZ"), Value::str("no symptoms")],
                vec![Value::str("too-short")],
            ])
            .unwrap_err();
        match err {
            EngineError::Row { row, .. } => assert_eq!(row, 1),
            other => panic!("expected a row error, got {other:?}"),
        }
        assert_eq!(e.generation(), g0);
    }

    #[test]
    fn er010_reachability_refires_across_append_generations() {
        use er_lint::DiagnosticCode;
        use er_rules::Condition;
        let task = covid_task();
        let sz = task.input().pool().intern(Value::str("SZ"));
        // City → Case only where City = "SZ": dead against the load-time
        // master (no SZ row), so the analysis warns ER010 — and the warning
        // must clear once an append gives the pattern master support.
        let rules = vec![EditingRule::new(
            vec![(0, 0)],
            (1, 1),
            vec![Condition::eq(0, sz)],
        )];
        let e = RepairEngine::new(&task, rules, 0).unwrap();
        let report = e.analyze();
        assert_eq!(report.unreachable.len(), 1);
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == DiagnosticCode::Er010));
        assert!(report.gate_clean(), "ER010 is a warning, not a gate error");
        let g0 = e.generation();
        e.append(&[vec![Value::str("SZ"), Value::str("no symptoms")]])
            .unwrap();
        let report = e.analyze();
        assert_eq!(
            report.generation,
            g0 + 1,
            "analysis must see the new generation"
        );
        assert!(
            report.unreachable.is_empty(),
            "the appended SZ row revives the rule: {:?}",
            report.unreachable
        );
        assert!(report
            .findings
            .iter()
            .all(|f| f.code != DiagnosticCode::Er010));
        // The revived rule actually serves.
        let out = e
            .repair(&[vec![Value::str("SZ"), Value::Null]], None)
            .unwrap();
        assert_eq!(out.fixed(), 1);
        assert_eq!(out.cells[0].value, "no symptoms");
    }

    #[test]
    fn diff_against_certifies_the_live_set_and_flags_narrowing() {
        use er_analyze::EditScope;
        let e = engine();
        // The engine's own document is equivalent by construction.
        let report = e.diff_against(&e.rules_json(), None).unwrap();
        assert!(report.equivalent());
        assert!(report.certificate().is_some());
        // Narrowing the rule to City="HZ" drops BJ's repair: one change,
        // and with a declared HZ-only scope it is an ER012 error.
        let narrowed = r#"[{"lhs":[["City","City"]],"target":["Case","Infection"],
            "pattern":[{"Eq":{"attr":"City","value":"HZ","numeric":false}}],"measures":null}]"#;
        let report = e.diff_against(narrowed, None).unwrap();
        assert_eq!(report.changes.len(), 1);
        assert!(report.gate_clean(), "no scope declared, no ER012");
        let scope = EditScope::from_json(r#"{"City":"HZ"}"#).unwrap();
        let report = e.diff_against(narrowed, Some(&scope)).unwrap();
        assert_eq!(report.errors(), 1);
        assert!(!report.gate_clean());
    }

    #[test]
    fn sharded_engines_repair_and_append_like_the_single_engine() {
        let task = covid_task();
        let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        let single = RepairEngine::new(&task, rules.clone(), 0).unwrap();
        let sharded = RepairEngine::with_shards(&task, rules, 0, 4).unwrap();
        assert_eq!(sharded.shards(), 4);
        let rows = vec![
            vec![Value::str("HZ"), Value::Null],
            vec![Value::str("BJ"), Value::Null],
            vec![Value::Null, Value::Null], // broadcast row
        ];
        let a = single.repair(&rows, None).unwrap();
        let b = sharded.repair(&rows, None).unwrap();
        assert_eq!(a.cells, b.cells);
        assert_eq!(single.generation(), sharded.generation());
        let extra = vec![vec![Value::str("SZ"), Value::str("no symptoms")]];
        let oa = single.append(&extra).unwrap();
        let ob = sharded.append(&extra).unwrap();
        assert_eq!(oa, ob);
        let stats = sharded.shard_stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.broadcast, 1);
        assert_eq!(stats.routed, 2);
        // The gate preview sees the combined master in arrival order.
        let txn = sharded.begin_append();
        let preview = txn.preview(&extra).unwrap();
        assert_eq!(preview.num_rows(), 6);
        drop(txn);
        let snap = sharded.master_snapshot();
        let want = single.master_snapshot();
        assert_eq!(snap.num_rows(), want.num_rows());
        for row in 0..snap.num_rows() {
            for attr in 0..snap.num_attrs() {
                assert_eq!(snap.code(row, attr), want.code(row, attr));
            }
        }
    }

    #[test]
    fn from_json_round_trips_the_miner_format() {
        let task = covid_task();
        let rules = [EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
        let json = er_rules::rules_to_json(
            &rules
                .iter()
                .map(|r| (r.clone(), er_rules::Measures::zero()))
                .collect::<Vec<_>>(),
            &task,
        );
        let e = RepairEngine::from_json(&task, &json, 0).unwrap();
        assert_eq!(e.num_rules(), 1);
        assert_eq!(e.target_attr(), "Case");
    }
}
