#![forbid(unsafe_code)]
//! # er-serve — a long-lived repair service
//!
//! The mining pipeline ends with a rule set; this crate is the deployment
//! half: a server that loads the rule set and the master relation once,
//! warms the master-side group indexes (one per distinct `X_m` list, via
//! [`er_rules::BatchRepairer`]), and then repairs streamed input batches
//! until it is told to shut down.
//!
//! The transport is deliberately std-only: newline-delimited JSON, one
//! request per line, one response line per request, in order. The same
//! [`Server`] core serves two front-ends:
//!
//! * **pipe mode** ([`serve_pipe`]) — stdin/stdout, for shell pipelines and
//!   supervisors that speak over a pipe pair;
//! * **socket mode** ([`TcpServer`]) — a `std::net::TcpListener` with a
//!   bounded accept queue and a fixed worker pool, each connection speaking
//!   the same line protocol.
//!
//! Operational behaviour is explicit rather than implicit:
//!
//! * **backpressure** — at most `queue_capacity` repair requests are in
//!   flight; excess requests are answered immediately with
//!   `{"ok":false,"error":"overloaded","retry":true}` instead of queueing
//!   without bound.
//! * **deadlines** — an optional per-request deadline aborts a repair
//!   between rule chunks ([`er_rules::BatchError::DeadlineExceeded`]).
//! * **graceful drain** — the `shutdown` op (or [`Server::begin_drain`])
//!   stops the accept loop and lets every request whose line has been fully
//!   read finish and receive its response before connections close. The
//!   workspace forbids `unsafe`, so there is no signal handler; supervisors
//!   should close stdin (pipe mode) or send `{"op":"shutdown"}`.
//! * **metrics** — request/repair/error counters and p50/p99 latency over a
//!   sliding window, served by the `stats` op and an optional periodic
//!   stderr log line.
//! * **analysis gate** — by default, `reload` and `append` are gated on a
//!   clean static analysis of the resulting rule-set/master combination
//!   (`er-analyze`: no ER008 dependency cycle, no ER009 conflicting
//!   repairs). A gated rejection answers with the analysis findings and
//!   leaves the live engine untouched; disable with
//!   [`ServeConfig::analysis_gate`] (CLI: `--no-analysis-gate`).
//! * **versioned, diff-gated promotion** — with the gate on, `reload` also
//!   runs the edit-scope diff (`er-analyze` ER011/ER012) between the live
//!   and candidate rule sets; a reload carrying a `scope` is rejected when
//!   any verdict change leaks outside it. Promotions are committed to a
//!   hash-chained [`er_rules::RuleStore`] (the `versions` op dumps the
//!   lineage), and the read-only `diff` op previews a candidate without
//!   promoting it.

pub mod engine;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod tcp;

pub use engine::{EngineError, RepairEngine, RepairOutcome, RepairedCell};
pub use metrics::{Metrics, Snapshot};
pub use proto::{parse_request, Request, RowBatch};
pub use server::{serve_pipe, ReloadError, Reloader, ServeConfig, Server};
pub use tcp::TcpServer;

/// Lock a std mutex, recovering the data from a poisoned lock: the guarded
/// state here (latency ring, connection queue/registry) stays consistent
/// under every partial update, so a panicking holder never leaves it
/// corrupt.
pub(crate) fn lock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
