//! Socket mode: a bounded accept/worker model over `std::net`.
//!
//! One accept thread polls a non-blocking listener and pushes accepted
//! connections onto a bounded queue; `workers` threads pop connections and
//! speak the line protocol until the peer disconnects (connections are
//! sticky — a worker serves one connection to completion, so per-connection
//! responses stay in request order).
//!
//! Backpressure is applied at two doors: a connection arriving while the
//! queue is full is answered with the `overloaded` response and closed, and
//! a `repair` request arriving while `queue_capacity` repairs are in flight
//! gets the same response from [`Server::handle_line`].
//!
//! The drain protocol (the workspace forbids `unsafe`, so there is no
//! signal handler — drains start from a `shutdown` op or
//! [`TcpServer::shutdown`]):
//!
//! 1. the draining flag flips; the accept thread stops accepting,
//! 2. the accept thread shuts down the read half of every live connection,
//!    unblocking workers parked in `read`,
//! 3. workers finish the request they have fully read (its response is
//!    always written) and close; queued-but-unserved connections are
//!    closed without service.

use crate::server::{read_bounded_line, LineRead, Server};
use crate::{lock, proto};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval while idle (the listener is non-blocking so
/// the loop can observe the draining flag promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

struct Shared {
    server: Arc<Server>,
    /// Accepted connections waiting for a worker.
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    /// Read-half handles of connections currently being served, for drain
    /// interrupts.
    live: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// A running TCP front-end.
pub struct TcpServer {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start the accept thread plus
    /// `config.workers` connection workers.
    pub fn bind(server: Arc<Server>, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            server: Arc::clone(&server),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            live: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..server.config().workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(TcpServer {
            addr,
            accept: Some(accept),
            workers,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain from outside the protocol.
    pub fn shutdown(&self) {
        self.shared.server.begin_drain();
        self.shared.available.notify_all();
    }

    /// Wait for the drain to complete and every thread to exit.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.server.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let mut queue = lock(&shared.queue);
                if queue.len() >= shared.server.config().queue_capacity {
                    drop(queue);
                    refuse(stream, shared.server.as_ref());
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
    // Drain: wake parked workers and unblock the ones mid-read so they can
    // observe the flag. Requests already read still get their responses.
    shared.available.notify_all();
    for stream in lock(&shared.live).values() {
        let _ = stream.shutdown(Shutdown::Read);
    }
}

/// Answer an over-capacity connection with the backpressure response.
fn refuse(stream: TcpStream, server: &Server) {
    server.metrics().record_overloaded();
    let mut stream = stream;
    let _ = writeln!(stream, "{}", proto::overloaded());
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.server.is_draining() {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let Some(stream) = stream else {
            break;
        };
        if shared.server.is_draining() {
            // Accepted but never served: close without service (no request
            // line was read from it, so nothing was promised).
            continue;
        }
        handle_conn(shared, stream);
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let server = shared.server.as_ref();
    // Register a second handle for drain interrupts.
    let token = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.live).insert(token, clone);
    }
    let reader = match stream.try_clone() {
        Ok(read_half) => read_half,
        Err(_) => {
            lock(&shared.live).remove(&token);
            return;
        }
    };
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(stream);
    // One reusable row buffer per connection (connections are sticky to a
    // worker, so the buffer lives exactly as long as the session).
    let mut batch = crate::proto::RowBatch::new();
    loop {
        if server.is_draining() {
            break;
        }
        match read_bounded_line(&mut reader, server.config().max_line_bytes) {
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::TooLong) => {
                server.metrics().record_error();
                let message = format!("line exceeds {} bytes", server.config().max_line_bytes);
                if writeln!(writer, "{}", proto::error(&message)).is_err()
                    || writer.flush().is_err()
                {
                    break;
                }
            }
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let (response, stop) = server.handle_line(&line, &mut batch);
                if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                    break;
                }
                if stop {
                    break;
                }
            }
        }
    }
    let _ = writer.flush();
    lock(&shared.live).remove(&token);
}
