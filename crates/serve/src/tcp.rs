//! Socket mode: a readiness-based event loop over non-blocking `std::net`
//! sockets.
//!
//! One reactor thread owns the listener and every connection: it accepts,
//! reads and frames request lines, and writes responses, all non-blocking
//! (the workspace forbids `unsafe`, so instead of `poll(2)` the reactor
//! scans its sockets and sleeps [`POLL`] between empty scans — the same
//! discipline the previous accept loop used, now for all I/O). Requests are
//! dispatched to a pool of `config.workers` worker threads over a channel;
//! responses flow back to the reactor, which owns all socket writes. Each
//! connection has **at most one request in flight**, so per-connection
//! responses stay in request order while different connections repair in
//! parallel.
//!
//! Backpressure is applied at two doors: a connection arriving while
//! `workers + queue_capacity` connections are live is answered with the
//! `overloaded` response and closed, and a `repair` request arriving while
//! `queue_capacity` repairs are in flight gets the same response from
//! [`Server::handle_line`].
//!
//! The drain protocol (no signal handler — drains start from a `shutdown`
//! op or [`TcpServer::shutdown`]):
//!
//! 1. the draining flag flips; the reactor stops accepting,
//! 2. idle connections (nothing dispatched, nothing buffered to write) are
//!    closed immediately — including connections whose buffered bytes were
//!    never dispatched to a worker (nothing was promised for them),
//! 3. requests already dispatched get their responses written, then their
//!    connections close; once none remain the job channel closes and every
//!    worker exits.

use crate::proto::RowBatch;
use crate::server::Server;
use crate::{lock, proto};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Reactor sleep between scans that made no progress: short enough that
/// accept/read latency stays well under a millisecond of added tail, long
/// enough that an idle server costs ~no CPU.
const POLL: Duration = Duration::from_micros(500);

/// Read chunk size per connection per scan.
const READ_CHUNK: usize = 16 * 1024;

/// A framed request line headed to the worker pool.
struct Job {
    token: u64,
    line: String,
}

/// A finished response headed back to the reactor.
struct Done {
    token: u64,
    response: String,
    stop: bool,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed into a line.
    rbuf: Vec<u8>,
    /// Response bytes not yet written, starting at `wpos`.
    wbuf: Vec<u8>,
    wpos: usize,
    /// A request line was dispatched and its response is still pending.
    busy: bool,
    /// Close once `wbuf` fully flushes (set by a `stop` response).
    stop_after_flush: bool,
    /// The peer half-closed its write side; serve what was buffered, then
    /// close once nothing remains to answer.
    peer_eof: bool,
    /// Inside an oversized line: discard bytes until its newline, then
    /// answer with the line-too-long error.
    too_long: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            busy: false,
            stop_after_flush: false,
            peer_eof: false,
            too_long: false,
        }
    }

    fn queue_response(&mut self, response: &str) {
        self.wbuf.extend_from_slice(response.as_bytes());
        self.wbuf.push(b'\n');
    }

    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// A running TCP front-end.
pub struct TcpServer {
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    server: Arc<Server>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start the reactor thread plus
    /// `config.workers` request workers.
    pub fn bind(server: Arc<Server>, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..server.config().workers.max(1))
            .map(|_| {
                let server = Arc::clone(&server);
                let jobs = Arc::clone(&job_rx);
                let done = done_tx.clone();
                std::thread::spawn(move || worker_loop(&server, &jobs, &done))
            })
            .collect();
        // The reactor owns the only remaining `done_tx` clone holder set
        // (the workers); dropping `done_tx` here keeps the channel's sender
        // count equal to the worker count.
        drop(done_tx);
        let reactor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || reactor_loop(&listener, &server, job_tx, &done_rx))
        };
        Ok(TcpServer {
            addr,
            reactor: Some(reactor),
            workers,
            server,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain from outside the protocol.
    pub fn shutdown(&self) {
        self.server.begin_drain();
    }

    /// Wait for the drain to complete and every thread to exit.
    pub fn join(mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Prepare an accepted socket for the reactor: `TCP_NODELAY` on the server
/// side (small response lines must not wait for delayed ACKs) and
/// non-blocking mode for the scan loop.
fn prepare_accepted(stream: &TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)
}

/// Answer an over-capacity connection with the backpressure response. The
/// socket is fresh (empty send buffer), so a single non-blocking write of
/// one short line succeeds in practice; a peer that manages to fill the
/// window anyway just sees the close.
fn refuse(mut stream: TcpStream, server: &Server) {
    server.metrics().record_overloaded();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = writeln!(stream, "{}", proto::overloaded());
}

fn worker_loop(server: &Server, jobs: &Mutex<mpsc::Receiver<Job>>, done: &mpsc::Sender<Done>) {
    // One reusable row buffer per worker (a worker decodes one request at a
    // time, so the buffer lives as long as the thread).
    let mut batch = RowBatch::new();
    loop {
        // Hold the receiver lock across the blocking recv: idle co-workers
        // queue on the mutex instead of the channel, which is equivalent,
        // and the channel closing (reactor exit) wakes everyone in turn.
        let job = {
            let rx = lock(jobs);
            rx.recv()
        };
        let Ok(job) = job else { break };
        let (response, stop) = server.handle_line(&job.line, &mut batch);
        if done
            .send(Done {
                token: job.token,
                response,
                stop,
            })
            .is_err()
        {
            break;
        }
    }
}

fn reactor_loop(
    listener: &TcpListener,
    server: &Server,
    job_tx: mpsc::Sender<Job>,
    done_rx: &mpsc::Receiver<Done>,
) {
    let max_line = server.config().max_line_bytes;
    let admit_cap = server.config().workers.max(1) + server.config().queue_capacity;
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut next_token = 0u64;
    loop {
        let mut progress = false;
        let draining = server.is_draining();

        // Accept new connections (until the drain begins).
        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        if conns.len() >= admit_cap {
                            refuse(stream, server);
                            continue;
                        }
                        if prepare_accepted(&stream).is_err() {
                            continue;
                        }
                        conns.insert(next_token, Conn::new(stream));
                        next_token += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => break,
                    Err(_) => break,
                }
            }
        }

        // Collect finished responses.
        while let Ok(done) = done_rx.try_recv() {
            progress = true;
            if let Some(conn) = conns.get_mut(&done.token) {
                conn.queue_response(&done.response);
                conn.busy = false;
                conn.stop_after_flush |= done.stop;
            }
        }

        // Per-connection read / frame / dispatch / flush.
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut dead = false;

            // Read only when idle with nothing queued to write: an in-flight
            // request or a partially written response already bounds this
            // connection's buffers, and TCP backpressures the peer.
            if !conn.busy && !conn.has_pending_write() && !conn.peer_eof && !draining {
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.peer_eof = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.rbuf.extend_from_slice(&chunk[..n]);
                            // One framed line is enough until its response
                            // comes back; stop pulling more bytes.
                            if conn.rbuf.contains(&b'\n') {
                                break;
                            }
                            if conn.rbuf.len() > max_line {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }

            // Frame and dispatch at most one request (one in flight per
            // connection keeps response order).
            while !dead && !conn.busy && !draining {
                if conn.too_long {
                    // Inside an oversized line: drop bytes until its end.
                    match conn.rbuf.iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            conn.rbuf.drain(..=pos);
                            conn.too_long = false;
                            server.metrics().record_error();
                            let message = format!("line exceeds {max_line} bytes");
                            conn.queue_response(&proto::error(&message));
                            progress = true;
                        }
                        None => {
                            if !conn.rbuf.is_empty() {
                                conn.rbuf.clear();
                            }
                            if conn.peer_eof {
                                // Unterminated oversized tail: still an error.
                                conn.too_long = false;
                                server.metrics().record_error();
                                let message = format!("line exceeds {max_line} bytes");
                                conn.queue_response(&proto::error(&message));
                                progress = true;
                            }
                            break;
                        }
                    }
                    continue;
                }
                let line = match conn.rbuf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                        String::from_utf8_lossy(&line[..pos]).into_owned()
                    }
                    None if conn.rbuf.len() > max_line => {
                        conn.too_long = true;
                        conn.rbuf.clear();
                        continue;
                    }
                    None if conn.peer_eof && !conn.rbuf.is_empty() => {
                        // EOF: a trailing unterminated line still counts.
                        let line = String::from_utf8_lossy(&conn.rbuf).into_owned();
                        conn.rbuf.clear();
                        line
                    }
                    None => break,
                };
                if line.trim().is_empty() {
                    continue;
                }
                if job_tx.send(Job { token, line }).is_ok() {
                    conn.busy = true;
                    progress = true;
                }
                break;
            }

            // Flush pending response bytes.
            while !dead && conn.has_pending_write() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                    }
                    Ok(n) => {
                        progress = true;
                        conn.wpos += n;
                        if conn.wpos == conn.wbuf.len() {
                            conn.wbuf.clear();
                            conn.wpos = 0;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                    }
                }
            }

            // Close: on socket error; after a `stop` response flushed; when
            // the peer is gone and nothing remains to answer; or when a
            // drain finds the connection idle (nothing promised).
            let flushed = !conn.has_pending_write();
            let idle = !conn.busy && flushed;
            if dead
                || (conn.stop_after_flush && idle)
                || (conn.peer_eof && idle && conn.rbuf.is_empty())
                || (draining && idle)
            {
                conns.remove(&token);
                progress = true;
            }
        }

        if draining && conns.is_empty() {
            // Dropping `job_tx` (on return) closes the channel; workers
            // drain and exit.
            return;
        }
        if !progress {
            std::thread::sleep(POLL);
        }
    }
}
