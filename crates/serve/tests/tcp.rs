//! Socket-mode tests: concurrent clients receive exactly the answers the
//! single-threaded repair path computes, backpressure refuses excess
//! connections, and the drain answers every request it has read.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_rules::{apply_rules, EditingRule, SchemaMatch, Task};
use er_serve::{RepairEngine, ServeConfig, Server, TcpServer};
use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Cities 0..6 map to one area code each in the master, except city "C5"
/// which is split 3:1 — the vote must resolve it the same way everywhere.
fn fixture() -> (Task, Vec<Vec<Value>>) {
    let pool = Arc::new(Pool::new());
    let schema = |name: &str| {
        Arc::new(Schema::new(
            name,
            vec![Attribute::categorical("City"), Attribute::categorical("AC")],
        ))
    };
    let mut bm = RelationBuilder::new(schema("m"), Arc::clone(&pool));
    for city in 0..6 {
        for _ in 0..3 {
            bm.push_row(vec![
                Value::str(format!("C{city}")),
                Value::str(format!("ac{city}")),
            ])
            .unwrap();
        }
    }
    bm.push_row(vec![Value::str("C5"), Value::str("ac0")])
        .unwrap();
    let master = bm.finish();

    let batch: Vec<Vec<Value>> = (0..8)
        .map(|i| vec![Value::str(format!("C{}", i % 7)), Value::Null])
        .collect();
    let mut bi = RelationBuilder::new(schema("in"), pool);
    for row in &batch {
        bi.push_row(row.clone()).unwrap();
    }
    let input = bi.finish();
    let task = Task::new(
        input,
        master,
        SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
        (1, 1),
    );
    (task, batch)
}

fn rules() -> Vec<EditingRule> {
    vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])]
}

fn start(config: ServeConfig) -> (Arc<Server>, TcpServer, Vec<Vec<Value>>, String) {
    let (task, batch) = fixture();
    // The reference answer comes from the one-shot single-threaded path.
    let reference = apply_rules(&task, &rules());
    let pool = task.input().pool();
    let expected_cells: Vec<Json> = reference
        .predictions
        .iter()
        .enumerate()
        .filter_map(|(row, pred)| {
            pred.filter(|&code| code != task.input().code(row, 1))
                .map(|code| {
                    Json::Object(vec![
                        ("row".to_string(), Json::Int(row as i64)),
                        ("attr".to_string(), Json::Str("AC".into())),
                        (
                            "value".to_string(),
                            Json::Str(pool.value(code).render().into_owned()),
                        ),
                        ("score".to_string(), Json::Float(reference.scores[row])),
                    ])
                })
        })
        .collect();
    let expected = serde_json::to_string(&Json::Array(expected_cells)).unwrap();

    let engine = RepairEngine::new(&task, rules(), 0).unwrap();
    let server = Arc::new(Server::new(engine, config));
    let tcp = TcpServer::bind(Arc::clone(&server), "127.0.0.1:0").unwrap();
    (server, tcp, batch, expected)
}

fn batch_request(batch: &[Vec<Value>]) -> String {
    let rows: Vec<Json> = batch
        .iter()
        .map(|row| {
            Json::Array(
                row.iter()
                    .map(|v| match v {
                        Value::Null => Json::Null,
                        other => Json::Str(other.render().into_owned()),
                    })
                    .collect(),
            )
        })
        .collect();
    serde_json::to_string(&Json::Object(vec![
        ("op".to_string(), Json::Str("repair".into())),
        ("rows".to_string(), Json::Array(rows)),
    ]))
    .unwrap()
}

#[test]
fn concurrent_clients_match_the_single_threaded_repair() {
    let (_server, tcp, batch, expected) = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = tcp.local_addr();
    let request = batch_request(&batch);

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let request = request.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                for _ in 0..5 {
                    writeln!(writer, "{request}").unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let response: Json = serde_json::from_str(&line).unwrap();
                    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{line}");
                    let cells = response.get("cells").unwrap();
                    assert_eq!(
                        serde_json::to_string(cells).unwrap(),
                        expected,
                        "served cells must match the one-shot apply_rules answer"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    // Drain via the protocol and wait for every thread.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response: Json = serde_json::from_str(&line).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    tcp.join();
}

#[test]
fn shutdown_answers_before_closing_and_join_returns() {
    let (server, tcp, batch, _) = start(ServeConfig::default());
    let addr = tcp.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // A real request first, then shutdown on the same connection.
    writeln!(writer, "{}", batch_request(&batch)).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");
    writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"shutdown\""),
        "the shutdown op must be acknowledged before the close: {line}"
    );
    tcp.join();
    assert!(server.is_draining());
    // The connection is closed after the drain: the next read returns EOF.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
}

#[test]
fn external_shutdown_unblocks_idle_connections() {
    let (_server, tcp, _batch, _) = start(ServeConfig::default());
    let addr = tcp.local_addr();
    // An idle client parks a worker in read; shutdown() must unblock it.
    let idle = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(idle.try_clone().unwrap());
    // Give the worker a moment to pick the connection up.
    std::thread::sleep(std::time::Duration::from_millis(50));
    tcp.shutdown();
    tcp.join();
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "idle conn closed");
}

#[test]
fn stats_reads_stay_monotone_under_concurrent_mutation() {
    // One connection appends, one repairs, and a third polls `stats` the
    // whole time: every counter must move monotonically and no read may be
    // torn (the served generation can never exceed base + appended rows).
    const MUTATIONS: u64 = 25;
    let (server, tcp, batch, _) = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = tcp.local_addr();
    let base_generation = server.snapshot().engine_generation;

    let appender = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for _ in 0..MUTATIONS {
            writeln!(writer, "{{\"op\":\"append\",\"rows\":[[\"C0\",\"ac0\"]]}}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"ok\":true"), "{line}");
        }
    });
    let repairer = {
        let request = batch_request(&batch);
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for _ in 0..MUTATIONS {
                writeln!(writer, "{request}").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert!(line.contains("\"ok\":true"), "{line}");
            }
        })
    };

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let read_stats = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>| {
        writeln!(writer, "{{\"op\":\"stats\"}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Json = serde_json::from_str(&line).unwrap();
        let stats = response.get("stats").cloned().unwrap();
        let field = |name: &str| match stats.get(name) {
            Some(Json::Int(i)) => *i as u64,
            Some(Json::UInt(u)) => *u,
            other => panic!("stats field {name} is not a number: {other:?}"),
        };
        (
            field("appends"),
            field("repairs"),
            field("engine_generation"),
            field("requests"),
        )
    };
    let mut prev = read_stats(&mut writer, &mut reader);
    while !(appender.is_finished() && repairer.is_finished()) {
        let next = read_stats(&mut writer, &mut reader);
        assert!(
            next.0 >= prev.0 && next.1 >= prev.1 && next.2 >= prev.2 && next.3 >= prev.3,
            "counters went backwards: {prev:?} -> {next:?}"
        );
        // Each append commits exactly one row, and the generation gauge is
        // only advanced after the append counter: a generation observed now
        // can never exceed base + the append count observed later.
        assert!(
            prev.2 <= base_generation + next.0,
            "torn read: generation {} with appends {} (base {base_generation})",
            prev.2,
            next.0,
        );
        prev = next;
    }
    appender.join().unwrap();
    repairer.join().unwrap();

    let last = read_stats(&mut writer, &mut reader);
    assert_eq!(last.0, MUTATIONS, "every append acknowledged is counted");
    assert_eq!(last.1, MUTATIONS, "every repair acknowledged is counted");
    assert_eq!(
        last.2,
        base_generation + MUTATIONS,
        "one generation step per appended row"
    );
    tcp.shutdown();
    tcp.join();
}

#[test]
fn repair_csv_yields_its_slot_to_interactive_repairs_between_chunks() {
    // With a single backpressure slot, a long bulk repair must not starve
    // interactive clients: the slot is released between chunks, so a
    // `repair` issued mid-file succeeds instead of bouncing `overloaded`
    // until the file completes. `ingested_rows` is only published once the
    // stream finishes, so a success observed while it is still zero proves
    // the interleaving.
    const FIFO_ROWS: usize = 200;
    let (server, tcp, batch, _) = start(ServeConfig {
        workers: 2,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = tcp.local_addr();

    // A FIFO makes the chunk source genuinely slow: `next_batch` blocks on
    // the pipe while the writer dribbles rows, and the slot must be free
    // during those waits.
    let path = std::env::temp_dir().join(format!("er_serve_slow_csv_{}.fifo", std::process::id()));
    std::fs::remove_file(&path).ok();
    let status = std::process::Command::new("mkfifo")
        .arg(&path)
        .status()
        .expect("mkfifo must be runnable");
    assert!(status.success(), "mkfifo failed");
    let literal = serde_json::to_string(&path.display().to_string()).unwrap();

    let feeder = {
        let path = path.clone();
        std::thread::spawn(move || {
            // Opens once the server opens the read side.
            let mut fifo = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            fifo.write_all(b"City,AC\n").unwrap();
            for _ in 0..FIFO_ROWS {
                fifo.write_all(b"C0,\n").unwrap();
                fifo.flush().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };
    let bulk = {
        let request = format!("{{\"op\":\"repair_csv\",\"path\":{literal},\"chunk_bytes\":8}}");
        std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            writeln!(writer, "{request}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line
        })
    };

    // Wait until the bulk repair is demonstrably mid-file (chunk repairs
    // tick the `repairs` counter; the test has sent none of its own yet).
    while server.snapshot().repairs < 5 {
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let request = batch_request(&batch[..1]);
    let mut served_mid_file = false;
    for _ in 0..200_000 {
        writeln!(writer, "{request}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.contains("\"ok\":true") {
            served_mid_file = server.snapshot().ingested_rows == 0;
            break;
        }
        assert!(line.contains("overloaded"), "{line}");
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    assert!(
        served_mid_file,
        "an interactive repair must be served while the csv stream is still running"
    );

    feeder.join().unwrap();
    let bulk_response = bulk.join().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(bulk_response.contains("\"ok\":true"), "{bulk_response}");
    assert!(
        bulk_response.contains(&format!("\"rows\":{FIFO_ROWS}")),
        "{bulk_response}"
    );
    tcp.shutdown();
    tcp.join();
}

#[test]
fn full_accept_queue_is_refused_with_backpressure() {
    // One worker and a tiny queue: with the worker parked on an idle
    // connection and the queue full, the next connection is refused.
    let (server, tcp, _batch, _) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = tcp.local_addr();
    let _busy = TcpStream::connect(addr).unwrap(); // picked up by the worker
    std::thread::sleep(std::time::Duration::from_millis(50));
    let _queued = TcpStream::connect(addr).unwrap(); // fills the queue
    std::thread::sleep(std::time::Duration::from_millis(50));
    let refused = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(refused);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response: Json = serde_json::from_str(&line).unwrap();
    assert_eq!(
        response.get("error").and_then(Json::as_str),
        Some("overloaded")
    );
    assert_eq!(response.get("retry"), Some(&Json::Bool(true)));
    assert!(server.snapshot().overloaded >= 1);
    tcp.shutdown();
    tcp.join();
}
