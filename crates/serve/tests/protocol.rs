//! Pipe-mode protocol tests: every abuse a client can commit over the line
//! protocol is answered with an error response on the same session, and
//! well-formed traffic round-trips.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_lint::DiagnosticCode;
use er_rules::{EditingRule, SchemaMatch, Task};
use er_serve::{serve_pipe, ReloadError, RepairEngine, ServeConfig, Server};
use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
use serde_json::Value as Json;
use std::io::Cursor;
use std::sync::Arc;

fn covid_task() -> Task {
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "in",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Case"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Infection"),
        ],
    ));
    let s = Value::str;
    let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
    b.push_row(vec![s("HZ"), Value::Null]).unwrap();
    let input = b.finish();
    let mut bm = RelationBuilder::new(m_schema, pool);
    bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
    bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
    bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
    bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
    let master = bm.finish();
    Task::new(
        input,
        master,
        SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
        (1, 1),
    )
}

/// A three-attribute task (input City/ZIP/Case, master City/ZIP/Infection)
/// for the analysis-gate tests: wide enough that a strict-subset rule pair
/// can contradict on a master tuple. `rows` are the master tuples.
fn covid3_task(rows: &[(&str, &str, &str)]) -> Task {
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "in",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("ZIP"),
            Attribute::categorical("Case"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("ZIP"),
            Attribute::categorical("Infection"),
        ],
    ));
    let s = Value::str;
    let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
    b.push_row(vec![s("HZ"), Value::Null, Value::Null]).unwrap();
    let input = b.finish();
    let mut bm = RelationBuilder::new(m_schema, pool);
    for &(city, zip, inf) in rows {
        bm.push_row(vec![s(city), s(zip), s(inf)]).unwrap();
    }
    let master = bm.finish();
    Task::new(
        input,
        master,
        SchemaMatch::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]),
        (2, 2),
    )
}

/// City → Case alone is clean; adding (City, ZIP) → Case over this master
/// makes a proven ER009 conflict: for City=HZ the broad modal is "flu"
/// (2–1) but pinning ZIP=31200 prescribes "patient".
const CONFLICT_MASTER: &[(&str, &str, &str)] = &[
    ("HZ", "31200", "patient"),
    ("HZ", "99999", "flu"),
    ("HZ", "99999", "flu"),
];

fn server(config: ServeConfig) -> Server {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    Server::new(RepairEngine::new(&task, rules, 0).unwrap(), config)
}

/// Run a scripted session through the pipe front-end and return the parsed
/// response objects, one per request line.
fn session(server: &Server, script: &str) -> Vec<Json> {
    let mut reader = Cursor::new(script.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    serve_pipe(server, &mut reader, &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect()
}

fn ok(v: &Json) -> bool {
    matches!(v.get("ok"), Some(Json::Bool(true)))
}

fn error_of(v: &Json) -> &str {
    v.get("error").and_then(Json::as_str).unwrap_or("")
}

/// Numeric field accessor tolerant of the parser's Int/UInt split.
fn num(v: &Json, key: &str) -> i64 {
    match v.get(key) {
        Some(Json::Int(i)) => *i,
        Some(Json::UInt(u)) => *u as i64,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

/// Float field accessor tolerant of the parser narrowing whole floats to
/// integers on the round trip.
fn float(v: &Json, key: &str) -> f64 {
    match v.get(key) {
        Some(Json::Float(f)) => *f,
        Some(Json::Int(i)) => *i as f64,
        Some(Json::UInt(u)) => *u as f64,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

#[test]
fn ping_repair_shutdown_round_trip() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"ping\"}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\",null],[\"??\",null]]}\n\
         {\"op\":\"shutdown\"}\n",
    );
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(ok));
    let repair = &responses[1];
    assert_eq!(repair.get("fixed"), Some(&Json::Int(2)));
    let cells = repair.get("cells").and_then(Json::as_array).unwrap();
    assert_eq!(cells[0].get("attr").and_then(Json::as_str), Some("Case"));
    assert_eq!(
        cells[0].get("value").and_then(Json::as_str),
        Some("patient")
    );
    assert_eq!(
        cells[1].get("value").and_then(Json::as_str),
        Some("imports")
    );
    assert!(s.is_draining(), "shutdown op must start the drain");
}

#[test]
fn malformed_json_keeps_the_session_alive() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "this is not json\n\
         {\"op\":\n\
         {\"op\":\"ping\"}\n",
    );
    assert_eq!(responses.len(), 3);
    assert!(!ok(&responses[0]));
    assert!(!ok(&responses[1]));
    assert!(ok(&responses[2]), "session must survive malformed lines");
}

#[test]
fn unknown_op_is_reported() {
    let s = server(ServeConfig::default());
    let responses = session(&s, "{\"op\":\"frobnicate\"}\n");
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("unknown op"));
}

#[test]
fn over_long_line_is_rejected_but_consumed() {
    let s = server(ServeConfig {
        max_line_bytes: 64,
        ..ServeConfig::default()
    });
    let long = format!(
        "{{\"op\":\"repair\",\"rows\":[[\"{}\",null]]}}",
        "x".repeat(200)
    );
    let responses = session(&s, &format!("{long}\n{{\"op\":\"ping\"}}\n"));
    assert_eq!(responses.len(), 2);
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("exceeds"));
    assert!(
        ok(&responses[1]),
        "the oversized line must be skipped, not fatal"
    );
}

#[test]
fn missing_and_extra_columns_are_row_errors() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\"]]}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null,\"extra\"]]}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\"]]}\n",
    );
    assert!(responses.iter().all(|r| !ok(r)));
    assert!(error_of(&responses[2]).contains("row 1"), "{responses:?}");
}

#[test]
fn unsupported_cell_types_are_rejected() {
    let s = server(ServeConfig::default());
    let responses = session(&s, "{\"op\":\"repair\",\"rows\":[[\"HZ\",true]]}\n");
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("row 0 column 1"));
}

#[test]
fn oversized_batches_hit_the_row_limit() {
    let s = server(ServeConfig {
        max_batch_rows: 2,
        ..ServeConfig::default()
    });
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\",null],[\"SZ\",null]]}\n",
    );
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("exceeds"));
}

#[test]
fn stats_reflect_traffic() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\",null]]}\n\
         nonsense\n\
         {\"op\":\"stats\"}\n",
    );
    let stats = responses[2].get("stats").unwrap();
    assert_eq!(num(stats, "requests"), 3);
    assert_eq!(num(stats, "repairs"), 1);
    assert_eq!(num(stats, "repaired_cells"), 1);
    assert_eq!(num(stats, "errors"), 1);
    assert_eq!(num(stats, "queue_depth"), 0);
    // The signature-batched repair path surfaces its payoff: one NULL-free
    // row grouped, one distinct signature probed → dedup ratio 1.0.
    assert_eq!(num(stats, "vote_rows"), 1);
    assert_eq!(num(stats, "signature_probes"), 1);
    assert!((float(stats, "signature_dedup") - 1.0).abs() < 1e-12);
}

#[test]
fn signature_dedup_collapses_duplicate_rows() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"HZ\",null],[\"HZ\",null],[\"BJ\",null]]}\n\
         {\"op\":\"stats\"}\n",
    );
    let stats = responses[1].get("stats").unwrap();
    // Four NULL-free rows collapse to two distinct city signatures.
    assert_eq!(num(stats, "vote_rows"), 4);
    assert_eq!(num(stats, "signature_probes"), 2);
    assert!((float(stats, "signature_dedup") - 2.0).abs() < 1e-12);
}

#[test]
fn append_round_trip_changes_later_repairs() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"SZ\",null]]}\n\
         {\"op\":\"append\",\"rows\":[[\"SZ\",\"no symptoms\"],[\"SZ\",\"no symptoms\"]]}\n\
         {\"op\":\"repair\",\"rows\":[[\"SZ\",null]]}\n\
         {\"op\":\"stats\"}\n",
    );
    assert_eq!(responses.len(), 4);
    // Before the append SZ has no master support.
    assert_eq!(responses[0].get("fixed"), Some(&Json::Int(0)));
    let append = &responses[1];
    assert!(ok(append), "{append:?}");
    assert_eq!(num(append, "appended"), 2);
    assert_eq!(num(append, "master_rows"), 6);
    assert_eq!(num(append, "generation"), 6);
    // After the append the same request is repaired from the grown master.
    assert_eq!(responses[2].get("fixed"), Some(&Json::Int(1)));
    let cells = responses[2].get("cells").and_then(Json::as_array).unwrap();
    assert_eq!(
        cells[0].get("value").and_then(Json::as_str),
        Some("no symptoms")
    );
    let stats = responses[3].get("stats").unwrap();
    assert_eq!(num(stats, "appends"), 1);
    assert_eq!(num(stats, "reloads"), 0);
    assert_eq!(num(stats, "engine_generation"), 6);
}

#[test]
fn append_rejects_bad_rows_and_counts_an_error() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"append\",\"rows\":[[\"SZ\",\"ok\"],[\"short\"]]}\n\
         {\"op\":\"stats\"}\n",
    );
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("row 1"), "{responses:?}");
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "appends"), 0);
    assert_eq!(num(stats, "errors"), 1);
    // The engine stays at its load-time generation (4 master rows).
    assert_eq!(num(stats, "engine_generation"), 4);
}

#[test]
fn append_honours_the_batch_row_limit() {
    let s = server(ServeConfig {
        max_batch_rows: 1,
        ..ServeConfig::default()
    });
    let responses = session(
        &s,
        "{\"op\":\"append\",\"rows\":[[\"a\",\"b\"],[\"c\",\"d\"]]}\n",
    );
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("exceeds"));
}

#[test]
fn reload_updates_the_maintenance_counters() {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid_task();
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::new(&reload_task, Vec::new(), 0)
            .map_err(|e| ReloadError::Failed(e.to_string()))
    }));
    let responses = session(&s, "{\"op\":\"reload\"}\n{\"op\":\"stats\"}\n");
    assert!(ok(&responses[0]));
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "reloads"), 1);
    assert_eq!(num(stats, "engine_generation"), 4);
}

#[test]
fn reload_without_a_reloader_is_an_error() {
    let s = server(ServeConfig::default());
    let responses = session(&s, "{\"op\":\"reload\"}\n");
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("not configured"));
}

#[test]
fn reload_swaps_the_engine() {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid_task();
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::new(&reload_task, Vec::new(), 0)
            .map_err(|e| ReloadError::Failed(e.to_string()))
    }));
    let responses = session(
        &s,
        "{\"op\":\"reload\"}\n{\"op\":\"repair\",\"rows\":[[\"HZ\",null]]}\n",
    );
    assert!(ok(&responses[0]));
    assert_eq!(responses[0].get("rules"), Some(&Json::Int(0)));
    // The empty reloaded rule set fixes nothing.
    assert_eq!(responses[1].get("fixed"), Some(&Json::Int(0)));
}

#[test]
fn eof_ends_the_session_after_answering_everything() {
    let s = server(ServeConfig::default());
    // No shutdown op, no trailing newline: EOF drains cleanly and the last
    // request is still answered.
    let responses = session(&s, "{\"op\":\"ping\"}\n{\"op\":\"ping\"}");
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(ok));
}

#[test]
fn stats_exposes_the_confluence_certificate_across_appends() {
    // A single rule has zero critical pairs: vacuously certified at startup.
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"stats\"}\n\
         {\"op\":\"append\",\"rows\":[[\"SZ\",\"no symptoms\"]]}\n\
         {\"op\":\"stats\"}\n",
    );
    let certified = |r: &Json| {
        r.get("stats")
            .and_then(|s| s.get("confluence_certified"))
            .cloned()
    };
    assert_eq!(
        certified(&responses[0]),
        Some(Json::Bool(true)),
        "{:?}",
        responses[0]
    );
    assert!(ok(&responses[1]), "{:?}", responses[1]);
    // The gate's preview report analyzed exactly the grown master, so the
    // append re-earns the stamp for the new generation.
    assert_eq!(
        certified(&responses[2]),
        Some(Json::Bool(true)),
        "{:?}",
        responses[2]
    );

    // Without the gate there is no preview report: the commit invalidates
    // the certificate and the engine stays on the ordered fallback.
    let s = server(ServeConfig {
        analysis_gate: false,
        ..ServeConfig::default()
    });
    let responses = session(
        &s,
        "{\"op\":\"stats\"}\n\
         {\"op\":\"append\",\"rows\":[[\"SZ\",\"no symptoms\"]]}\n\
         {\"op\":\"stats\"}\n",
    );
    assert_eq!(certified(&responses[0]), Some(Json::Bool(true)));
    assert!(ok(&responses[1]), "{:?}", responses[1]);
    assert_eq!(
        certified(&responses[2]),
        Some(Json::Bool(false)),
        "{:?}",
        responses[2]
    );
}

#[test]
fn conflicting_reload_is_rejected_and_the_old_engine_keeps_serving() {
    // The live engine holds the clean single rule City → Case; the reloader
    // offers a set whose strict-subset pair contradicts on a master tuple.
    let task = covid3_task(CONFLICT_MASTER);
    let rules = vec![EditingRule::new(vec![(0, 0)], (2, 2), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid3_task(CONFLICT_MASTER);
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        let rules = vec![
            EditingRule::new(vec![(0, 0)], (2, 2), vec![]),
            EditingRule::new(vec![(0, 0), (1, 1)], (2, 2), vec![]),
        ];
        RepairEngine::new(&reload_task, rules, 0).map_err(|e| ReloadError::Failed(e.to_string()))
    }));
    let responses = session(
        &s,
        "{\"op\":\"reload\"}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null,null]]}\n\
         {\"op\":\"stats\"}\n",
    );
    let reject = &responses[0];
    assert!(!ok(reject), "{reject:?}");
    assert!(error_of(reject).contains("static analysis"), "{reject:?}");
    assert_eq!(reject.get("rejected"), Some(&Json::Bool(true)));
    // The contradicting pair trips both the subset-conflict pass (ER009) and
    // the critical-pair confluence pass (ER013).
    assert_eq!(num(reject, "errors"), 2);
    let findings = reject.get("findings").and_then(Json::as_array).unwrap();
    assert_eq!(
        findings[0].get("code").and_then(Json::as_str),
        Some(DiagnosticCode::Er009.as_str()),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| {
            f.get("code").and_then(Json::as_str) == Some(DiagnosticCode::Er013.as_str())
        }),
        "{findings:?}"
    );
    // The previous engine still serves: HZ repairs to the broad modal "flu".
    let repair = &responses[1];
    assert!(ok(repair), "{repair:?}");
    assert_eq!(repair.get("fixed"), Some(&Json::Int(1)));
    let cells = repair.get("cells").and_then(Json::as_array).unwrap();
    assert_eq!(cells[0].get("value").and_then(Json::as_str), Some("flu"));
    let stats = responses[2].get("stats").unwrap();
    assert_eq!(num(stats, "rejected"), 1);
    assert_eq!(num(stats, "reloads"), 0);
    let by_code = stats.get("rejected_by_code").unwrap();
    assert_eq!(
        num(by_code, DiagnosticCode::Er009.as_str()),
        1,
        "{by_code:?}"
    );
}

#[test]
fn conflict_inducing_append_is_rejected_without_committing() {
    // Both rules are clean over the starting master (every HZ key agrees on
    // "patient"); the appended rows would flip the narrow (City, ZIP) modal
    // to "flu" while leaving the broad City modal at "patient".
    let task = covid3_task(&[("HZ", "1", "patient"), ("HZ", "2", "patient")]);
    let rules = vec![
        EditingRule::new(vec![(0, 0)], (2, 2), vec![]),
        EditingRule::new(vec![(0, 0), (1, 1)], (2, 2), vec![]),
    ];
    let s = Server::new(
        RepairEngine::new(&task, rules, 0).unwrap(),
        ServeConfig::default(),
    );
    let responses = session(
        &s,
        "{\"op\":\"append\",\"rows\":[[\"HZ\",\"2\",\"flu\"],[\"HZ\",\"2\",\"flu\"]]}\n\
         {\"op\":\"stats\"}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null,null]]}\n",
    );
    let reject = &responses[0];
    assert!(!ok(reject), "{reject:?}");
    assert_eq!(reject.get("rejected"), Some(&Json::Bool(true)));
    assert_eq!(reject.get("op").and_then(Json::as_str), Some("append"));
    let stats = responses[1].get("stats").unwrap();
    // Nothing was committed: no append counted, generation still load-time.
    assert_eq!(num(stats, "appends"), 0);
    assert_eq!(num(stats, "rejected"), 1);
    assert_eq!(num(stats, "engine_generation"), 2);
    // And the engine still serves from the unmodified master.
    let repair = &responses[2];
    assert!(ok(repair), "{repair:?}");
    let cells = repair.get("cells").and_then(Json::as_array).unwrap();
    assert_eq!(
        cells[0].get("value").and_then(Json::as_str),
        Some("patient")
    );
}

#[test]
fn cyclic_rule_file_is_rejected_by_the_gated_loader() {
    // A multi-target document with a City ↔ ZIP dependency cycle: the gated
    // loader diagnoses ER008 before single-target resolution can even
    // complain about the mixed targets.
    let task = covid3_task(CONFLICT_MASTER);
    let json = r#"[
        {"lhs": [["City", "City"]], "target": ["ZIP", "ZIP"], "pattern": [], "measures": null},
        {"lhs": [["ZIP", "ZIP"]], "target": ["City", "City"], "pattern": [], "measures": null}
    ]"#;
    let err = RepairEngine::from_json_gated(&task, json, 0).unwrap_err();
    let er_serve::EngineError::Analysis(report) = err else {
        panic!("expected an analysis rejection, got {err}");
    };
    assert!(!report.termination.certified);
    assert!(report.termination.cycle.is_some());

    // Over the reload path the rejection is a typed protocol response and
    // the live engine survives.
    let rules = vec![EditingRule::new(vec![(0, 0)], (2, 2), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid3_task(CONFLICT_MASTER);
    let json_owned = json.to_string();
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::from_json_gated(&reload_task, &json_owned, 0).map_err(|e| match e {
            er_serve::EngineError::Analysis(report) => ReloadError::Analysis(report),
            other => ReloadError::Failed(other.to_string()),
        })
    }));
    let responses = session(
        &s,
        "{\"op\":\"reload\"}\n{\"op\":\"repair\",\"rows\":[[\"HZ\",null,null]]}\n",
    );
    let reject = &responses[0];
    assert!(!ok(reject), "{reject:?}");
    assert_eq!(reject.get("rejected"), Some(&Json::Bool(true)));
    assert_eq!(reject.get("certified"), Some(&Json::Bool(false)));
    let findings = reject.get("findings").and_then(Json::as_array).unwrap();
    assert_eq!(
        findings[0].get("code").and_then(Json::as_str),
        Some(DiagnosticCode::Er008.as_str()),
        "{findings:?}"
    );
    assert!(ok(&responses[1]), "{responses:?}");
}

/// The live covid rule (City → Case, no pattern) as a portable document
/// fragment, and the same rule narrowed to the pattern City = "HZ" —
/// narrowing removes BJ's repair, so the diff reports exactly one changed
/// signature with the BJ master rows as witness.
const BROAD_RULE: &str =
    r#"{"lhs":[["City","City"]],"target":["Case","Infection"],"pattern":[],"measures":null}"#;
const NARROWED_RULE: &str = r#"{"lhs":[["City","City"]],"target":["Case","Infection"],"pattern":[{"Eq":{"attr":"City","value":"HZ","numeric":false}}],"measures":null}"#;

#[test]
fn diff_reports_the_edit_scope_without_promoting() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        &format!(
            "{{\"op\":\"diff\",\"rules\":[{BROAD_RULE}]}}\n\
             {{\"op\":\"diff\",\"rules\":[{NARROWED_RULE}]}}\n\
             {{\"op\":\"repair\",\"rows\":[[\"BJ\",null]]}}\n\
             {{\"op\":\"stats\"}}\n"
        ),
    );
    // Identical candidate: certified equivalent.
    let same = &responses[0];
    assert!(ok(same), "{same:?}");
    let summary = same.get("summary").unwrap();
    assert_eq!(summary.get("equivalent"), Some(&Json::Bool(true)));
    assert!(
        summary
            .get("certificate")
            .and_then(Json::as_str)
            .unwrap()
            .contains("structurally identical"),
        "{summary:?}"
    );
    // Narrowed candidate: one signature (City=BJ) loses its repair.
    let changed = &responses[1];
    assert!(ok(changed), "{changed:?}");
    let summary = changed.get("summary").unwrap();
    assert_eq!(summary.get("equivalent"), Some(&Json::Bool(false)));
    assert_eq!(num(summary, "changes"), 1);
    assert_eq!(num(summary, "errors"), 0, "no scope declared, no ER012");
    let report = changed.get("report").unwrap();
    let changes = report.get("changes").and_then(Json::as_array).unwrap();
    let sig = changes[0].get("signature").unwrap();
    assert_eq!(sig.get("City").and_then(Json::as_str), Some("BJ"));
    assert_eq!(
        changes[0].get("old").and_then(Json::as_str),
        Some("imports")
    );
    assert_eq!(changes[0].get("new"), Some(&Json::Null));
    // Nothing was promoted: the live engine still repairs BJ.
    let repair = &responses[2];
    assert_eq!(repair.get("fixed"), Some(&Json::Int(1)));
    let stats = responses[3].get("stats").unwrap();
    assert_eq!(num(stats, "diffs"), 2);
    assert_eq!(num(stats, "reloads"), 0);
}

#[test]
fn unresolvable_diff_candidates_are_errors() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"diff\",\"rules\":[{\"not\":\"a rule\"}]}\n\
         {\"op\":\"diff\",\"rules\":\"nope\"}\n\
         {\"op\":\"stats\"}\n",
    );
    assert!(!ok(&responses[0]), "{responses:?}");
    assert!(!ok(&responses[1]), "{responses:?}");
    assert!(
        error_of(&responses[1]).contains("diff needs"),
        "{responses:?}"
    );
    let stats = responses[2].get("stats").unwrap();
    assert_eq!(num(stats, "diffs"), 0);
    assert_eq!(num(stats, "errors"), 2);
}

#[test]
fn out_of_scope_reload_is_rejected_and_in_scope_promotes() {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid_task();
    let narrowed = format!("[{NARROWED_RULE}]");
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::from_json(&reload_task, &narrowed, 0)
            .map_err(|e| ReloadError::Failed(e.to_string()))
    }));
    let responses = session(
        &s,
        "{\"op\":\"reload\",\"scope\":{\"City\":\"HZ\"}}\n\
         {\"op\":\"repair\",\"rows\":[[\"BJ\",null]]}\n\
         {\"op\":\"reload\",\"scope\":[{\"City\":\"HZ\"},{\"City\":\"BJ\"}]}\n\
         {\"op\":\"repair\",\"rows\":[[\"BJ\",null]]}\n\
         {\"op\":\"stats\"}\n",
    );
    // The candidate drops BJ's repair but the declared scope only covers
    // HZ: ER012, no swap.
    let reject = &responses[0];
    assert!(!ok(reject), "{reject:?}");
    assert!(error_of(reject).contains("edit-scope"), "{reject:?}");
    assert_eq!(reject.get("rejected"), Some(&Json::Bool(true)));
    let summary = reject.get("summary").unwrap();
    assert_eq!(num(summary, "errors"), 1);
    let report = reject.get("report").unwrap();
    let findings = report.get("findings").and_then(Json::as_array).unwrap();
    assert!(
        findings
            .iter()
            .any(|f| f.get("code").and_then(Json::as_str) == Some(DiagnosticCode::Er012.as_str())),
        "{findings:?}"
    );
    // The live engine survived the rejection.
    assert_eq!(responses[1].get("fixed"), Some(&Json::Int(1)));
    // Widening the scope to cover BJ admits the same candidate.
    let promote = &responses[2];
    assert!(ok(promote), "{promote:?}");
    assert_eq!(num(promote, "version"), 2);
    let summary = promote.get("diff").unwrap();
    assert_eq!(num(summary, "changes"), 1);
    assert_eq!(num(summary, "errors"), 0);
    // Now the narrowed set serves: BJ is out of pattern, nothing fixed.
    assert_eq!(responses[3].get("fixed"), Some(&Json::Int(0)));
    let stats = responses[4].get("stats").unwrap();
    assert_eq!(num(stats, "reloads"), 1);
    assert_eq!(num(stats, "rejected"), 1);
    let by_code = stats.get("rejected_by_code").unwrap();
    assert_eq!(num(by_code, DiagnosticCode::Er012.as_str()), 1);
}

#[test]
fn versions_track_the_promotion_lineage() {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid_task();
    let narrowed = format!("[{NARROWED_RULE}]");
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::from_json(&reload_task, &narrowed, 0)
            .map_err(|e| ReloadError::Failed(e.to_string()))
    }));
    let responses = session(
        &s,
        "{\"op\":\"versions\"}\n\
         {\"op\":\"reload\"}\n\
         {\"op\":\"versions\"}\n",
    );
    let store = responses[0].get("store").unwrap();
    assert_eq!(num(store, "head"), 1);
    let versions = store.get("versions").and_then(Json::as_array).unwrap();
    assert_eq!(versions.len(), 1);
    assert_eq!(
        versions[0].get("note").and_then(Json::as_str),
        Some("initial load")
    );
    assert_eq!(versions[0].get("parent"), Some(&Json::Null));
    assert!(ok(&responses[1]), "{responses:?}");
    let store = responses[2].get("store").unwrap();
    assert_eq!(num(store, "head"), 2);
    let versions = store.get("versions").and_then(Json::as_array).unwrap();
    assert_eq!(versions.len(), 2);
    assert_eq!(num(&versions[1], "parent"), 1);
    assert_eq!(
        versions[1].get("parent_hash"),
        versions[0].get("hash"),
        "lineage hashes must chain"
    );
    assert!(
        versions[1]
            .get("note")
            .and_then(Json::as_str)
            .unwrap()
            .contains("1 signature(s) change verdict"),
        "{versions:?}"
    );
}

/// Write `text` to a unique temp file and return its path as a JSON string
/// literal ready to splice into a request line.
fn temp_csv(tag: &str, text: &str) -> (std::path::PathBuf, String) {
    let path = std::env::temp_dir().join(format!("er_serve_{tag}_{}.csv", std::process::id()));
    std::fs::write(&path, text).unwrap();
    let literal = serde_json::to_string(&path.display().to_string()).unwrap();
    (path, literal)
}

#[test]
fn repair_csv_streams_a_server_side_file() {
    let s = server(ServeConfig::default());
    let (path, literal) = temp_csv("stream", "City,Case\nHZ,\nBJ,\n??,\n");
    let responses = session(
        &s,
        &format!("{{\"op\":\"repair_csv\",\"path\":{literal}}}\n{{\"op\":\"stats\"}}\n"),
    );
    std::fs::remove_file(&path).ok();
    let bulk = &responses[0];
    assert!(ok(bulk), "{bulk:?}");
    assert_eq!(bulk.get("op").and_then(Json::as_str), Some("repair_csv"));
    assert_eq!(num(bulk, "rows"), 3);
    assert_eq!(num(bulk, "chunks"), 1);
    // HZ → patient, BJ → imports; ?? has no master support.
    assert_eq!(num(bulk, "fixed"), 2);
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "ingested_rows"), 3);
    assert_eq!(num(stats, "ingest_chunks"), 1);
    assert_eq!(num(stats, "repairs"), 1);
}

#[test]
fn repair_csv_small_chunks_split_the_stream() {
    let s = server(ServeConfig::default());
    // Each record is ~7 bytes; a 8-byte chunk budget forces one row per
    // chunk, exercising the per-chunk commit/deadline path.
    let (path, literal) = temp_csv("chunked", "City,Case\nHZ,\nBJ,\nHZ,\n");
    let responses = session(
        &s,
        &format!(
            "{{\"op\":\"repair_csv\",\"path\":{literal},\"chunk_bytes\":8}}\n{{\"op\":\"stats\"}}\n"
        ),
    );
    std::fs::remove_file(&path).ok();
    let bulk = &responses[0];
    assert!(ok(bulk), "{bulk:?}");
    assert_eq!(num(bulk, "rows"), 3);
    assert!(num(bulk, "chunks") > 1, "{bulk:?}");
    assert_eq!(num(bulk, "fixed"), 3);
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "ingested_rows"), 3);
    assert_eq!(num(stats, "ingest_chunks"), num(&responses[0], "chunks"));
}

#[test]
fn repair_csv_rejects_missing_files_and_foreign_headers() {
    let s = server(ServeConfig::default());
    let (path, literal) = temp_csv("badhdr", "Town,Case\nHZ,\n");
    let responses = session(
        &s,
        &format!(
            "{{\"op\":\"repair_csv\",\"path\":\"/nonexistent/input.csv\"}}\n\
             {{\"op\":\"repair_csv\",\"path\":{literal}}}\n\
             {{\"op\":\"repair_csv\"}}\n\
             {{\"op\":\"stats\"}}\n"
        ),
    );
    std::fs::remove_file(&path).ok();
    assert!(!ok(&responses[0]), "{responses:?}");
    assert!(
        error_of(&responses[0]).contains("cannot open"),
        "{responses:?}"
    );
    // A header that does not match the engine's input schema is a typed
    // ingest error, not a silent misalignment.
    assert!(!ok(&responses[1]), "{responses:?}");
    // Missing path is a parse error.
    assert!(!ok(&responses[2]), "{responses:?}");
    let stats = responses[3].get("stats").unwrap();
    assert_eq!(num(stats, "errors"), 3);
    assert_eq!(num(stats, "ingested_rows"), 0);
}

#[test]
fn disabling_the_gate_lets_a_conflicting_append_through() {
    let task = covid3_task(&[("HZ", "1", "patient"), ("HZ", "2", "patient")]);
    let rules = vec![
        EditingRule::new(vec![(0, 0)], (2, 2), vec![]),
        EditingRule::new(vec![(0, 0), (1, 1)], (2, 2), vec![]),
    ];
    let s = Server::new(
        RepairEngine::new(&task, rules, 0).unwrap(),
        ServeConfig {
            analysis_gate: false,
            ..ServeConfig::default()
        },
    );
    let responses = session(
        &s,
        "{\"op\":\"append\",\"rows\":[[\"HZ\",\"2\",\"flu\"],[\"HZ\",\"2\",\"flu\"]]}\n",
    );
    assert!(ok(&responses[0]), "{responses:?}");
    assert_eq!(num(&responses[0], "appended"), 2);
}

/// Run a scripted session and return the raw response bytes (no parsing):
/// the sharded byte-identity tests compare responses verbatim.
fn session_raw(server: &Server, script: &str) -> String {
    let mut reader = Cursor::new(script.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    serve_pipe(server, &mut reader, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// A wider master (seven cities, three rows each plus one 3:1 split) so a
/// four-way partition actually spreads rows across shards.
fn sharded_task() -> Task {
    let pool = Arc::new(Pool::new());
    let schema = |name: &str| {
        Arc::new(Schema::new(
            name,
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Case"),
            ],
        ))
    };
    let s = |v: &str| Value::str(v);
    let mut bm = RelationBuilder::new(schema("m"), Arc::clone(&pool));
    for city in 0..7 {
        for _ in 0..3 {
            bm.push_row(vec![s(&format!("C{city}")), s(&format!("case{city}"))])
                .unwrap();
        }
    }
    bm.push_row(vec![s("C5"), s("case0")]).unwrap();
    let master = bm.finish();
    let mut bi = RelationBuilder::new(schema("in"), pool);
    bi.push_row(vec![s("C0"), Value::Null]).unwrap();
    let input = bi.finish();
    Task::new(
        input,
        master,
        SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
        (1, 1),
    )
}

#[test]
fn sharded_servers_answer_byte_identically_over_the_protocol() {
    // The same scripted session — repairs (including a NULL routing key
    // that broadcasts), an append, and a repair over the grown master —
    // must produce byte-identical responses whether the engine runs
    // unsharded or over four shards.
    let task = sharded_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let script =
        "{\"op\":\"repair\",\"rows\":[[\"C0\",null],[\"C5\",null],[null,null],[\"C6\",null]]}\n\
                  {\"op\":\"append\",\"rows\":[[\"C5\",\"case5\"],[\"C5\",\"case5\"]]}\n\
                  {\"op\":\"repair\",\"rows\":[[\"C5\",null],[null,null]]}\n";
    let answers: Vec<String> = [1usize, 4]
        .iter()
        .map(|&shards| {
            let engine = RepairEngine::with_shards(&task, rules.clone(), 0, shards).unwrap();
            assert_eq!(engine.shards(), shards);
            let server = Server::new(engine, ServeConfig::default());
            session_raw(&server, script)
        })
        .collect();
    assert!(
        answers[0].contains("\"ok\":true"),
        "the reference session must succeed: {}",
        answers[0]
    );
    assert_eq!(
        answers[0], answers[1],
        "four shards must answer byte-identically to one"
    );
}

#[test]
fn stats_report_shard_routing_counters() {
    let task = sharded_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::with_shards(&task, rules, 0, 4).unwrap();
    let server = Server::new(engine, ServeConfig::default());
    let responses = session(
        &server,
        "{\"op\":\"repair\",\"rows\":[[\"C0\",null],[null,null]]}\n{\"op\":\"stats\"}\n",
    );
    assert!(ok(&responses[0]), "{responses:?}");
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "shards"), 4);
    assert_eq!(num(stats, "shard_routed"), 1, "one row had a routable key");
    assert_eq!(num(stats, "shard_broadcast"), 1, "the NULL key broadcasts");
    assert!(
        float(stats, "shard_imbalance") >= 1.0,
        "imbalance is a max/mean ratio: {stats:?}"
    );
}
