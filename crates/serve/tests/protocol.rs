//! Pipe-mode protocol tests: every abuse a client can commit over the line
//! protocol is answered with an error response on the same session, and
//! well-formed traffic round-trips.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_rules::{EditingRule, SchemaMatch, Task};
use er_serve::{serve_pipe, RepairEngine, ServeConfig, Server};
use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
use serde_json::Value as Json;
use std::io::Cursor;
use std::sync::Arc;

fn covid_task() -> Task {
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "in",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Case"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Infection"),
        ],
    ));
    let s = Value::str;
    let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
    b.push_row(vec![s("HZ"), Value::Null]).unwrap();
    let input = b.finish();
    let mut bm = RelationBuilder::new(m_schema, pool);
    bm.push_row(vec![s("HZ"), s("patient")]).unwrap();
    bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
    bm.push_row(vec![s("BJ"), s("imports")]).unwrap();
    bm.push_row(vec![s("BJ"), s("patient")]).unwrap();
    let master = bm.finish();
    Task::new(
        input,
        master,
        SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
        (1, 1),
    )
}

fn server(config: ServeConfig) -> Server {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    Server::new(RepairEngine::new(&task, rules, 0).unwrap(), config)
}

/// Run a scripted session through the pipe front-end and return the parsed
/// response objects, one per request line.
fn session(server: &Server, script: &str) -> Vec<Json> {
    let mut reader = Cursor::new(script.as_bytes().to_vec());
    let mut out: Vec<u8> = Vec::new();
    serve_pipe(server, &mut reader, &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect()
}

fn ok(v: &Json) -> bool {
    matches!(v.get("ok"), Some(Json::Bool(true)))
}

fn error_of(v: &Json) -> &str {
    v.get("error").and_then(Json::as_str).unwrap_or("")
}

/// Numeric field accessor tolerant of the parser's Int/UInt split.
fn num(v: &Json, key: &str) -> i64 {
    match v.get(key) {
        Some(Json::Int(i)) => *i,
        Some(Json::UInt(u)) => *u as i64,
        other => panic!("field {key} is not a number: {other:?}"),
    }
}

#[test]
fn ping_repair_shutdown_round_trip() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"ping\"}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\",null],[\"??\",null]]}\n\
         {\"op\":\"shutdown\"}\n",
    );
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(ok));
    let repair = &responses[1];
    assert_eq!(repair.get("fixed"), Some(&Json::Int(2)));
    let cells = repair.get("cells").and_then(Json::as_array).unwrap();
    assert_eq!(cells[0].get("attr").and_then(Json::as_str), Some("Case"));
    assert_eq!(
        cells[0].get("value").and_then(Json::as_str),
        Some("patient")
    );
    assert_eq!(
        cells[1].get("value").and_then(Json::as_str),
        Some("imports")
    );
    assert!(s.is_draining(), "shutdown op must start the drain");
}

#[test]
fn malformed_json_keeps_the_session_alive() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "this is not json\n\
         {\"op\":\n\
         {\"op\":\"ping\"}\n",
    );
    assert_eq!(responses.len(), 3);
    assert!(!ok(&responses[0]));
    assert!(!ok(&responses[1]));
    assert!(ok(&responses[2]), "session must survive malformed lines");
}

#[test]
fn unknown_op_is_reported() {
    let s = server(ServeConfig::default());
    let responses = session(&s, "{\"op\":\"frobnicate\"}\n");
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("unknown op"));
}

#[test]
fn over_long_line_is_rejected_but_consumed() {
    let s = server(ServeConfig {
        max_line_bytes: 64,
        ..ServeConfig::default()
    });
    let long = format!(
        "{{\"op\":\"repair\",\"rows\":[[\"{}\",null]]}}",
        "x".repeat(200)
    );
    let responses = session(&s, &format!("{long}\n{{\"op\":\"ping\"}}\n"));
    assert_eq!(responses.len(), 2);
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("exceeds"));
    assert!(
        ok(&responses[1]),
        "the oversized line must be skipped, not fatal"
    );
}

#[test]
fn missing_and_extra_columns_are_row_errors() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\"]]}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null,\"extra\"]]}\n\
         {\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\"]]}\n",
    );
    assert!(responses.iter().all(|r| !ok(r)));
    assert!(error_of(&responses[2]).contains("row 1"), "{responses:?}");
}

#[test]
fn unsupported_cell_types_are_rejected() {
    let s = server(ServeConfig::default());
    let responses = session(&s, "{\"op\":\"repair\",\"rows\":[[\"HZ\",true]]}\n");
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("row 0 column 1"));
}

#[test]
fn oversized_batches_hit_the_row_limit() {
    let s = server(ServeConfig {
        max_batch_rows: 2,
        ..ServeConfig::default()
    });
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\",null],[\"BJ\",null],[\"SZ\",null]]}\n",
    );
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("exceeds"));
}

#[test]
fn stats_reflect_traffic() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"HZ\",null]]}\n\
         nonsense\n\
         {\"op\":\"stats\"}\n",
    );
    let stats = responses[2].get("stats").unwrap();
    assert_eq!(num(stats, "requests"), 3);
    assert_eq!(num(stats, "repairs"), 1);
    assert_eq!(num(stats, "repaired_cells"), 1);
    assert_eq!(num(stats, "errors"), 1);
    assert_eq!(num(stats, "queue_depth"), 0);
}

#[test]
fn append_round_trip_changes_later_repairs() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"repair\",\"rows\":[[\"SZ\",null]]}\n\
         {\"op\":\"append\",\"rows\":[[\"SZ\",\"no symptoms\"],[\"SZ\",\"no symptoms\"]]}\n\
         {\"op\":\"repair\",\"rows\":[[\"SZ\",null]]}\n\
         {\"op\":\"stats\"}\n",
    );
    assert_eq!(responses.len(), 4);
    // Before the append SZ has no master support.
    assert_eq!(responses[0].get("fixed"), Some(&Json::Int(0)));
    let append = &responses[1];
    assert!(ok(append), "{append:?}");
    assert_eq!(num(append, "appended"), 2);
    assert_eq!(num(append, "master_rows"), 6);
    assert_eq!(num(append, "generation"), 6);
    // After the append the same request is repaired from the grown master.
    assert_eq!(responses[2].get("fixed"), Some(&Json::Int(1)));
    let cells = responses[2].get("cells").and_then(Json::as_array).unwrap();
    assert_eq!(
        cells[0].get("value").and_then(Json::as_str),
        Some("no symptoms")
    );
    let stats = responses[3].get("stats").unwrap();
    assert_eq!(num(stats, "appends"), 1);
    assert_eq!(num(stats, "reloads"), 0);
    assert_eq!(num(stats, "engine_generation"), 6);
}

#[test]
fn append_rejects_bad_rows_and_counts_an_error() {
    let s = server(ServeConfig::default());
    let responses = session(
        &s,
        "{\"op\":\"append\",\"rows\":[[\"SZ\",\"ok\"],[\"short\"]]}\n\
         {\"op\":\"stats\"}\n",
    );
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("row 1"), "{responses:?}");
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "appends"), 0);
    assert_eq!(num(stats, "errors"), 1);
    // The engine stays at its load-time generation (4 master rows).
    assert_eq!(num(stats, "engine_generation"), 4);
}

#[test]
fn append_honours_the_batch_row_limit() {
    let s = server(ServeConfig {
        max_batch_rows: 1,
        ..ServeConfig::default()
    });
    let responses = session(
        &s,
        "{\"op\":\"append\",\"rows\":[[\"a\",\"b\"],[\"c\",\"d\"]]}\n",
    );
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("exceeds"));
}

#[test]
fn reload_updates_the_maintenance_counters() {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid_task();
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::new(&reload_task, Vec::new(), 0).map_err(|e| e.to_string())
    }));
    let responses = session(&s, "{\"op\":\"reload\"}\n{\"op\":\"stats\"}\n");
    assert!(ok(&responses[0]));
    let stats = responses[1].get("stats").unwrap();
    assert_eq!(num(stats, "reloads"), 1);
    assert_eq!(num(stats, "engine_generation"), 4);
}

#[test]
fn reload_without_a_reloader_is_an_error() {
    let s = server(ServeConfig::default());
    let responses = session(&s, "{\"op\":\"reload\"}\n");
    assert!(!ok(&responses[0]));
    assert!(error_of(&responses[0]).contains("not configured"));
}

#[test]
fn reload_swaps_the_engine() {
    let task = covid_task();
    let rules = vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])];
    let engine = RepairEngine::new(&task, rules, 0).unwrap();
    let reload_task = covid_task();
    let s = Server::new(engine, ServeConfig::default()).with_reloader(Box::new(move || {
        RepairEngine::new(&reload_task, Vec::new(), 0).map_err(|e| e.to_string())
    }));
    let responses = session(
        &s,
        "{\"op\":\"reload\"}\n{\"op\":\"repair\",\"rows\":[[\"HZ\",null]]}\n",
    );
    assert!(ok(&responses[0]));
    assert_eq!(responses[0].get("rules"), Some(&Json::Int(0)));
    // The empty reloaded rule set fixes nothing.
    assert_eq!(responses[1].get("fixed"), Some(&Json::Int(0)));
}

#[test]
fn eof_ends_the_session_after_answering_everything() {
    let s = server(ServeConfig::default());
    // No shutdown op, no trailing newline: EOF drains cleanly and the last
    // request is still answered.
    let responses = session(&s, "{\"op\":\"ping\"}\n{\"op\":\"ping\"}");
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(ok));
}
