//! End-to-end analyzer tests over a hand-built Figure-1-style scenario.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_analyze::{analyze, analyze_json, cap_finding, AnalyzeConfig, EditScope};
use er_lint::{DiagnosticCode, Severity};
use er_rules::{chase, ChaseConfig, EditingRule, SchemaMatch, TargetRules, Task};
use er_table::{Attribute, Pool, Relation, RelationBuilder, Schema, Value};
use std::sync::Arc;

/// Input (Name, City, ZIP, AC, Phone, Sex, Case, Date, Overseas) and master
/// (FN, LN, City, ZIP, AC, Phone, Sex, Case, Date) — the paper's Figure 1.
fn figure1() -> (Arc<Schema>, Relation) {
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "input",
        [
            "Name", "City", "ZIP", "AC", "Phone", "Sex", "Case", "Date", "Overseas",
        ]
        .into_iter()
        .map(Attribute::categorical)
        .collect(),
    ));
    let m_schema = Arc::new(Schema::new(
        "master",
        [
            "FN", "LN", "City", "ZIP", "AC", "Phone", "Sex", "Case", "Date",
        ]
        .into_iter()
        .map(Attribute::categorical)
        .collect(),
    ));
    let mut b = RelationBuilder::new(m_schema, pool);
    for row in [
        [
            "Kevin",
            "Lees",
            "SZ",
            "51800",
            "755",
            "625-0418",
            "Male",
            "contact with imports",
            "2021-10",
        ],
        [
            "Kyrie",
            "Wang",
            "BJ",
            "10021",
            "010",
            "358-1563",
            "Female",
            "contact with imports",
            "2021-11",
        ],
        [
            "Kevin",
            "Sun",
            "HZ",
            "31200",
            "571",
            "325-8465",
            "Male",
            "contact with patient",
            "2021-12",
        ],
        [
            "Susan",
            "Lu",
            "HZ",
            "31200",
            "571",
            "325-8931",
            "Female",
            "contact with patient",
            "2021-12",
        ],
    ] {
        b.push_row(row.into_iter().map(Value::str).collect())
            .unwrap();
    }
    (in_schema, b.finish())
}

#[test]
fn incomparable_single_attribute_rules_are_clean() {
    let (in_schema, master) = figure1();
    // The four Figure-1 rules: City/Date/ZIP/AC each key Case alone.
    let targets = vec![TargetRules {
        target: (6, 7),
        rules: vec![
            EditingRule::new(vec![(1, 2)], (6, 7), vec![]),
            EditingRule::new(vec![(7, 8)], (6, 7), vec![]),
            EditingRule::new(vec![(2, 3)], (6, 7), vec![]),
            EditingRule::new(vec![(3, 4)], (6, 7), vec![]),
        ],
    }];
    let report = analyze(&in_schema, &master, &targets, &AnalyzeConfig::default());
    assert!(report.termination.certified);
    assert!(report.conflicts.is_empty());
    assert!(report.unreachable.is_empty());
    assert!(report.gate_clean());
    assert_eq!(report.errors(), 0);
}

#[test]
fn comparable_pair_with_contradicting_prescriptions_is_er009() {
    let (in_schema, master) = figure1();
    // Name→Case vs (Name, City)→Case: for FN=Kevin the broad rule's modal is
    // "contact with imports" (tie of 1–1, smaller code wins), but pinning
    // City=HZ flips it to "contact with patient" — a contradiction witnessed
    // by master row 2 (Kevin Sun, HZ).
    let targets = vec![TargetRules {
        target: (6, 7),
        rules: vec![
            EditingRule::new(vec![(0, 0)], (6, 7), vec![]),
            EditingRule::new(vec![(0, 0), (1, 2)], (6, 7), vec![]),
        ],
    }];
    let report = analyze(&in_schema, &master, &targets, &AnalyzeConfig::default());
    assert!(report.termination.certified);
    assert_eq!(report.conflicts.len(), 1);
    let w = &report.conflicts[0];
    assert_eq!((w.rule, w.related), (1, 0));
    assert_eq!(w.master_row, 2);
    assert_eq!(w.narrow_value, "contact with patient");
    assert_eq!(w.broad_value, "contact with imports");
    assert_eq!(w.conflicting_rows, 1);
    assert_eq!(w.master_tuple[0], "Kevin");
    assert_eq!(w.master_tuple[2], "HZ");
    assert!(!report.gate_clean());
    let finding = &report.findings[0];
    assert_eq!(finding.code, DiagnosticCode::Er009);
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.rule, 1);
    assert_eq!(finding.related, Some(0));
    assert!(finding.note.as_ref().unwrap().contains("master row 2"));
}

#[test]
fn cyclic_targets_lose_the_termination_certificate() {
    let (in_schema, master) = figure1();
    // ZIP keys AC and AC keys ZIP: the dependency graph is a 2-cycle.
    let targets = vec![
        TargetRules {
            target: (3, 4),
            rules: vec![EditingRule::new(vec![(2, 3)], (3, 4), vec![])],
        },
        TargetRules {
            target: (2, 3),
            rules: vec![EditingRule::new(vec![(3, 4)], (2, 3), vec![])],
        },
    ];
    let report = analyze(&in_schema, &master, &targets, &AnalyzeConfig::default());
    assert!(!report.termination.certified);
    let cycle = report.termination.cycle.as_ref().expect("cycle witness");
    assert_eq!(cycle.attrs.len(), 2);
    assert!(!report.gate_clean());
    let er008: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == DiagnosticCode::Er008)
        .collect();
    assert_eq!(er008.len(), 1);
    assert_eq!(er008[0].severity, Severity::Error);
    assert!(er008[0].message.contains("cyclic"));
}

#[test]
fn certified_sets_may_chase_uncapped() {
    let (in_schema, master) = figure1();
    // City → ZIP → AC chain: certified with depth 2, bound 3.
    let targets = vec![
        TargetRules {
            target: (2, 3),
            rules: vec![EditingRule::new(vec![(1, 2)], (2, 3), vec![])],
        },
        TargetRules {
            target: (3, 4),
            rules: vec![EditingRule::new(vec![(2, 3)], (3, 4), vec![])],
        },
    ];
    let report = analyze(&in_schema, &master, &targets, &AnalyzeConfig::default());
    assert!(report.termination.certified);
    assert_eq!(report.termination.rounds_bound, Some(3));
    // Run the certified set uncapped over an input with a NULL cascade.
    let mut b = RelationBuilder::new(Arc::clone(&in_schema), Arc::clone(master.pool()));
    b.push_row(
        [
            Value::str("Ann"),
            Value::str("HZ"),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]
        .to_vec(),
    )
    .unwrap();
    let input = b.finish();
    let matching =
        SchemaMatch::from_pairs(9, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8)]);
    let result = chase(
        &input,
        &master,
        &matching,
        &targets,
        ChaseConfig::uncapped(),
    );
    assert!(result.converged);
    assert!(result.rounds <= report.termination.rounds_bound.unwrap() + 1);
    let code = |v: &str| master.pool().code_of(&Value::str(v)).unwrap();
    assert_eq!(result.repaired.code(0, 2), code("31200"));
    assert_eq!(result.repaired.code(0, 3), code("571"));
    // And a capped run that converges yields no ER008 runtime finding.
    assert!(cap_finding(&result, &ChaseConfig::uncapped()).is_none());
    let capped = chase(
        &input,
        &master,
        &matching,
        &targets,
        ChaseConfig {
            max_rounds: 1,
            ..Default::default()
        },
    );
    let finding = cap_finding(
        &capped,
        &ChaseConfig {
            max_rounds: 1,
            ..Default::default()
        },
    )
    .expect("cap hit reported");
    assert_eq!(finding.code, DiagnosticCode::Er008);
    assert_eq!(finding.severity, Severity::Warning);
}

#[test]
fn renders_text_and_json_with_certificates() {
    let (in_schema, master) = figure1();
    let targets = vec![TargetRules {
        target: (6, 7),
        rules: vec![
            EditingRule::new(vec![(0, 0)], (6, 7), vec![]),
            EditingRule::new(vec![(0, 0), (1, 2)], (6, 7), vec![]),
        ],
    }];
    let report = analyze(&in_schema, &master, &targets, &AnalyzeConfig::default());
    let text = report.render_text();
    assert!(text.contains("termination: CERTIFIED"), "{text}");
    assert!(text.contains("conflicts: 1 contradicting pair"), "{text}");
    assert!(text.contains("error[ER009]"), "{text}");
    let json = report.render_json();
    assert!(json.contains("\"certified\": true"), "{json}");
    assert!(json.contains("\"master_row\": 2"), "{json}");
    assert!(json.contains(DiagnosticCode::Er009.as_str()), "{json}");
}

#[test]
fn portable_documents_report_file_order_indexes() {
    let (in_schema, master) = figure1();
    let mut b = RelationBuilder::new(Arc::clone(&in_schema), Arc::clone(master.pool()));
    b.push_row(vec![Value::Null; 9]).unwrap();
    let input = b.finish();
    let matching = SchemaMatch::from_pairs(9, &[(1, 2), (2, 3), (3, 4)]);
    let task = Task::new(input, master.clone(), matching, (6, 7));
    // File order interleaves the target groups: grouping concatenates them
    // as [#0, #3, #1, #2], so witness indexes must be mapped back.
    let json = r#"[
        {"lhs": [["City", "City"]], "target": ["Case", "Case"], "pattern": [], "measures": null},
        {"lhs": [["ZIP", "ZIP"]], "target": ["AC", "AC"], "pattern": [], "measures": null},
        {"lhs": [["AC", "AC"]], "target": ["ZIP", "ZIP"], "pattern": [], "measures": null},
        {"lhs": [["Date", "Date"]], "target": ["Case", "Case"], "pattern": [], "measures": null}
    ]"#;
    let report = analyze_json(json, &task, &AnalyzeConfig::default()).unwrap();
    assert_eq!(report.num_rules, 4);
    assert_eq!(report.num_targets, 3);
    assert!(!report.termination.certified);
    let cycle = report.termination.cycle.as_ref().expect("cycle");
    // The cycle runs through rules #1 (ZIP→AC) and #2 (AC→ZIP) in *file*
    // order, even though grouping reordered them internally.
    let mut rules = cycle.rules.clone();
    rules.sort_unstable();
    assert_eq!(rules, vec![1, 2]);
}

#[test]
fn ill_formed_portable_rules_are_hard_errors() {
    let (in_schema, master) = figure1();
    let mut b = RelationBuilder::new(Arc::clone(&in_schema), Arc::clone(master.pool()));
    b.push_row(vec![Value::Null; 9]).unwrap();
    let input = b.finish();
    let task = Task::new(input, master, SchemaMatch::from_pairs(9, &[(1, 2)]), (6, 7));
    let json = r#"[
        {"lhs": [["Case", "City"]], "target": ["Case", "Case"], "pattern": [], "measures": null}
    ]"#;
    let err = analyze_json(json, &task, &AnalyzeConfig::default()).unwrap_err();
    assert!(err.contains("ill-formed"), "{err}");
    let bad_attr = r#"[
        {"lhs": [["Nope", "City"]], "target": ["Case", "Case"], "pattern": [], "measures": null}
    ]"#;
    let err = analyze_json(bad_attr, &task, &AnalyzeConfig::default()).unwrap_err();
    assert!(err.contains("rule #0"), "{err}");
}

// ---- er-diff: edit-scope analysis of rule-set version pairs ----

/// The Figure-1 schema match (Name and Overseas unmatched).
fn figure1_matching() -> SchemaMatch {
    SchemaMatch::from_pairs(9, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8)])
}

/// The four Figure-1 v1 rules: City/Date/ZIP/AC each key Case, no pattern.
fn v1_targets() -> Vec<TargetRules> {
    vec![TargetRules {
        target: (6, 7),
        rules: vec![
            EditingRule::new(vec![(1, 2)], (6, 7), vec![]),
            EditingRule::new(vec![(7, 8)], (6, 7), vec![]),
            EditingRule::new(vec![(2, 3)], (6, 7), vec![]),
            EditingRule::new(vec![(3, 4)], (6, 7), vec![]),
        ],
    }]
}

/// v2: every v1 rule gains the pattern Date = "2021-12", so the 2021-10 and
/// 2021-11 master signatures lose their prescription entirely.
fn v2_targets(master: &Relation) -> Vec<TargetRules> {
    let date = master.pool().code_of(&Value::str("2021-12")).unwrap();
    let cond = || vec![er_rules::Condition::eq(7, date)];
    vec![TargetRules {
        target: (6, 7),
        rules: vec![
            EditingRule::new(vec![(1, 2)], (6, 7), cond()),
            EditingRule::new(vec![(7, 8)], (6, 7), cond()),
            EditingRule::new(vec![(2, 3)], (6, 7), cond()),
            EditingRule::new(vec![(3, 4)], (6, 7), cond()),
        ],
    }]
}

#[test]
fn identical_versions_certify_equivalence_structurally() {
    let (in_schema, master) = figure1();
    let v1 = v1_targets();
    let report = er_analyze::diff(
        &in_schema,
        &master,
        &figure1_matching(),
        &v1,
        &v1,
        None,
        &AnalyzeConfig::default(),
    );
    assert!(report.equivalent());
    assert!(report.gate_clean());
    assert!(report.findings.is_empty());
    assert_eq!((report.shared, report.added, report.removed), (4, 0, 0));
    // Structural identity short-circuits: no signatures are enumerated.
    assert_eq!(report.candidates, 0);
    let cert = report.certificate().expect("certificate");
    assert!(cert.contains("CERTIFIED"), "{cert}");
    assert!(cert.contains("structurally identical"), "{cert}");
    assert!(report.render_text().contains("CERTIFIED"));
    assert!(report.render_json().contains("\"equivalent\": true"));
}

#[test]
fn narrowing_every_rule_to_one_date_changes_two_signatures() {
    let (in_schema, master) = figure1();
    let report = er_analyze::diff(
        &in_schema,
        &master,
        &figure1_matching(),
        &v1_targets(),
        &v2_targets(&master),
        None,
        &AnalyzeConfig::default(),
    );
    // Three master signatures over {City, ZIP, AC, Date}: SZ/2021-10,
    // BJ/2021-11, HZ/2021-12 (two rows). All three are candidates (the
    // removed v1 rules fire everywhere); only the first two change verdict.
    assert_eq!(report.signatures, 3);
    assert_eq!(report.candidates, 3);
    assert_eq!((report.added, report.removed, report.shared), (4, 4, 0));
    assert!(!report.equivalent());
    assert!(report.certificate().is_none());
    assert_eq!(report.changes.len(), 2);

    let sz = &report.changes[0];
    assert_eq!(sz.master_row, 0);
    assert_eq!(sz.rows, 1);
    assert_eq!(sz.old.as_deref(), Some("contact with imports"));
    assert_eq!(sz.new, None);
    assert!(sz.in_scope, "no scope declared => everything in scope");
    assert!(sz
        .signature
        .contains(&("City".to_string(), "SZ".to_string())));
    assert!(sz
        .signature
        .contains(&("Date".to_string(), "2021-10".to_string())));
    assert_eq!(sz.master_tuple[0], "Kevin");
    assert_eq!(sz.master_tuple[1], "Lees");

    let bj = &report.changes[1];
    assert_eq!(bj.master_row, 1);
    assert_eq!(bj.old.as_deref(), Some("contact with imports"));
    assert_eq!(bj.new, None);
    assert!(bj
        .signature
        .contains(&("City".to_string(), "BJ".to_string())));

    // ER011 per change, Info severity: the gate stays clean without a scope.
    assert_eq!(report.findings.len(), 2);
    assert!(report
        .findings
        .iter()
        .all(|f| f.code == DiagnosticCode::Er011 && f.severity == Severity::Info));
    assert_eq!(report.errors(), 0);
    assert_eq!(report.infos(), 2);
    assert!(report.gate_clean());
    let text = report.render_text();
    assert!(text.contains("info[ER011]"), "{text}");
    assert!(text.contains("witness: master row 0"), "{text}");
}

#[test]
fn out_of_scope_changes_are_er012_errors() {
    let (in_schema, master) = figure1();
    // The caller declares the edit only touches Date=2021-12 signatures —
    // but the actual changes hit 2021-10 and 2021-11.
    let scope = EditScope::from_json(r#"[{"Date":"2021-12"}]"#).unwrap();
    let report = er_analyze::diff(
        &in_schema,
        &master,
        &figure1_matching(),
        &v1_targets(),
        &v2_targets(&master),
        Some(&scope),
        &AnalyzeConfig::default(),
    );
    assert_eq!(report.changes.len(), 2);
    assert!(report.changes.iter().all(|c| !c.in_scope));
    assert_eq!(report.errors(), 2);
    assert_eq!(report.infos(), 2);
    assert!(!report.gate_clean());
    let er012: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.code == DiagnosticCode::Er012)
        .collect();
    assert_eq!(er012.len(), 2);
    assert!(er012.iter().all(|f| f.severity == Severity::Error));
    assert!(report.render_text().contains("OUT OF SCOPE"));

    // A scope that names the changed signatures keeps the gate clean.
    let wide = EditScope::from_json(r#"[{"Date":"2021-10"},{"Date":"2021-11"}]"#).unwrap();
    let report = er_analyze::diff(
        &in_schema,
        &master,
        &figure1_matching(),
        &v1_targets(),
        &v2_targets(&master),
        Some(&wide),
        &AnalyzeConfig::default(),
    );
    assert_eq!(report.changes.len(), 2);
    assert!(report.changes.iter().all(|c| c.in_scope));
    assert_eq!(report.errors(), 0);
    assert!(report.gate_clean());
}

#[test]
fn statically_dead_added_rules_are_pruned_and_equivalence_holds() {
    let (in_schema, master) = figure1();
    let paris = master.pool().intern(Value::str("PARIS"));
    let mut v2 = v1_targets();
    // City=PARIS is outside the master City domain, so the added rule can
    // never fire: ColumnStats prune it without enumerating signatures.
    v2[0].rules.push(EditingRule::new(
        vec![(1, 2)],
        (6, 7),
        vec![er_rules::Condition::eq(1, paris)],
    ));
    let report = er_analyze::diff(
        &in_schema,
        &master,
        &figure1_matching(),
        &v1_targets(),
        &v2,
        None,
        &AnalyzeConfig::default(),
    );
    assert_eq!(report.added, 1);
    assert_eq!(report.pruned, 1);
    assert_eq!(report.candidates, 0);
    assert!(report.equivalent());
    let cert = report.certificate().expect("certificate");
    assert!(cert.contains("1 added"), "{cert}");
}

#[test]
fn diff_json_resolves_portable_documents() {
    let (in_schema, master) = figure1();
    let mut b = RelationBuilder::new(Arc::clone(&in_schema), Arc::clone(master.pool()));
    b.push_row(vec![Value::Null; 9]).unwrap();
    let input = b.finish();
    let task = Task::new(input, master, figure1_matching(), (6, 7));
    let v1 = r#"[
        {"lhs": [["City", "City"]], "target": ["Case", "Case"], "pattern": [], "measures": null},
        {"lhs": [["Date", "Date"]], "target": ["Case", "Case"], "pattern": [], "measures": null}
    ]"#;
    let v2 = r#"[
        {"lhs": [["City", "City"]], "target": ["Case", "Case"],
         "pattern": [{"Eq": {"attr": "Date", "value": "2021-12", "numeric": false}}], "measures": null},
        {"lhs": [["Date", "Date"]], "target": ["Case", "Case"],
         "pattern": [{"Eq": {"attr": "Date", "value": "2021-12", "numeric": false}}], "measures": null}
    ]"#;
    let report = er_analyze::diff_json(v1, v2, &task, None, &AnalyzeConfig::default()).unwrap();
    assert_eq!(report.changes.len(), 2);
    assert_eq!(report.changes[0].master_row, 0);
    assert_eq!(report.changes[1].master_row, 1);
    assert!(report
        .changes
        .iter()
        .all(|c| c.old.as_deref() == Some("contact with imports") && c.new.is_none()));

    // Identity through JSON certifies equivalence.
    let same = er_analyze::diff_json(v1, v1, &task, None, &AnalyzeConfig::default()).unwrap();
    assert!(same.equivalent());

    let err = er_analyze::diff_json("[", v1, &task, None, &AnalyzeConfig::default()).unwrap_err();
    assert!(err.starts_with("old:"), "{err}");
}

#[test]
fn scope_json_rejects_malformed_documents() {
    assert!(EditScope::from_json(r#"[{"City":"HZ"}]"#).is_ok());
    assert!(EditScope::from_json(r#"{"City":"HZ"}"#).is_ok());
    assert!(EditScope::from_json(r#""City""#).is_err());
    assert!(EditScope::from_json(r#"[{"City":true}]"#).is_err());
    let scope = EditScope::from_json(r#"[{"City":"HZ","ZIP":"31200"}]"#).unwrap();
    let sig = vec![
        ("City".to_string(), "HZ".to_string()),
        ("ZIP".to_string(), "31200".to_string()),
    ];
    assert!(scope.contains(&sig));
    assert!(!scope.contains(&sig[..1]));
}
