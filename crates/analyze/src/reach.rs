//! Reachability pass: rules that cannot fire against the current master.
//!
//! An editing rule only fires when its LHS key matches some master tuple and
//! the matched tuple has a non-NULL target value to copy. Both are
//! properties of the *current* master domains, summarized per column by
//! [`er_table::ColumnStats`]. [`MasterProfile`] keeps those summaries
//! generation-aware: `er-incr` appends fold in via
//! [`er_table::ColumnStats::update_rows`] instead of a recompute, so the
//! pass composes with a growing master — appends can both create and clear
//! ER010 findings, and the analysis report records the generation it was
//! computed at.

use er_par::WorkerPool;
use er_rules::{EditingRule, Pred, TargetRules};
use er_table::{AttrId, ColumnStats, Relation, Schema};

/// Per-column [`ColumnStats`] of a master relation, stamped with the row
/// count and generation they were computed over.
#[derive(Debug, Clone)]
pub struct MasterProfile {
    rows: usize,
    generation: u64,
    stats: Vec<ColumnStats>,
}

impl MasterProfile {
    /// Profile every column of `master`.
    pub fn new(master: &Relation) -> Self {
        MasterProfile {
            rows: master.num_rows(),
            generation: master.generation(),
            stats: (0..master.schema().arity())
                .map(|a| ColumnStats::compute(master, a))
                .collect(),
        }
    }

    /// Fold rows appended since this profile was computed into every
    /// column's stats — equal to a fresh [`MasterProfile::new`] over the
    /// grown relation, at append cost.
    pub fn refresh(&mut self, master: &Relation) -> er_table::Result<()> {
        for (a, stats) in self.stats.iter_mut().enumerate() {
            stats.update_rows(master, a, self.rows)?;
        }
        self.rows = master.num_rows();
        self.generation = master.generation();
        Ok(())
    }

    /// Row count the profile covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Master generation the profile covers.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stats of one master column.
    pub fn stats(&self, attr: AttrId) -> &ColumnStats {
        &self.stats[attr]
    }
}

/// One rule the pass proved dead against the profiled master.
#[derive(Debug, Clone)]
pub struct UnreachableRule {
    /// The dead rule's reported index.
    pub rule: usize,
    /// Why it can never fire.
    pub reason: String,
}

/// Run the reachability pass. `display` maps concatenated rule positions to
/// reported indexes.
pub(crate) fn reachability_pass(
    input_schema: &Schema,
    master: &Relation,
    profile: &MasterProfile,
    targets: &[TargetRules],
    pool: &WorkerPool,
    display: &dyn Fn(usize) -> usize,
) -> Vec<UnreachableRule> {
    let mut rules: Vec<(usize, AttrId, &EditingRule)> = Vec::new();
    let mut g = 0usize;
    for t in targets {
        for r in &t.rules {
            rules.push((display(g), t.target.1, r));
            g += 1;
        }
    }
    pool.map(&rules, |&(idx, ym, rule)| {
        dead_reason(input_schema, master, profile, ym, rule)
            .map(|reason| UnreachableRule { rule: idx, reason })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The first proof that `rule` cannot fire, if any. Checks, in order: LHS
/// master columns with no values to match, a target column with no values
/// to copy, and pattern conditions on LHS attributes that exclude every
/// value the paired master column holds (for `(A, A_m)` in the LHS, a firing
/// requires `t[A] = t_m[A_m]`, so `t[A]` is confined to `A_m`'s domain).
pub(crate) fn dead_reason(
    input_schema: &Schema,
    master: &Relation,
    profile: &MasterProfile,
    ym: AttrId,
    rule: &EditingRule,
) -> Option<String> {
    let m_schema = master.schema();
    for &(_, am) in rule.lhs() {
        if profile.stats(am).distinct() == 0 {
            return Some(format!(
                "LHS master column `{}` has no non-NULL values, so the lookup \
                 t[X] = t_m[X_m] can never match",
                m_schema.attr(am).name
            ));
        }
    }
    if profile.stats(ym).distinct() == 0 {
        return Some(format!(
            "master target column `{}` has no non-NULL values, so there is \
             nothing to copy",
            m_schema.attr(ym).name
        ));
    }
    for cond in rule.pattern() {
        let Some(&(_, am)) = rule.lhs().iter().find(|&&(a, _)| a == cond.attr) else {
            continue;
        };
        let stats = profile.stats(am);
        let supported = stats
            .frequencies
            .iter()
            .any(|&(c, _)| cond.pred.matches(c, master.pool().value(c).as_f64()));
        if !supported {
            let pred = match &cond.pred {
                Pred::Eq(c) => format!("= {}", master.pool().value(*c)),
                Pred::Range { lo, hi } if hi.is_infinite() => format!("∈ [{lo}, ∞)"),
                Pred::Range { lo, hi } => format!("∈ [{lo}, {hi})"),
                Pred::OneOf(codes) => format!("∈ {{{} values}}", codes.len()),
            };
            return Some(format!(
                "pattern condition on LHS attribute (`{a}` {pred}) excludes every \
                 value master column `{am}` holds (generation {gen})",
                a = input_schema.attr(cond.attr).name,
                pred = pred,
                am = m_schema.attr(am).name,
                gen = profile.generation()
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::{Attribute, Pool, RelationBuilder, Value};
    use std::sync::Arc;

    fn master(rows: &[(&str, Option<&str>)]) -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("Infection"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        for &(city, inf) in rows {
            b.push_row(vec![
                Value::str(city),
                inf.map(Value::str).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn refresh_equals_fresh_profile() {
        let mut m = master(&[("HZ", Some("flu")), ("BJ", None)]);
        let mut p = MasterProfile::new(&m);
        m.push_row(vec![Value::str("SZ"), Value::str("cold")])
            .unwrap();
        m.push_row(vec![Value::str("HZ"), Value::Null]).unwrap();
        p.refresh(&m).unwrap();
        let fresh = MasterProfile::new(&m);
        assert_eq!(p.rows(), fresh.rows());
        assert_eq!(p.generation(), fresh.generation());
        for a in 0..2 {
            assert_eq!(p.stats(a).frequencies, fresh.stats(a).frequencies);
            assert_eq!(p.stats(a).nulls, fresh.stats(a).nulls);
        }
    }

    #[test]
    fn all_null_target_column_is_dead() {
        let m = master(&[("HZ", None), ("BJ", None)]);
        let profile = MasterProfile::new(&m);
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let reason = dead_reason(m.schema(), &m, &profile, 1, &rule).expect("dead");
        assert!(reason.contains("nothing to copy"), "{reason}");
    }

    #[test]
    fn lhs_pinned_pattern_outside_master_domain_is_dead_until_appended() {
        let mut m = master(&[("HZ", Some("flu"))]);
        let profile = MasterProfile::new(&m);
        let paris = m.pool().intern(Value::str("PARIS"));
        let rule = EditingRule::new(
            vec![(0, 0)],
            (1, 1),
            vec![er_rules::Condition::eq(0, paris)],
        );
        let reason = dead_reason(m.schema(), &m, &profile, 1, &rule).expect("dead");
        assert!(reason.contains("excludes every value"), "{reason}");
        // Appending a PARIS master row revives the rule (generation-aware).
        m.push_row(vec![Value::str("PARIS"), Value::str("cold")])
            .unwrap();
        let mut grown = profile.clone();
        grown.refresh(&m).unwrap();
        assert!(dead_reason(m.schema(), &m, &grown, 1, &rule).is_none());
    }

    #[test]
    fn live_rule_has_no_reason() {
        let m = master(&[("HZ", Some("flu"))]);
        let profile = MasterProfile::new(&m);
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        assert!(dead_reason(m.schema(), &m, &profile, 1, &rule).is_none());
    }
}
