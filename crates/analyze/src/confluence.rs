//! Confluence pass: critical pairs of rules joined symbolically, with a
//! machine-checkable certificate when every pair joins.
//!
//! The chase applies rules one at a time and freezes each repaired cell, so
//! the *order* rules fire in matters exactly when two rules prescribe
//! different values for the same target cell: whichever applies first wins.
//! The conflict pass (ER009) only examines pairs with comparable evidence
//! (strict-subset LHS); this pass closes the classic critical-pair property
//! for the whole set. A **critical pair** is any two distinct rules on the
//! same target whose LHS patterns unify — some input tuple can fire both —
//! witnessed concretely by a master row that pins both LHS keys NULL-free
//! with every pattern condition satisfied. For each witness the two one-step
//! chase states are joined symbolically:
//!
//! - both modal prescriptions agree → the pair **joins** on this witness;
//! - they differ and the combined two-rule certainty vote strictly favors
//!   one value → the states are **not joinable** (each order commits its own
//!   value and freezing prevents re-repair) — ER013 (Error) with the row and
//!   both order outcomes as the counterexample;
//! - they differ but the combined vote ties exactly → both orders converge
//!   only because the deterministic smaller-code tie-break picks the same
//!   winner — ER014 (Warning): verdict-equivalent but order-fragile.
//!
//! When every pair joins outright the pass issues a
//! [`ConfluenceCertificate`] stamped with the master generation: a license
//! for the engines to fold votes in *arrival* order instead of rule order
//! (`er_par::WorkerPool::unordered_fold`, the sharded merge). Appends bump
//! the generation and invalidate the stamp; `er-serve` re-runs the pass on
//! `reload` and on append previews to re-issue it. Vote comparisons use
//! exact integer cross-multiplication (`cnt/total` fractions over a common
//! denominator), never floats, so the verdict is itself order-independent.

use crate::conflict::{modal, preds_overlap};
use er_par::WorkerPool;
use er_rules::{EditingRule, TargetRules};
use er_table::{AttrId, Code, GroupIndex, Relation, NULL_CODE};
use std::collections::HashMap;

/// The confluence pass's outcome: the certificate when every critical pair
/// joins, the counterexamples when not.
#[derive(Debug, Clone)]
pub struct ConfluenceCertificate {
    /// Whether every critical pair joins outright (no ER013 divergence and
    /// no ER014 tie-break dependence). Only a certified set licenses the
    /// unordered merge paths.
    pub certified: bool,
    /// Critical pairs examined (unifiable LHS patterns on a shared target).
    pub pairs: usize,
    /// Per-pair joinability proofs: how many concrete witness rows each
    /// pair was joined on (present for joining pairs, including vacuous
    /// ones with zero joint witnesses).
    pub proofs: Vec<JoinProof>,
    /// Non-joinable pairs (ER013): the two orders commit different values.
    pub divergent: Vec<OrderWitness>,
    /// Tie-break-dependent pairs (ER014): verdict-equivalent, order-fragile.
    pub tie_broken: Vec<OrderWitness>,
    /// Master generation the pass ran against. The certificate is valid
    /// only while the engine's master is at this generation — appends
    /// invalidate it until the pass is re-run.
    pub generation: u64,
    /// Rules in the analyzed set (a cheap identity check alongside the
    /// generation stamp).
    pub num_rules: usize,
}

/// Joinability evidence for one critical pair.
#[derive(Debug, Clone)]
pub struct JoinProof {
    /// Higher-indexed rule of the pair.
    pub rule: usize,
    /// Lower-indexed rule of the pair.
    pub related: usize,
    /// Master rows that fire both rules; on every one the prescriptions
    /// agreed (0 = the pair never fires jointly on the current master).
    pub witness_rows: usize,
}

/// A concrete two-order counterexample for a critical pair.
#[derive(Debug, Clone)]
pub struct OrderWitness {
    /// Higher-indexed rule of the pair (the finding anchors here).
    pub rule: usize,
    /// Lower-indexed rule of the pair.
    pub related: usize,
    /// First master row witnessing the divergence.
    pub master_row: usize,
    /// The witness tuple's rendered values, master attribute order.
    pub master_tuple: Vec<String>,
    /// Value committed when rule `related` applies first.
    pub first_value: String,
    /// Value committed when rule `rule` applies first.
    pub second_value: String,
    /// Master rows witnessing this pair's divergence (the reported row is
    /// the first).
    pub rows: usize,
}

/// How one critical pair resolved.
enum PairVerdict {
    Joins { witness_rows: usize },
    Diverges(RawWitness),
    TieBreaks(RawWitness),
}

struct RawWitness {
    master_row: usize,
    first: Code,
    second: Code,
    rows: usize,
}

/// Run the confluence pass over every target group. `display` maps a rule's
/// position in the concatenated `targets` order to its reported index.
pub(crate) fn confluence_pass(
    master: &Relation,
    targets: &[TargetRules],
    pool: &WorkerPool,
    display: &dyn Fn(usize) -> usize,
) -> ConfluenceCertificate {
    let num_rules: usize = targets.iter().map(|t| t.rules.len()).sum();
    let mut cert = ConfluenceCertificate {
        certified: true,
        pairs: 0,
        proofs: Vec::new(),
        divergent: Vec::new(),
        tie_broken: Vec::new(),
        generation: master.generation(),
        num_rules,
    };
    let mut g = 0usize;
    for t in targets {
        let rules: Vec<(usize, &EditingRule)> = t
            .rules
            .iter()
            .map(|r| {
                let idx = display(g);
                g += 1;
                (idx, r)
            })
            .collect();
        // Critical-pair candidates: every unordered pair whose patterns can
        // hold simultaneously (conditions on attributes pinned by neither
        // LHS must overlap; pinned attributes are checked per master row).
        type IndexedRule<'a> = (usize, &'a EditingRule);
        let mut pairs: Vec<(IndexedRule<'_>, IndexedRule<'_>)> = Vec::new();
        for (pa, &(i, ri)) in rules.iter().enumerate() {
            for &(j, rj) in rules.iter().skip(pa + 1) {
                let (lo, hi) = if i < j {
                    ((i, ri), (j, rj))
                } else {
                    ((j, rj), (i, ri))
                };
                if patterns_unify(master, lo.1, hi.1) {
                    pairs.push((lo, hi));
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        cert.pairs += pairs.len();
        // One warmed group index per distinct X_m, shared by every pair.
        let mut indexes: HashMap<Vec<AttrId>, GroupIndex> = HashMap::new();
        for &(_, r) in &rules {
            indexes
                .entry(r.xm())
                .or_insert_with(|| GroupIndex::build(master, &r.xm(), t.target.1));
        }
        let verdicts = pool.map(&pairs, |&((_, ra), (_, rb))| {
            join_pair(master, ra, rb, &indexes)
        });
        for (verdict, &((i, _), (j, _))) in verdicts.iter().zip(&pairs) {
            match verdict {
                PairVerdict::Joins { witness_rows } => cert.proofs.push(JoinProof {
                    rule: j,
                    related: i,
                    witness_rows: *witness_rows,
                }),
                PairVerdict::Diverges(w) => {
                    cert.certified = false;
                    cert.divergent.push(order_witness(master, i, j, w));
                }
                PairVerdict::TieBreaks(w) => {
                    cert.certified = false;
                    cert.tie_broken.push(order_witness(master, i, j, w));
                }
            }
        }
    }
    cert
}

fn order_witness(master: &Relation, i: usize, j: usize, w: &RawWitness) -> OrderWitness {
    OrderWitness {
        rule: j,
        related: i,
        master_row: w.master_row,
        master_tuple: (0..master.schema().arity())
            .map(|a| master.value(w.master_row, a).to_string())
            .collect(),
        first_value: master.pool().value(w.first).to_string(),
        second_value: master.pool().value(w.second).to_string(),
        rows: w.rows,
    }
}

/// Whether the two rules' patterns can hold on one input tuple. Conditions
/// on attributes pinned by either LHS are checked per master row in
/// [`join_pair`]; here only the *free* attributes constrain unifiability.
fn patterns_unify(master: &Relation, a: &EditingRule, b: &EditingRule) -> bool {
    let pinned = |attr| a.lhs_contains_input(attr) || b.lhs_contains_input(attr);
    for ca in a.pattern() {
        if pinned(ca.attr) {
            continue;
        }
        for cb in b.pattern() {
            if cb.attr == ca.attr && !preds_overlap(master, &ca.pred, &cb.pred) {
                return false;
            }
        }
    }
    true
}

/// Join one critical pair over every concrete witness row of the master.
fn join_pair(
    master: &Relation,
    a: &EditingRule,
    b: &EditingRule,
    indexes: &HashMap<Vec<AttrId>, GroupIndex>,
) -> PairVerdict {
    let idx_a = &indexes[&a.xm()];
    let idx_b = &indexes[&b.xm()];
    let mut joined = 0usize;
    let mut diverge: Option<RawWitness> = None;
    let mut ties: Option<RawWitness> = None;
    'rows: for row in 0..master.num_rows() {
        // Pin both LHS keys NULL-free, and require shared input attributes
        // to pin to one consistent value (an input tuple has one value per
        // attribute; two rules reading it through different master columns
        // only co-fire when those columns agree on this row).
        let mut pins: Vec<(AttrId, Code)> = Vec::new();
        for &(attr, am) in a.lhs().iter().chain(b.lhs()) {
            let c = master.code(row, am);
            if c == NULL_CODE {
                continue 'rows;
            }
            match pins.iter().find(|&&(pa, _)| pa == attr) {
                Some(&(_, prev)) if prev != c => continue 'rows,
                Some(_) => {}
                None => pins.push((attr, c)),
            }
        }
        // Pattern conditions on pinned attributes must hold for the pinned
        // value (free attributes were checked for overlap up front).
        for cond in a.pattern().iter().chain(b.pattern()) {
            let Some(&(_, c)) = pins.iter().find(|&&(pa, _)| pa == cond.attr) else {
                continue;
            };
            if !cond.pred.matches(c, master.pool().value(c).as_f64()) {
                continue 'rows;
            }
        }
        let key = |r: &EditingRule| -> Vec<Code> {
            r.lhs()
                .iter()
                .map(|&(_, am)| master.code(row, am))
                .collect()
        };
        let entries_a = idx_a.get(&key(a));
        let entries_b = idx_b.get(&key(b));
        let (Some(va), Some(vb)) = (modal(entries_a), modal(entries_b)) else {
            continue;
        };
        if va == vb {
            joined += 1;
            continue;
        }
        // Divergent prescriptions: join the states through the combined
        // two-rule certainty vote, compared exactly (cnt/total fractions
        // over the common denominator — integers, no float rounding).
        let tally = |entries: &[(Code, u32)], v: Code| -> (u64, u64) {
            let mut hit = 0u64;
            let mut total = 0u64;
            for &(c, n) in entries {
                if c == NULL_CODE {
                    continue;
                }
                total += u64::from(n);
                if c == v {
                    hit += u64::from(n);
                }
            }
            (hit, total)
        };
        let (a_va, tot_a) = tally(entries_a, va);
        let (b_va, _) = tally(entries_b, va);
        let (a_vb, _) = tally(entries_a, vb);
        let (b_vb, tot_b) = tally(entries_b, vb);
        // score(v) = cnt_a(v)/tot_a + cnt_b(v)/tot_b, cross-multiplied.
        let score_va = a_va * tot_b + b_va * tot_a;
        let score_vb = a_vb * tot_b + b_vb * tot_a;
        let slot = if score_va == score_vb {
            &mut ties
        } else {
            &mut diverge
        };
        match slot {
            Some(w) => w.rows += 1,
            None => {
                *slot = Some(RawWitness {
                    master_row: row,
                    first: va,
                    second: vb,
                    rows: 1,
                })
            }
        }
    }
    // A genuine divergence outranks a tie-break dependence for the pair's
    // verdict; either one denies the certificate.
    if let Some(w) = diverge {
        PairVerdict::Diverges(w)
    } else if let Some(w) = ties {
        PairVerdict::TieBreaks(w)
    } else {
        PairVerdict::Joins {
            witness_rows: joined,
        }
    }
}
