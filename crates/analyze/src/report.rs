//! The analysis report: certificates, witnesses, findings, and the two
//! renderings (text and JSON).

use crate::conflict::ConflictWitness;
use crate::confluence::{ConfluenceCertificate, JoinProof, OrderWitness};
use crate::graph::{CycleWitness, TerminationCertificate};
use crate::reach::UnreachableRule;
use er_lint::{DiagnosticCode, Finding, Severity};
use serde::Serialize;
use serde_json::Value;

/// The outcome of analyzing a rule set: the three passes' certificates plus
/// the same findings re-expressed in the lint diagnostic model (ER008–ER010)
/// so downstream tooling sees one vocabulary.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Rules analyzed.
    pub num_rules: usize,
    /// Target groups analyzed.
    pub num_targets: usize,
    /// Master rows the analysis ran against.
    pub master_rows: usize,
    /// Master generation the analysis ran against (reachability is
    /// generation-aware; re-analyze after appends).
    pub generation: u64,
    /// The termination pass's certificate.
    pub termination: TerminationCertificate,
    /// Every proven conflict (ER009).
    pub conflicts: Vec<ConflictWitness>,
    /// The confluence pass's certificate (ER013/ER014 witnesses inside).
    pub confluence: ConfluenceCertificate,
    /// Every dead rule (ER010).
    pub unreachable: Vec<UnreachableRule>,
    /// The passes' findings, sorted by `(rule, code, related)`.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether the set passes the serve gate: no ER008 cycle and no ER009
    /// conflict (ER010 warnings do not block a load). ER013 non-confluence
    /// is an error in the report but does not block the gate either: a
    /// non-confluent set still serves correctly on the deterministic
    /// rule-order paths — it is only refused the confluence certificate,
    /// so the unordered merge paths stay unlicensed.
    pub fn gate_clean(&self) -> bool {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .all(|f| f.code == er_lint::DiagnosticCode::Er013)
    }

    /// The findings as a plain lint [`er_lint::Report`] (e.g. to merge with
    /// linter output).
    pub fn lint_report(&self) -> er_lint::Report {
        er_lint::Report {
            num_rules: self.num_rules,
            findings: self.findings.clone(),
        }
    }

    /// Render the certificates and findings as text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "analysis: {} rule{} over {} target{}; master: {} row{} (generation {})",
            self.num_rules,
            plural(self.num_rules),
            self.num_targets,
            plural(self.num_targets),
            self.master_rows,
            plural(self.master_rows),
            self.generation,
        );
        let t = &self.termination;
        if t.certified {
            let _ = writeln!(
                out,
                "termination: CERTIFIED — dependency graph is acyclic ({} attrs, {} edges, \
                 depth {}); chase reaches its fixpoint within {} round{}, uncapped runs are safe",
                t.attrs,
                t.edges,
                t.depth,
                t.rounds_bound.unwrap_or(1),
                plural(t.rounds_bound.unwrap_or(1)),
            );
            if !t.order.is_empty() {
                let _ = writeln!(out, "  order: {}", t.order.join(" → "));
            }
        } else if let Some(cycle) = &t.cycle {
            let _ = writeln!(
                out,
                "termination: NOT CERTIFIED — dependency cycle {} (via rule{} {})",
                cycle.chain(),
                plural(cycle.rules.len()),
                cycle
                    .rules
                    .iter()
                    .map(|r| format!("#{r}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        match self.conflicts.len() {
            0 => {
                let _ = writeln!(out, "conflicts: none");
            }
            n => {
                let _ = writeln!(out, "conflicts: {n} contradicting pair{}", plural(n));
            }
        }
        let c = &self.confluence;
        if c.certified {
            let _ = writeln!(
                out,
                "confluence: CERTIFIED — {} critical pair{} join on the current master \
                 (generation {}); arrival-order vote merges are licensed",
                c.pairs,
                plural(c.pairs),
                c.generation,
            );
        } else {
            let _ = writeln!(
                out,
                "confluence: NOT CERTIFIED — {} of {} critical pair{} diverge{}, {} join{} \
                 only by tie-break; vote merges stay in rule order",
                c.divergent.len(),
                c.pairs,
                plural(c.pairs),
                if c.divergent.len() == 1 { "s" } else { "" },
                c.tie_broken.len(),
                if c.tie_broken.len() == 1 { "s" } else { "" },
            );
        }
        match self.unreachable.len() {
            0 => {
                let _ = writeln!(out, "reachability: every rule can fire");
            }
            n => {
                let _ = writeln!(out, "reachability: {n} dead rule{}", plural(n));
            }
        }
        out.push('\n');
        out.push_str(&self.lint_report().render_text());
        out
    }

    /// Render the full report — certificates included — as JSON.
    pub fn render_json(&self) -> String {
        // A pure value tree; serialization is infallible by construction.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("analysis report serializes")
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

impl Serialize for TerminationCertificate {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("certified".to_string(), Value::Bool(self.certified)),
            ("attrs".to_string(), Value::Int(self.attrs as i64)),
            ("edges".to_string(), Value::Int(self.edges as i64)),
            ("depth".to_string(), Value::Int(self.depth as i64)),
            (
                "rounds_bound".to_string(),
                match self.rounds_bound {
                    Some(b) => Value::Int(b as i64),
                    None => Value::Null,
                },
            ),
            (
                "order".to_string(),
                Value::Array(self.order.iter().map(|a| Value::Str(a.clone())).collect()),
            ),
            (
                "cycle".to_string(),
                match &self.cycle {
                    Some(c) => c.to_value(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl Serialize for CycleWitness {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "attrs".to_string(),
                Value::Array(self.attrs.iter().map(|a| Value::Str(a.clone())).collect()),
            ),
            (
                "rules".to_string(),
                Value::Array(self.rules.iter().map(|&r| Value::Int(r as i64)).collect()),
            ),
            ("chain".to_string(), Value::Str(self.chain())),
        ])
    }
}

impl Serialize for ConflictWitness {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::Int(self.rule as i64)),
            ("related".to_string(), Value::Int(self.related as i64)),
            ("master_row".to_string(), Value::Int(self.master_row as i64)),
            (
                "master_tuple".to_string(),
                Value::Array(
                    self.master_tuple
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
            (
                "narrow_value".to_string(),
                Value::Str(self.narrow_value.clone()),
            ),
            (
                "broad_value".to_string(),
                Value::Str(self.broad_value.clone()),
            ),
            (
                "conflicting_rows".to_string(),
                Value::Int(self.conflicting_rows as i64),
            ),
        ])
    }
}

impl Serialize for ConfluenceCertificate {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("certified".to_string(), Value::Bool(self.certified)),
            ("pairs".to_string(), Value::Int(self.pairs as i64)),
            (
                "proofs".to_string(),
                Value::Array(self.proofs.iter().map(Serialize::to_value).collect()),
            ),
            (
                "divergent".to_string(),
                Value::Array(self.divergent.iter().map(Serialize::to_value).collect()),
            ),
            (
                "tie_broken".to_string(),
                Value::Array(self.tie_broken.iter().map(Serialize::to_value).collect()),
            ),
            ("generation".to_string(), Value::UInt(self.generation)),
            ("num_rules".to_string(), Value::Int(self.num_rules as i64)),
        ])
    }
}

impl Serialize for JoinProof {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::Int(self.rule as i64)),
            ("related".to_string(), Value::Int(self.related as i64)),
            (
                "witness_rows".to_string(),
                Value::Int(self.witness_rows as i64),
            ),
        ])
    }
}

impl Serialize for OrderWitness {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::Int(self.rule as i64)),
            ("related".to_string(), Value::Int(self.related as i64)),
            ("master_row".to_string(), Value::Int(self.master_row as i64)),
            (
                "master_tuple".to_string(),
                Value::Array(
                    self.master_tuple
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
            (
                "first_value".to_string(),
                Value::Str(self.first_value.clone()),
            ),
            (
                "second_value".to_string(),
                Value::Str(self.second_value.clone()),
            ),
            ("rows".to_string(), Value::Int(self.rows as i64)),
        ])
    }
}

impl Serialize for UnreachableRule {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rule".to_string(), Value::Int(self.rule as i64)),
            ("reason".to_string(), Value::Str(self.reason.clone())),
        ])
    }
}

impl Serialize for AnalysisReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("num_rules".to_string(), Value::Int(self.num_rules as i64)),
            (
                "num_targets".to_string(),
                Value::Int(self.num_targets as i64),
            ),
            (
                "master_rows".to_string(),
                Value::Int(self.master_rows as i64),
            ),
            ("generation".to_string(), Value::Int(self.generation as i64)),
            ("errors".to_string(), Value::Int(self.errors() as i64)),
            ("warnings".to_string(), Value::Int(self.warnings() as i64)),
            ("termination".to_string(), self.termination.to_value()),
            (
                "conflicts".to_string(),
                Value::Array(self.conflicts.iter().map(Serialize::to_value).collect()),
            ),
            ("confluence".to_string(), self.confluence.to_value()),
            (
                "unreachable".to_string(),
                Value::Array(self.unreachable.iter().map(Serialize::to_value).collect()),
            ),
            (
                "findings".to_string(),
                Value::Array(self.findings.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

/// Build the lint-model findings from the three passes' outputs. `spans`
/// maps *reported* rule indexes to rendered rules.
pub(crate) fn build_findings(
    termination: &TerminationCertificate,
    conflicts: &[ConflictWitness],
    confluence: &ConfluenceCertificate,
    unreachable: &[UnreachableRule],
    span: &dyn Fn(usize) -> String,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if let Some(cycle) = &termination.cycle {
        let anchor = cycle.rules.iter().copied().min().unwrap_or(0);
        findings.push(Finding {
            code: DiagnosticCode::Er008,
            severity: Severity::Error,
            rule: anchor,
            related: None,
            span: span(anchor),
            message: format!(
                "rule set's dependency graph is cyclic: {} — no termination certificate",
                cycle.chain()
            ),
            note: Some(format!(
                "cycle induced by rule{} {}; the chase's round cap is the only bound — \
                 break the cycle or keep the cap",
                plural(cycle.rules.len()),
                cycle
                    .rules
                    .iter()
                    .map(|r| format!("#{r}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            )),
        });
    }
    for c in conflicts {
        findings.push(Finding {
            code: DiagnosticCode::Er009,
            severity: Severity::Error,
            rule: c.rule,
            related: Some(c.related),
            span: span(c.rule),
            message: format!(
                "prescribes {:?} where rule #{} (a strict-subset LHS) prescribes {:?} — \
                 contradictory certain fixes on {} master-witnessed tuple{}",
                c.narrow_value,
                c.related,
                c.broad_value,
                c.conflicting_rows,
                plural(c.conflicting_rows),
            ),
            note: Some(format!(
                "witness: master row {} ({})",
                c.master_row,
                c.master_tuple.join(", ")
            )),
        });
    }
    for w in &confluence.divergent {
        findings.push(Finding {
            code: DiagnosticCode::Er013,
            severity: Severity::Error,
            rule: w.rule,
            related: Some(w.related),
            span: span(w.rule),
            message: format!(
                "critical pair with rule #{} is not joinable: applying #{} first commits \
                 {:?}, applying #{} first commits {:?} — {} master-witnessed divergence{}",
                w.related,
                w.related,
                w.first_value,
                w.rule,
                w.second_value,
                w.rows,
                plural(w.rows),
            ),
            note: Some(format!(
                "two-order witness: master row {} ({}); no confluence certificate — vote \
                 merges stay in rule order",
                w.master_row,
                w.master_tuple.join(", ")
            )),
        });
    }
    for w in &confluence.tie_broken {
        findings.push(Finding {
            code: DiagnosticCode::Er014,
            severity: Severity::Warning,
            rule: w.rule,
            related: Some(w.related),
            span: span(w.rule),
            message: format!(
                "critical pair with rule #{} joins only by tie-break: {:?} and {:?} carry \
                 exactly equal combined evidence on {} master row{}",
                w.related,
                w.first_value,
                w.second_value,
                w.rows,
                plural(w.rows),
            ),
            note: Some(format!(
                "witness: master row {} ({}); verdict-equivalent but order-fragile — the \
                 set stays on the ordered merge path",
                w.master_row,
                w.master_tuple.join(", ")
            )),
        });
    }
    for u in unreachable {
        findings.push(Finding {
            code: DiagnosticCode::Er010,
            severity: Severity::Warning,
            rule: u.rule,
            related: None,
            span: span(u.rule),
            message: format!(
                "rule can never fire against the current master: {}",
                u.reason
            ),
            note: Some(
                "generation-aware: master appends can revive the rule; re-analyze after \
                 appends or drop it"
                    .to_string(),
            ),
        });
    }
    findings.sort_by_key(|f| (f.rule, f.code, f.related));
    findings
}
