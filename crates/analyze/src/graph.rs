//! Termination pass: weak acyclicity of the attribute dependency graph.
//!
//! The chase (er-rules) re-runs every target's rules round after round
//! because a committed fix can unlock further rules — filling `ZIP` enables
//! a `ZIP → AC` rule. Whether that cascade provably bottoms out is a purely
//! static property of the rule set: build the directed graph whose nodes are
//! *input* attributes and whose edges run from every attribute a rule reads
//! (its LHS `X` and pattern `X_p`) to the attribute it writes (its target
//! `Y`). If that graph is acyclic — the editing-rule analogue of weak
//! acyclicity for tgds — then a fix can only propagate along a dependency
//! chain, chains are at most `depth` edges long, and every chain is fully
//! discharged within `depth + 1` rounds (each round commits at least the
//! next link of every live chain; committed cells are frozen). A cycle
//! refutes the certificate, and the smallest inducing rule of each edge on
//! the cycle is reported as the witness.

use er_rules::TargetRules;
use er_table::AttrId;
use std::collections::BTreeMap;

/// The outcome of the termination pass.
#[derive(Debug, Clone)]
pub struct TerminationCertificate {
    /// Whether the dependency graph is acyclic (weak acyclicity holds).
    pub certified: bool,
    /// Number of input attributes involved in some dependency edge.
    pub attrs: usize,
    /// Number of distinct dependency edges.
    pub edges: usize,
    /// Longest read→write dependency chain, in edges (0 when uncertified).
    pub depth: usize,
    /// When certified: the chase reaches its fixpoint within this many
    /// rounds (`depth + 1`), so `ChaseConfig::uncapped()` is sound.
    pub rounds_bound: Option<usize>,
    /// Topological order of the involved attributes (names), ties broken by
    /// attribute id — the order fixes may cascade in.
    pub order: Vec<String>,
    /// The refuting cycle, when one exists.
    pub cycle: Option<CycleWitness>,
}

/// A dependency cycle: `attrs[k]` is written by `rules[k-1]` and read by
/// `rules[k]`, and the last rule writes `attrs[0]` again.
#[derive(Debug, Clone)]
pub struct CycleWitness {
    /// Attribute names along the cycle (the first is re-entered after the
    /// last).
    pub attrs: Vec<String>,
    /// `rules[k]` is the smallest-index rule inducing the edge
    /// `attrs[k] → attrs[(k + 1) % len]`.
    pub rules: Vec<usize>,
}

impl CycleWitness {
    /// `City → ZIP → City` rendering of the attribute chain.
    pub fn chain(&self) -> String {
        let mut parts = self.attrs.clone();
        if let Some(first) = self.attrs.first() {
            parts.push(first.clone());
        }
        parts.join(" → ")
    }
}

/// Run the termination pass. `display` maps a rule's position in the
/// concatenated `targets` order to the index reported in witnesses.
pub(crate) fn termination_pass(
    input_schema: &er_table::Schema,
    targets: &[TargetRules],
    display: &dyn Fn(usize) -> usize,
) -> TerminationCertificate {
    // (from, to) → smallest inducing rule (display index). BTreeMap keeps
    // every downstream traversal deterministic.
    let mut edges: BTreeMap<(AttrId, AttrId), usize> = BTreeMap::new();
    let mut g = 0usize;
    for t in targets {
        let to = t.target.0;
        for rule in &t.rules {
            let idx = display(g);
            g += 1;
            for from in rule.x().into_iter().chain(rule.pattern_attrs()) {
                let entry = edges.entry((from, to)).or_insert(idx);
                *entry = (*entry).min(idx);
            }
        }
    }
    let mut nodes: Vec<AttrId> = edges
        .keys()
        .flat_map(|&(a, b)| [a, b])
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    nodes.sort_unstable();
    let succ = |n: AttrId| -> Vec<(AttrId, usize)> {
        edges
            .range((n, AttrId::MIN)..=(n, AttrId::MAX))
            .map(|(&(_, to), &rule)| (to, rule))
            .collect()
    };

    // Kahn's algorithm, smallest attribute id first, with a longest-path DP.
    let mut indeg: BTreeMap<AttrId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    for &(_, to) in edges.keys() {
        if let Some(d) = indeg.get_mut(&to) {
            *d += 1;
        }
    }
    let mut ready: std::collections::BTreeSet<AttrId> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut dist: BTreeMap<AttrId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(&n) = ready.iter().next() {
        ready.remove(&n);
        order.push(n);
        for (to, _) in succ(n) {
            let next = dist[&n] + 1;
            if let Some(d) = dist.get_mut(&to) {
                *d = (*d).max(next);
            }
            if let Some(deg) = indeg.get_mut(&to) {
                *deg -= 1;
                if *deg == 0 {
                    ready.insert(to);
                }
            }
        }
    }

    let name = |a: AttrId| input_schema.attr(a).name.clone();
    if order.len() == nodes.len() {
        let depth = dist.values().copied().max().unwrap_or(0);
        return TerminationCertificate {
            certified: true,
            attrs: nodes.len(),
            edges: edges.len(),
            depth,
            rounds_bound: Some(depth + 1),
            order: order.into_iter().map(name).collect(),
            cycle: None,
        };
    }

    // A cycle exists among the leftover nodes. Colored DFS, smallest-first,
    // restricted to the leftover set, extracts one deterministically.
    let leftover: std::collections::BTreeSet<AttrId> = nodes
        .iter()
        .copied()
        .filter(|n| !order.contains(n))
        .collect();
    let mut on_stack: Vec<AttrId> = Vec::new();
    let mut done: std::collections::BTreeSet<AttrId> = Default::default();
    let mut cycle_attrs: Vec<AttrId> = Vec::new();
    fn dfs(
        n: AttrId,
        succ: &dyn Fn(AttrId) -> Vec<(AttrId, usize)>,
        leftover: &std::collections::BTreeSet<AttrId>,
        on_stack: &mut Vec<AttrId>,
        done: &mut std::collections::BTreeSet<AttrId>,
        cycle: &mut Vec<AttrId>,
    ) -> bool {
        on_stack.push(n);
        for (to, _) in succ(n) {
            if !leftover.contains(&to) || done.contains(&to) {
                continue;
            }
            if let Some(pos) = on_stack.iter().position(|&s| s == to) {
                cycle.extend_from_slice(&on_stack[pos..]);
                return true;
            }
            if dfs(to, succ, leftover, on_stack, done, cycle) {
                return true;
            }
        }
        on_stack.pop();
        done.insert(n);
        false
    }
    for &start in &leftover {
        if done.contains(&start) {
            continue;
        }
        on_stack.clear();
        if dfs(
            start,
            &succ,
            &leftover,
            &mut on_stack,
            &mut done,
            &mut cycle_attrs,
        ) {
            break;
        }
    }
    let len = cycle_attrs.len();
    let rules = (0..len)
        .map(|k| edges[&(cycle_attrs[k], cycle_attrs[(k + 1) % len])])
        .collect();
    TerminationCertificate {
        certified: false,
        attrs: nodes.len(),
        edges: edges.len(),
        depth: 0,
        rounds_bound: None,
        order: Vec::new(),
        cycle: Some(CycleWitness {
            attrs: cycle_attrs.into_iter().map(name).collect(),
            rules,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_rules::EditingRule;
    use er_table::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(
            "in",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("ZIP"),
                Attribute::categorical("AC"),
            ],
        )
    }

    fn identity(g: usize) -> usize {
        g
    }

    #[test]
    fn acyclic_chain_is_certified_with_depth() {
        // City → ZIP, ZIP → AC: depth 2, fixpoint within 3 rounds.
        let targets = vec![
            TargetRules {
                target: (1, 1),
                rules: vec![EditingRule::new(vec![(0, 0)], (1, 1), vec![])],
            },
            TargetRules {
                target: (2, 2),
                rules: vec![EditingRule::new(vec![(1, 1)], (2, 2), vec![])],
            },
        ];
        let cert = termination_pass(&schema(), &targets, &identity);
        assert!(cert.certified);
        assert_eq!(cert.depth, 2);
        assert_eq!(cert.rounds_bound, Some(3));
        assert_eq!(cert.order, vec!["City", "ZIP", "AC"]);
        assert!(cert.cycle.is_none());
    }

    #[test]
    fn cycle_is_refuted_with_rule_witness() {
        // ZIP → AC and AC → ZIP.
        let targets = vec![
            TargetRules {
                target: (2, 2),
                rules: vec![EditingRule::new(vec![(1, 1)], (2, 2), vec![])],
            },
            TargetRules {
                target: (1, 1),
                rules: vec![EditingRule::new(vec![(2, 2)], (1, 1), vec![])],
            },
        ];
        let cert = termination_pass(&schema(), &targets, &identity);
        assert!(!cert.certified);
        assert!(cert.rounds_bound.is_none());
        let cycle = cert.cycle.expect("cycle witness");
        assert_eq!(cycle.attrs.len(), 2);
        assert_eq!(cycle.rules.len(), 2);
        // Both rules participate, each inducing one edge.
        let mut rules = cycle.rules.clone();
        rules.sort_unstable();
        assert_eq!(rules, vec![0, 1]);
        assert!(cycle.chain() == "ZIP → AC → ZIP" || cycle.chain() == "AC → ZIP → AC");
    }

    #[test]
    fn pattern_reads_count_as_dependencies() {
        // AC's rule *reads* ZIP only through its pattern; ZIP's rule writes
        // ZIP from AC — still a cycle.
        let targets = vec![
            TargetRules {
                target: (2, 2),
                rules: vec![EditingRule::new(
                    vec![(0, 0)],
                    (2, 2),
                    vec![er_rules::Condition::eq(1, 7)],
                )],
            },
            TargetRules {
                target: (1, 1),
                rules: vec![EditingRule::new(vec![(2, 2)], (1, 1), vec![])],
            },
        ];
        let cert = termination_pass(&schema(), &targets, &identity);
        assert!(!cert.certified, "pattern read must close the cycle");
    }

    #[test]
    fn display_mapping_renumbers_witnesses() {
        let targets = vec![
            TargetRules {
                target: (2, 2),
                rules: vec![EditingRule::new(vec![(1, 1)], (2, 2), vec![])],
            },
            TargetRules {
                target: (1, 1),
                rules: vec![EditingRule::new(vec![(2, 2)], (1, 1), vec![])],
            },
        ];
        let cert = termination_pass(&schema(), &targets, &|g| g + 10);
        let mut rules = cert.cycle.expect("cycle").rules;
        rules.sort_unstable();
        assert_eq!(rules, vec![10, 11]);
    }

    #[test]
    fn empty_rule_set_is_trivially_certified() {
        let cert = termination_pass(&schema(), &[], &identity);
        assert!(cert.certified);
        assert_eq!(cert.attrs, 0);
        assert_eq!(cert.rounds_bound, Some(1));
    }
}
