//! Edit-scope diff pass: what a rule-set *change* does to repair verdicts.
//!
//! The other passes judge one rule set; this one treats a pair of versions
//! `(old, new)` as the unit of analysis and computes the change's **edit
//! scope** against the live master: the set of master-derived LHS code
//! signatures whose repair verdict (the certainty-score vote's prescribed
//! value, or no-fix) differs between the versions.
//!
//! The scope is derived symbolically rather than by replaying both versions
//! over concrete input data:
//!
//! 1. **Delta.** The versions are compared structurally (multiset of
//!    canonicalized rules). Only rules whose multiplicity differs — the
//!    *changed* rules — can move any vote; identical versions certify as
//!    equivalent without touching the master.
//! 2. **Pruning.** Changed rules that are statically dead against the
//!    master's per-column [`er_table::ColumnStats`] (the ER010 argument: an
//!    all-NULL LHS/target column, or an LHS-pinned pattern outside the
//!    master domain) are dropped — they cannot fire in either version.
//! 3. **Signatures.** A repair verdict for a tuple depends only on the
//!    tuple's projection onto the attributes the target group's rules read
//!    (LHS and pattern attributes). The rows *the master can produce* —
//!    `t[A] = t_m[M(A)]` through the schema match, NULL where unmatched —
//!    therefore collapse into finitely many signatures, one group per
//!    distinct projection. Each group keeps its first master row as witness.
//! 4. **Verdicts.** Only signatures where some changed rule can fire are
//!    candidates (everywhere else the versions' vote tables are identical
//!    by construction). For each candidate the vote of §V-B2 is folded in
//!    rule order under both versions; a differing winner (or a prescription
//!    appearing/disappearing) is one [`VerdictChange`] — ER011, Info.
//!
//! When the caller declares an [`EditScope`] — the region where verdicts are
//! *allowed* to change — every change outside it is a behavior-preservation
//! violation, ER012 (Error): the model-editing discipline of scoped edits
//! (edit success inside the scope, behavior preservation outside).
//!
//! An empty diff yields an **equivalence certificate**: the two versions are
//! repair-identical on every row the master can produce. Rows no master
//! tuple induces (foreign key combinations, non-NULL values on unmatched
//! attributes) are outside the certified universe.
//!
//! Candidate signatures fan out over [`er_par::WorkerPool::map`]; votes fold
//! sequentially per signature, so the report is byte-identical at any
//! thread count.

use crate::reach::{self, MasterProfile};
use crate::AnalyzeConfig;
use er_lint::{DiagnosticCode, Finding, Severity};
use er_par::WorkerPool;
use er_rules::io::PortableRule;
use er_rules::{from_portable, EditingRule, SchemaMatch, TargetRules, Task};
use er_table::{AttrId, Code, GroupIndex, Relation, Schema, NULL_CODE};
use serde::Serialize;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A caller-declared edit scope: the region of signature space where the
/// change is *expected* to alter verdicts. A signature is in scope iff it
/// matches at least one pattern; each pattern is a conjunction of
/// `(input attribute name, rendered value)` equalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScope {
    /// The alternative patterns (disjunction of conjunctions).
    pub patterns: Vec<Vec<(String, String)>>,
}

impl EditScope {
    /// A scope with no patterns (matches nothing — every change violates it).
    pub fn new(patterns: Vec<Vec<(String, String)>>) -> Self {
        EditScope { patterns }
    }

    /// Whether a rendered signature lies inside the scope.
    pub fn contains(&self, signature: &[(String, String)]) -> bool {
        self.patterns.iter().any(|pat| {
            pat.iter()
                .all(|(a, v)| signature.iter().any(|(sa, sv)| sa == a && sv == v))
        })
    }

    /// Parse a scope from JSON: an array of objects (or one object), each
    /// object one conjunction, e.g. `[{"City":"HZ"},{"Date":"2021-12"}]`.
    pub fn from_json_value(value: &Value) -> Result<Self, String> {
        let objects: Vec<&Value> = match value {
            Value::Array(items) => items.iter().collect(),
            Value::Object(_) => vec![value],
            _ => return Err("scope must be an object or an array of objects".to_string()),
        };
        let mut patterns = Vec::with_capacity(objects.len());
        for obj in objects {
            let Value::Object(fields) = obj else {
                return Err("each scope pattern must be an object".to_string());
            };
            let mut pat = Vec::with_capacity(fields.len());
            for (attr, v) in fields {
                let rendered = match v {
                    Value::Str(s) => s.clone(),
                    Value::Int(i) => i.to_string(),
                    Value::UInt(u) => u.to_string(),
                    _ => {
                        return Err(format!(
                            "scope value for {attr:?} must be a string or integer"
                        ))
                    }
                };
                pat.push((attr.clone(), rendered));
            }
            patterns.push(pat);
        }
        Ok(EditScope { patterns })
    }

    /// Parse a scope from JSON text (see [`EditScope::from_json_value`]).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(json).map_err(|e| format!("malformed scope JSON: {e}"))?;
        Self::from_json_value(&value)
    }
}

/// One master-derived signature whose repair verdict differs between the
/// two versions.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictChange {
    /// The target attribute `Y` whose verdict changed.
    pub target: String,
    /// The signature: the non-NULL pinned values, as
    /// `(input attribute name, rendered value)` sorted by attribute.
    pub signature: Vec<(String, String)>,
    /// The witness: the first master row inducing this signature.
    pub master_row: usize,
    /// The witness row, rendered cell by cell.
    pub master_tuple: Vec<String>,
    /// How many master rows induce this signature.
    pub rows: usize,
    /// The old version's prescription (`None` = no rule fires).
    pub old: Option<String>,
    /// The new version's prescription (`None` = no rule fires).
    pub new: Option<String>,
    /// Whether the change lies inside the declared edit scope (`true` when
    /// no scope was declared).
    pub in_scope: bool,
}

impl VerdictChange {
    /// `City=SZ, ZIP=51800, ...` — the signature in display form.
    pub fn signature_display(&self) -> String {
        self.signature
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The outcome of diffing two rule-set versions against a master.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Rules in the old version.
    pub old_rules: usize,
    /// Rules in the new version.
    pub new_rules: usize,
    /// Rules present in both versions (multiset intersection).
    pub shared: usize,
    /// Rules only the new version has.
    pub added: usize,
    /// Rules only the old version has.
    pub removed: usize,
    /// Changed rules skipped because they are statically dead against the
    /// master column stats (they cannot fire in either version).
    pub pruned: usize,
    /// Master rows the diff ran against.
    pub master_rows: usize,
    /// Master generation the diff ran against.
    pub generation: u64,
    /// Distinct master-derived signatures across all diffed target groups.
    pub signatures: usize,
    /// Signatures where a changed rule could fire (verdicts recomputed).
    pub candidates: usize,
    /// Whether the caller declared an edit scope.
    pub scope_declared: bool,
    /// Every verdict-changed signature, in master-row order per target.
    pub changes: Vec<VerdictChange>,
    /// ER011 per change, ER012 per out-of-scope change; `rule` indexes into
    /// [`DiffReport::changes`].
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// Whether the diff is empty: the versions are repair-identical on every
    /// row the master can produce.
    pub fn equivalent(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of error-severity findings (ER012 violations).
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of info-severity findings (ER011 verdict changes).
    pub fn infos(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Info)
            .count()
    }

    /// Whether a promotion gate should accept the change: no
    /// behavior-preservation violation (verdict changes inside the declared
    /// scope — or with no scope declared — are informational).
    pub fn gate_clean(&self) -> bool {
        self.errors() == 0
    }

    /// The equivalence certificate, when the diff is empty.
    pub fn certificate(&self) -> Option<String> {
        if !self.equivalent() {
            return None;
        }
        Some(if self.added == 0 && self.removed == 0 {
            format!(
                "equivalence: CERTIFIED — the versions are structurally identical \
                 ({} shared rule{}); repair-identical on every row the master can produce",
                self.shared,
                plural(self.shared),
            )
        } else {
            format!(
                "equivalence: CERTIFIED — {} added / {} removed rule{} leave every repair \
                 verdict unchanged across {} signature{} over {} master row{} (generation {}); \
                 the versions are repair-identical on every row the master can produce",
                self.added,
                self.removed,
                plural(self.added + self.removed),
                self.signatures,
                plural(self.signatures),
                self.master_rows,
                plural(self.master_rows),
                self.generation,
            )
        })
    }

    /// Render the report as text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diff: {} -> {} rule{} ({} shared, {} added, {} removed, {} pruned as dead); \
             master: {} row{} (generation {})",
            self.old_rules,
            self.new_rules,
            plural(self.new_rules),
            self.shared,
            self.added,
            self.removed,
            self.pruned,
            self.master_rows,
            plural(self.master_rows),
            self.generation,
        );
        match self.certificate() {
            Some(cert) => {
                let _ = writeln!(out, "{cert}");
            }
            None => {
                let _ = writeln!(
                    out,
                    "edit scope: {} of {} signature{} change{} their repair verdict \
                     ({} candidate{} recomputed{})",
                    self.changes.len(),
                    self.signatures,
                    plural(self.signatures),
                    if self.changes.len() == 1 { "s" } else { "" },
                    self.candidates,
                    plural(self.candidates),
                    if self.scope_declared {
                        "; edit scope declared"
                    } else {
                        ""
                    },
                );
                for (i, c) in self.changes.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  [{}] {} @ {{{}}}: {} -> {} ({} master row{}; witness row {}: {}){}",
                        i,
                        c.target,
                        c.signature_display(),
                        render_verdict(&c.old),
                        render_verdict(&c.new),
                        c.rows,
                        plural(c.rows),
                        c.master_row,
                        c.master_tuple.join(", "),
                        if c.in_scope { "" } else { " [OUT OF SCOPE]" },
                    );
                }
            }
        }
        out.push('\n');
        for f in &self.findings {
            let _ = writeln!(out, "{}[{}]: {}", f.severity, f.code, f.message);
            let _ = writeln!(out, "  --> change #{}: {}", f.rule, f.span);
            if let Some(note) = &f.note {
                let _ = writeln!(out, "  = note: {note}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "diff: {} verdict change{}, {} error{}, {} info{}",
            self.changes.len(),
            plural(self.changes.len()),
            self.errors(),
            plural(self.errors()),
            self.infos(),
            plural(self.infos()),
        );
        out
    }

    /// Render the full report as JSON.
    pub fn render_json(&self) -> String {
        // A pure value tree; serialization is infallible by construction.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("diff report serializes")
    }
}

fn render_verdict(v: &Option<String>) -> String {
    match v {
        Some(value) => format!("{value:?}"),
        None => "no fix".to_string(),
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

impl Serialize for VerdictChange {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("target".to_string(), Value::Str(self.target.clone())),
            (
                "signature".to_string(),
                Value::Object(
                    self.signature
                        .iter()
                        .map(|(a, v)| (a.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("master_row".to_string(), Value::Int(self.master_row as i64)),
            (
                "master_tuple".to_string(),
                Value::Array(
                    self.master_tuple
                        .iter()
                        .map(|v| Value::Str(v.clone()))
                        .collect(),
                ),
            ),
            ("rows".to_string(), Value::Int(self.rows as i64)),
            (
                "old".to_string(),
                match &self.old {
                    Some(v) => Value::Str(v.clone()),
                    None => Value::Null,
                },
            ),
            (
                "new".to_string(),
                match &self.new {
                    Some(v) => Value::Str(v.clone()),
                    None => Value::Null,
                },
            ),
            ("in_scope".to_string(), Value::Bool(self.in_scope)),
        ])
    }
}

impl Serialize for DiffReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("old_rules".to_string(), Value::Int(self.old_rules as i64)),
            ("new_rules".to_string(), Value::Int(self.new_rules as i64)),
            ("shared".to_string(), Value::Int(self.shared as i64)),
            ("added".to_string(), Value::Int(self.added as i64)),
            ("removed".to_string(), Value::Int(self.removed as i64)),
            ("pruned".to_string(), Value::Int(self.pruned as i64)),
            (
                "master_rows".to_string(),
                Value::Int(self.master_rows as i64),
            ),
            ("generation".to_string(), Value::Int(self.generation as i64)),
            ("signatures".to_string(), Value::Int(self.signatures as i64)),
            ("candidates".to_string(), Value::Int(self.candidates as i64)),
            (
                "scope_declared".to_string(),
                Value::Bool(self.scope_declared),
            ),
            ("equivalent".to_string(), Value::Bool(self.equivalent())),
            (
                "certificate".to_string(),
                match self.certificate() {
                    Some(c) => Value::Str(c),
                    None => Value::Null,
                },
            ),
            ("errors".to_string(), Value::Int(self.errors() as i64)),
            ("infos".to_string(), Value::Int(self.infos() as i64)),
            (
                "changes".to_string(),
                Value::Array(self.changes.iter().map(Serialize::to_value).collect()),
            ),
            (
                "findings".to_string(),
                Value::Array(self.findings.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

/// One target group's worth of diff work.
struct GroupPlan<'a> {
    ym: AttrId,
    y_name: String,
    old: Vec<&'a EditingRule>,
    new: Vec<&'a EditingRule>,
    /// Distinct changed (added or removed) rules that survived pruning.
    changed: Vec<&'a EditingRule>,
    /// Sorted distinct input attributes the group's rules read.
    sig_attrs: Vec<AttrId>,
}

/// A signature group: the projected codes, the witness row, the row count.
struct SigGroup {
    codes: Vec<Code>,
    first_row: usize,
    rows: usize,
}

/// Diff two resolved multi-target rule-set versions against a master.
///
/// `matching` supplies the schema match the master "produces" input rows
/// through; `scope` is the caller-declared edit scope (`None` = undeclared:
/// every change is informational ER011, never ER012).
///
/// # Panics
/// Panics if a rule's target differs from its [`TargetRules::target`].
pub fn diff(
    input_schema: &Arc<Schema>,
    master: &Relation,
    matching: &SchemaMatch,
    old: &[TargetRules],
    new: &[TargetRules],
    scope: Option<&EditScope>,
    config: &AnalyzeConfig,
) -> DiffReport {
    for t in old.iter().chain(new) {
        for r in &t.rules {
            assert_eq!(r.target(), t.target, "rule target mismatch in TargetRules");
        }
    }
    let pool = WorkerPool::new(er_par::resolve_threads(config.threads));
    let old_rules: usize = old.iter().map(|t| t.rules.len()).sum();
    let new_rules: usize = new.iter().map(|t| t.rules.len()).sum();

    // Union of targets, in first-appearance order (old first, then new).
    let mut targets: Vec<(AttrId, AttrId)> = Vec::new();
    for t in old.iter().chain(new) {
        if !targets.contains(&t.target) {
            targets.push(t.target);
        }
    }

    let profile = MasterProfile::new(master);
    let mut shared = 0usize;
    let mut added = 0usize;
    let mut removed = 0usize;
    let mut pruned = 0usize;
    let mut plans: Vec<GroupPlan<'_>> = Vec::new();
    for &target in &targets {
        let old_group: Vec<&EditingRule> = old
            .iter()
            .filter(|t| t.target == target)
            .flat_map(|t| t.rules.iter())
            .collect();
        let new_group: Vec<&EditingRule> = new
            .iter()
            .filter(|t| t.target == target)
            .flat_map(|t| t.rules.iter())
            .collect();
        // Multiset delta: a rule's vote weight is its multiplicity, so a
        // multiplicity change is a change.
        let mut counts: HashMap<&EditingRule, (usize, usize)> = HashMap::new();
        let mut order: Vec<&EditingRule> = Vec::new();
        for &r in &old_group {
            if !counts.contains_key(r) {
                order.push(r);
            }
            counts.entry(r).or_insert((0, 0)).0 += 1;
        }
        for &r in &new_group {
            if !counts.contains_key(r) {
                order.push(r);
            }
            counts.entry(r).or_insert((0, 0)).1 += 1;
        }
        let mut changed: Vec<&EditingRule> = Vec::new();
        for &r in &order {
            let (o, n) = counts[r];
            shared += o.min(n);
            added += n.saturating_sub(o);
            removed += o.saturating_sub(n);
            if o != n {
                // A statically dead rule cannot fire in either version, so
                // its multiplicity cannot move any vote.
                if reach::dead_reason(input_schema, master, &profile, target.1, r).is_some() {
                    pruned += 1;
                } else {
                    changed.push(r);
                }
            }
        }
        if changed.is_empty() {
            continue;
        }
        let mut sig_attrs: Vec<AttrId> = Vec::new();
        for r in old_group.iter().chain(&new_group) {
            for a in r.x().into_iter().chain(r.pattern_attrs()) {
                if !sig_attrs.contains(&a) {
                    sig_attrs.push(a);
                }
            }
        }
        sig_attrs.sort_unstable();
        plans.push(GroupPlan {
            ym: target.1,
            y_name: input_schema.attr(target.0).name.clone(),
            old: old_group,
            new: new_group,
            changed,
            sig_attrs,
        });
    }

    let mut signatures = 0usize;
    let mut candidates = 0usize;
    let mut changes: Vec<VerdictChange> = Vec::new();
    for plan in &plans {
        // One warm index per distinct X_m list across both versions.
        let mut indexes: HashMap<Vec<AttrId>, GroupIndex> = HashMap::new();
        for r in plan.old.iter().chain(&plan.new) {
            indexes
                .entry(r.xm())
                .or_insert_with(|| GroupIndex::build(master, &r.xm(), plan.ym));
        }
        // The master column feeding each signature attribute through the
        // schema match (`None` = unmatched, the induced cell is NULL).
        let feeds: Vec<Option<AttrId>> = plan
            .sig_attrs
            .iter()
            .map(|&a| matching.of(a).first().copied())
            .collect();
        // Group master rows by their induced signature, first row wins.
        let mut by_codes: HashMap<Vec<Code>, usize> = HashMap::new();
        let mut groups: Vec<SigGroup> = Vec::new();
        for row in 0..master.num_rows() {
            let codes: Vec<Code> = feeds
                .iter()
                .map(|am| am.map_or(NULL_CODE, |am| master.code(row, am)))
                .collect();
            match by_codes.get(&codes) {
                Some(&g) => groups[g].rows += 1,
                None => {
                    by_codes.insert(codes.clone(), groups.len());
                    groups.push(SigGroup {
                        codes,
                        first_row: row,
                        rows: 1,
                    });
                }
            }
        }
        signatures += groups.len();
        let candidate_groups: Vec<&SigGroup> = groups
            .iter()
            .filter(|g| {
                plan.changed
                    .iter()
                    .any(|r| fires(r, &plan.sig_attrs, &g.codes, master, &indexes))
            })
            .collect();
        candidates += candidate_groups.len();
        // Verdicts fan out per candidate signature; the two folds inside are
        // sequential in rule order, so the outcome is thread-count-invariant.
        // A changed signature yields (witness row, old verdict, new verdict).
        type VerdictDiff = Option<(usize, Option<Code>, Option<Code>)>;
        let diffs: Vec<VerdictDiff> = pool.map(&candidate_groups, |g| {
            let old = verdict(&plan.old, &plan.sig_attrs, &g.codes, master, &indexes);
            let new = verdict(&plan.new, &plan.sig_attrs, &g.codes, master, &indexes);
            (old != new).then_some((g.first_row, old, new))
        });
        for (g, d) in candidate_groups.iter().zip(diffs) {
            let Some((witness, old_v, new_v)) = d else {
                continue;
            };
            let render =
                |code: Option<Code>| code.map(|c| master.pool().value(c).render().into_owned());
            let signature: Vec<(String, String)> = plan
                .sig_attrs
                .iter()
                .zip(&g.codes)
                .filter(|&(_, &c)| c != NULL_CODE)
                .map(|(&a, &c)| {
                    (
                        input_schema.attr(a).name.clone(),
                        master.pool().value(c).render().into_owned(),
                    )
                })
                .collect();
            let in_scope = scope.is_none_or(|s| s.contains(&signature));
            changes.push(VerdictChange {
                target: plan.y_name.clone(),
                signature,
                master_row: witness,
                master_tuple: (0..master.schema().arity())
                    .map(|a| master.value(witness, a).render().into_owned())
                    .collect(),
                rows: g.rows,
                old: render(old_v),
                new: render(new_v),
                in_scope,
            });
        }
    }

    let findings = build_diff_findings(&changes, scope.is_some());
    DiffReport {
        old_rules,
        new_rules,
        shared,
        added,
        removed,
        pruned,
        master_rows: master.num_rows(),
        generation: master.generation(),
        signatures,
        candidates,
        scope_declared: scope.is_some(),
        changes,
        findings,
    }
}

/// Whether `rule` can fire on a signature: pattern satisfied on the induced
/// values, LHS key fully non-NULL, and the key's master group holds at least
/// one non-NULL target value to copy.
fn fires(
    rule: &EditingRule,
    sig_attrs: &[AttrId],
    codes: &[Code],
    master: &Relation,
    indexes: &HashMap<Vec<AttrId>, GroupIndex>,
) -> bool {
    contribution_total(rule, sig_attrs, codes, master, indexes) > 0
}

/// The non-NULL distribution mass `rule` would vote with on a signature
/// (0 = the rule does not fire there).
fn contribution_total(
    rule: &EditingRule,
    sig_attrs: &[AttrId],
    codes: &[Code],
    master: &Relation,
    indexes: &HashMap<Vec<AttrId>, GroupIndex>,
) -> u32 {
    let code_of = |a: AttrId| -> Code {
        match sig_attrs.binary_search(&a) {
            Ok(pos) => codes[pos],
            Err(_) => NULL_CODE,
        }
    };
    for cond in rule.pattern() {
        let c = code_of(cond.attr);
        let numeric = (c != NULL_CODE)
            .then(|| master.pool().value(c).as_f64())
            .flatten();
        if !cond.pred.matches(c, numeric) {
            return 0;
        }
    }
    let mut key = Vec::with_capacity(rule.lhs_len());
    for &(a, _) in rule.lhs() {
        let c = code_of(a);
        if c == NULL_CODE {
            return 0;
        }
        key.push(c);
    }
    let Some(index) = indexes.get(&rule.xm()) else {
        return 0;
    };
    index
        .get(&key)
        .iter()
        .filter(|&&(c, _)| c != NULL_CODE)
        .map(|&(_, n)| n)
        .sum()
}

/// The certainty-score vote of §V-B2 for one signature under one version:
/// every firing rule contributes its group distribution normalized to mass
/// 1; the winner is the maximum accumulated score, ties to the smaller code
/// (exactly [`er_rules::apply_rules`]' fold).
fn verdict(
    rules: &[&EditingRule],
    sig_attrs: &[AttrId],
    codes: &[Code],
    master: &Relation,
    indexes: &HashMap<Vec<AttrId>, GroupIndex>,
) -> Option<Code> {
    let mut votes: Vec<(Code, f64)> = Vec::new();
    for rule in rules {
        let total = contribution_total(rule, sig_attrs, codes, master, indexes);
        if total == 0 {
            continue;
        }
        let code_of = |a: AttrId| -> Code {
            match sig_attrs.binary_search(&a) {
                Ok(pos) => codes[pos],
                Err(_) => NULL_CODE,
            }
        };
        let key: Vec<Code> = rule.lhs().iter().map(|&(a, _)| code_of(a)).collect();
        for &(code, count) in indexes[&rule.xm()].get(&key) {
            if code == NULL_CODE {
                continue;
            }
            let delta = count as f64 / total as f64;
            match votes.iter_mut().find(|(c, _)| *c == code) {
                Some((_, score)) => *score += delta,
                None => votes.push((code, delta)),
            }
        }
    }
    votes
        .into_iter()
        .max_by(|(ca, sa), (cb, sb)| {
            sa.partial_cmp(sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| cb.cmp(ca))
        })
        .map(|(code, _)| code)
}

/// ER011 per change, plus ER012 when a change escapes a declared scope.
fn build_diff_findings(changes: &[VerdictChange], scope_declared: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, c) in changes.iter().enumerate() {
        let span = format!(
            "signature {{{}}} (target {})",
            c.signature_display(),
            c.target
        );
        findings.push(Finding {
            code: DiagnosticCode::Er011,
            severity: Severity::Info,
            rule: i,
            related: None,
            span: span.clone(),
            message: format!(
                "repair verdict changes from {} to {} on {} master row{}",
                render_verdict(&c.old),
                render_verdict(&c.new),
                c.rows,
                plural(c.rows),
            ),
            note: Some(format!(
                "witness: master row {} ({})",
                c.master_row,
                c.master_tuple.join(", ")
            )),
        });
        if scope_declared && !c.in_scope {
            findings.push(Finding {
                code: DiagnosticCode::Er012,
                severity: Severity::Error,
                rule: i,
                related: None,
                span,
                message: format!(
                    "verdict change ({} -> {}) lies outside the declared edit scope — \
                     behavior-preservation violation",
                    render_verdict(&c.old),
                    render_verdict(&c.new),
                ),
                note: Some(
                    "widen the declared scope if the change is intended, or narrow the rule \
                     edit so out-of-scope signatures keep their verdict"
                        .to_string(),
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.rule, f.code, f.related));
    findings
}

/// Diff two portable rule-set versions against `task`'s master. Both
/// documents may be multi-target; groups are diffed per resolved target.
pub fn diff_portable(
    old: &[PortableRule],
    new: &[PortableRule],
    task: &Task,
    scope: Option<&EditScope>,
    config: &AnalyzeConfig,
) -> Result<DiffReport, String> {
    let old_targets = resolve_groups(old, task, "old")?;
    let new_targets = resolve_groups(new, task, "new")?;
    Ok(diff(
        task.input().schema(),
        task.master(),
        task.matching(),
        &old_targets,
        &new_targets,
        scope,
        config,
    ))
}

/// Diff two rule-set JSON documents (the [`er_rules::rules_to_json`]
/// format) against `task`'s master.
pub fn diff_json(
    old_json: &str,
    new_json: &str,
    task: &Task,
    scope: Option<&EditScope>,
    config: &AnalyzeConfig,
) -> Result<DiffReport, String> {
    let old: Vec<PortableRule> =
        serde_json::from_str(old_json).map_err(|e| format!("old: not a rule-set document: {e}"))?;
    let new: Vec<PortableRule> =
        serde_json::from_str(new_json).map_err(|e| format!("new: not a rule-set document: {e}"))?;
    diff_portable(&old, &new, task, scope, config)
}

/// Group a portable document by resolved target, resolving each rule against
/// a per-target view of the task (the same grouping
/// [`crate::analyze_portable`] uses).
fn resolve_groups(
    rules: &[PortableRule],
    task: &Task,
    which: &str,
) -> Result<Vec<TargetRules>, String> {
    let in_schema = task.input().schema();
    let m_schema = task.master().schema();
    let mut order: Vec<(AttrId, AttrId)> = Vec::new();
    let mut groups: HashMap<(AttrId, AttrId), Vec<EditingRule>> = HashMap::new();
    let mut sub_tasks: HashMap<(AttrId, AttrId), Task> = HashMap::new();
    for (idx, p) in rules.iter().enumerate() {
        crate::portable::precheck(idx, p).map_err(|e| format!("{which}: {e}"))?;
        let y = in_schema.attr_id(&p.target.0).map_err(|_| {
            format!(
                "{which}: rule #{idx}: unknown input attribute `{}`",
                p.target.0
            )
        })?;
        let ym = m_schema.attr_id(&p.target.1).map_err(|_| {
            format!(
                "{which}: rule #{idx}: unknown master attribute `{}`",
                p.target.1
            )
        })?;
        let sub = sub_tasks.entry((y, ym)).or_insert_with(|| {
            Task::new(
                task.input().clone(),
                task.master().clone(),
                task.matching().clone(),
                (y, ym),
            )
        });
        let rule = from_portable(p, sub).map_err(|e| format!("{which}: rule #{idx}: {e}"))?;
        groups
            .entry((y, ym))
            .or_insert_with(|| {
                order.push((y, ym));
                Vec::new()
            })
            .push(rule);
    }
    Ok(order
        .into_iter()
        .map(|t| TargetRules {
            target: t,
            rules: groups.remove(&t).unwrap_or_default(),
        })
        .collect())
}
