//! Conflict pass: rule pairs whose repairs contradict, with master-tuple
//! witnesses.
//!
//! Two rules for the same target can both fire on one input tuple and
//! prescribe *different* certain fixes. The lint layer's ER005 already warns
//! about any such disagreement on the observed input; this pass proves the
//! stronger, load-blocking property (ER009): when one rule's LHS evidence is
//! a strict subset of the other's — the exact same `(A, A_m)` pairs plus
//! more — the narrower rule's prescription is derived from strictly more
//! evidence, so a disagreement is not a tie-break nuance but a contradiction
//! in the rule set itself. The certificate is machine-checkable: a concrete
//! master tuple pinning the superset rule's key such that both modal
//! prescriptions exist, both keys are NULL-free, every pattern condition on
//! a pinned attribute holds, and the prescribed values differ.

use er_par::WorkerPool;
use er_rules::{EditingRule, Pred, TargetRules};
use er_table::{AttrId, Code, GroupIndex, Relation, NULL_CODE};
use std::collections::HashMap;

/// One proven conflict between two comparable rules.
#[derive(Debug, Clone)]
pub struct ConflictWitness {
    /// The superset rule (more LHS evidence) — the ER009 finding anchors
    /// here.
    pub rule: usize,
    /// The subset rule it contradicts.
    pub related: usize,
    /// Master row pinning the superset rule's key (the witness tuple).
    pub master_row: usize,
    /// The witness tuple's rendered values, master attribute order.
    pub master_tuple: Vec<String>,
    /// What the superset rule prescribes on tuples matching the witness.
    pub narrow_value: String,
    /// What the subset rule prescribes on those same tuples.
    pub broad_value: String,
    /// How many master rows witness the conflict (the reported row is the
    /// first).
    pub conflicting_rows: usize,
}

/// Run the conflict pass over every target group. `display` maps a rule's
/// position in the concatenated `targets` order to its reported index.
pub(crate) fn conflict_pass(
    master: &Relation,
    targets: &[TargetRules],
    pool: &WorkerPool,
    display: &dyn Fn(usize) -> usize,
) -> Vec<ConflictWitness> {
    let mut witnesses = Vec::new();
    let mut g = 0usize;
    for t in targets {
        let rules: Vec<(usize, &EditingRule)> = t
            .rules
            .iter()
            .map(|r| {
                let idx = display(g);
                g += 1;
                (idx, r)
            })
            .collect();
        // Candidate pairs: strict LHS subset + jointly satisfiable patterns
        // on free attributes.
        type IndexedRule<'a> = (usize, &'a EditingRule);
        let mut pairs: Vec<(IndexedRule<'_>, IndexedRule<'_>)> = Vec::new();
        for &(i, ri) in &rules {
            for &(j, rj) in &rules {
                if strict_subset(ri, rj) && free_patterns_compatible(master, ri, rj) {
                    pairs.push(((i, ri), (j, rj)));
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        // One warmed group index per distinct X_m, shared by every pair.
        let mut indexes: HashMap<Vec<AttrId>, GroupIndex> = HashMap::new();
        for &(_, r) in &rules {
            indexes
                .entry(r.xm())
                .or_insert_with(|| GroupIndex::build(master, &r.xm(), t.target.1));
        }
        let found = pool.map(&pairs, |&((i, ri), (j, rj))| {
            scan_pair(master, ri, rj, &indexes).map(|(row, narrow, broad, count)| ConflictWitness {
                rule: j,
                related: i,
                master_row: row,
                master_tuple: (0..master.schema().arity())
                    .map(|a| master.value(row, a).to_string())
                    .collect(),
                narrow_value: master.pool().value(narrow).to_string(),
                broad_value: master.pool().value(broad).to_string(),
                conflicting_rows: count,
            })
        });
        witnesses.extend(found.into_iter().flatten());
    }
    witnesses
}

/// Whether `a`'s LHS is a strict subset of `b`'s, as exact `(A, A_m)` pairs.
fn strict_subset(a: &EditingRule, b: &EditingRule) -> bool {
    a.lhs_len() < b.lhs_len() && a.lhs().iter().all(|p| b.lhs().contains(p))
}

/// Whether the two patterns can hold simultaneously on the attributes *not*
/// pinned by `b`'s LHS (pinned attributes are checked per master row).
fn free_patterns_compatible(master: &Relation, a: &EditingRule, b: &EditingRule) -> bool {
    for ca in a.pattern() {
        if b.lhs_contains_input(ca.attr) {
            continue;
        }
        for cb in b.pattern() {
            if cb.attr == ca.attr && !preds_overlap(master, &ca.pred, &cb.pred) {
                return false;
            }
        }
    }
    true
}

/// Whether some cell value satisfies both predicates.
pub(crate) fn preds_overlap(master: &Relation, p: &Pred, q: &Pred) -> bool {
    let numeric = |c: Code| master.pool().value(c).as_f64();
    let in_range = |c: Code, lo: f64, hi: f64| numeric(c).is_some_and(|v| v >= lo && v < hi);
    match (p, q) {
        (Pred::Eq(a), Pred::Eq(b)) => a == b,
        (Pred::Eq(a), Pred::OneOf(bs)) | (Pred::OneOf(bs), Pred::Eq(a)) => {
            bs.binary_search(a).is_ok()
        }
        (Pred::OneOf(xs), Pred::OneOf(ys)) => xs.iter().any(|c| ys.binary_search(c).is_ok()),
        (Pred::Eq(a), Pred::Range { lo, hi }) | (Pred::Range { lo, hi }, Pred::Eq(a)) => {
            in_range(*a, *lo, *hi)
        }
        (Pred::OneOf(xs), Pred::Range { lo, hi }) | (Pred::Range { lo, hi }, Pred::OneOf(xs)) => {
            xs.iter().any(|&c| in_range(c, *lo, *hi))
        }
        (Pred::Range { lo: l1, hi: h1 }, Pred::Range { lo: l2, hi: h2 }) => {
            l1.max(*l2) < h1.min(*h2)
        }
    }
}

/// Scan the master for rows where the pair's prescriptions contradict.
/// Returns the first witness `(row, narrow, broad, total_conflicting_rows)`.
fn scan_pair(
    master: &Relation,
    sub: &EditingRule,
    sup: &EditingRule,
    indexes: &HashMap<Vec<AttrId>, GroupIndex>,
) -> Option<(usize, Code, Code, usize)> {
    let idx_sub = &indexes[&sub.xm()];
    let idx_sup = &indexes[&sup.xm()];
    let mut first: Option<(usize, Code, Code)> = None;
    let mut count = 0usize;
    'rows: for row in 0..master.num_rows() {
        let mut key_sup = Vec::with_capacity(sup.lhs_len());
        for &(_, am) in sup.lhs() {
            let c = master.code(row, am);
            if c == NULL_CODE {
                continue 'rows;
            }
            key_sup.push(c);
        }
        // Pattern conditions on attributes pinned by the superset LHS must
        // hold for the pinned value, else no input tuple matching this
        // master row fires both rules.
        for cond in sub.pattern().iter().chain(sup.pattern()) {
            let Some(&(_, am)) = sup.lhs().iter().find(|&&(a, _)| a == cond.attr) else {
                continue;
            };
            let c = master.code(row, am);
            if !cond.pred.matches(c, master.pool().value(c).as_f64()) {
                continue 'rows;
            }
        }
        let key_sub: Vec<Code> = sub
            .lhs()
            .iter()
            .map(|&(_, am)| master.code(row, am))
            .collect();
        let (Some(narrow), Some(broad)) =
            (modal(idx_sup.get(&key_sup)), modal(idx_sub.get(&key_sub)))
        else {
            continue;
        };
        if narrow != broad {
            count += 1;
            if first.is_none() {
                first = Some((row, narrow, broad));
            }
        }
    }
    first.map(|(row, narrow, broad)| (row, narrow, broad, count))
}

/// The modal non-NULL `Y_m` value of a key group (ties broken towards the
/// smaller code — the same deterministic tie-break the repair vote and the
/// ER005 lint use).
pub(crate) fn modal(entries: &[(Code, u32)]) -> Option<Code> {
    entries
        .iter()
        .filter(|e| e.0 != NULL_CODE)
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|e| e.0)
}
