#![forbid(unsafe_code)]
//! # er-analyze — whole-rule-set static analysis
//!
//! The lint layer (`er-lint`) checks rules one by one and pairwise against
//! the *observed input*. This crate treats an editing-rule set as a
//! **program** and asks the three questions a cleaning program must answer
//! before it is trusted in production serving:
//!
//! 1. **Does it terminate?** ([`graph`]) The chase re-runs rules round after
//!    round because fixes cascade; the attribute-level read/write dependency
//!    graph decides statically whether that cascade bottoms out. Acyclic ⇒ a
//!    weak-acyclicity certificate with an explicit round bound, and
//!    [`er_rules::ChaseConfig::uncapped`] is sound. Cyclic ⇒ ER008 (Error)
//!    with the offending rule chain as witness, and the round cap becomes an
//!    explicit diagnosed fallback ([`cap_finding`] reports actual cap hits
//!    at runtime as an ER008 Warning).
//! 2. **Does it contradict itself?** ([`conflict`]) Two rules with
//!    comparable evidence (strict-subset LHS) prescribing different certain
//!    fixes is a contradiction, certified by a concrete master tuple —
//!    ER009 (Error).
//! 3. **Does order matter?** ([`confluence`]) Every critical pair — two
//!    rules on a shared target whose LHS patterns unify — is joined
//!    symbolically over concrete master witnesses: a non-joinable pair is
//!    ER013 (Error) with a two-order counterexample row, a pair that joins
//!    only via the smaller-code tie-break is ER014 (Warning), and a set
//!    where every pair joins outright earns a [`ConfluenceCertificate`]
//!    (generation-stamped) that licenses the engines' arrival-order vote
//!    merges (`er_par::WorkerPool::unordered_fold`, the sharded merge).
//! 4. **Can every rule fire?** ([`reach`]) Rules dead against the current
//!    master domains ([`MasterProfile`], generation-aware per-column
//!    [`er_table::ColumnStats`]) — ER010 (Warning).
//! 5. **What does a change do?** ([`diff`]) Given an (old, new) version
//!    pair, the diff pass computes the **edit scope** symbolically: the
//!    master code signatures whose repair verdict differs, each with a
//!    concrete master-row witness — ER011 (Info) per changed signature,
//!    ER012 (Error) when a change lands outside a caller-declared
//!    [`EditScope`], and an equivalence certificate when nothing changes.
//!
//! `er-serve` gates `reload` and `append` on [`AnalysisReport::gate_clean`]
//! (no ER008/ER009): a rejected load returns a typed NDJSON error and never
//! swaps the live engine. The `experiments analyze` CLI prints the
//! [`AnalysisReport`] as text or JSON (`results/analyze.json`).
//!
//! Both passes that fan out ([`conflict`] pairs, [`reach`] rules) use
//! [`er_par::WorkerPool::map`], so reports are byte-identical at any thread
//! count (enforced by `crates/bench/tests/par_determinism.rs`).

mod conflict;
mod confluence;
mod diff;
mod graph;
mod portable;
mod reach;
mod report;

pub use conflict::ConflictWitness;
pub use confluence::{ConfluenceCertificate, JoinProof, OrderWitness};
pub use diff::{diff, diff_json, diff_portable, DiffReport, EditScope, VerdictChange};
pub use graph::{CycleWitness, TerminationCertificate};
pub use portable::{analyze_json, analyze_portable};
pub use reach::{MasterProfile, UnreachableRule};
pub use report::AnalysisReport;

use er_lint::{DiagnosticCode, Finding, Severity};
use er_par::WorkerPool;
use er_rules::{ChaseConfig, ChaseResult, TargetRules};
use er_table::{Relation, Schema};
use std::sync::Arc;

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeConfig {
    /// Worker threads for the conflict and reachability fan-outs (`0` =
    /// auto: `ER_THREADS` or sequential). Reports are byte-identical at any
    /// count.
    pub threads: usize,
}

impl AnalyzeConfig {
    /// Config with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        AnalyzeConfig { threads }
    }
}

/// Run all three passes over a resolved multi-target rule set.
///
/// `input_schema` is the input relation's schema (rules reference input
/// attributes; no input *data* is needed — the analysis is against the
/// master). Rule indexes in witnesses and findings count through `targets`
/// in concatenation order.
///
/// # Panics
/// Panics if a rule's target differs from its [`TargetRules::target`].
pub fn analyze(
    input_schema: &Arc<Schema>,
    master: &Relation,
    targets: &[TargetRules],
    config: &AnalyzeConfig,
) -> AnalysisReport {
    analyze_with_display(input_schema, master, targets, config, None)
}

/// [`analyze`] with an optional concatenation-position → reported-index
/// map (used by [`analyze_portable`] to report file-order indexes).
pub(crate) fn analyze_with_display(
    input_schema: &Arc<Schema>,
    master: &Relation,
    targets: &[TargetRules],
    config: &AnalyzeConfig,
    display_map: Option<&[usize]>,
) -> AnalysisReport {
    for t in targets {
        for r in &t.rules {
            assert_eq!(r.target(), t.target, "rule target mismatch in TargetRules");
        }
    }
    let display = |g: usize| display_map.map_or(g, |m| m[g]);
    let pool = WorkerPool::new(er_par::resolve_threads(config.threads));
    let num_rules: usize = targets.iter().map(|t| t.rules.len()).sum();

    let termination = graph::termination_pass(input_schema, targets, &display);
    let conflicts = conflict::conflict_pass(master, targets, &pool, &display);
    let confluence = confluence::confluence_pass(master, targets, &pool, &display);
    let profile = MasterProfile::new(master);
    let unreachable =
        reach::reachability_pass(input_schema, master, &profile, targets, &pool, &display);

    // Spans need a relation over the input schema for the rule printer; the
    // master's pool holds every interned value.
    let empty_input = Relation::empty(Arc::clone(input_schema), Arc::clone(master.pool()));
    let mut spans: std::collections::HashMap<usize, String> = Default::default();
    let mut g = 0usize;
    for t in targets {
        for r in &t.rules {
            spans.insert(
                display(g),
                r.display(&empty_input, master.schema()).to_string(),
            );
            g += 1;
        }
    }
    let span = |idx: usize| spans.get(&idx).cloned().unwrap_or_default();
    let findings =
        report::build_findings(&termination, &conflicts, &confluence, &unreachable, &span);
    AnalysisReport {
        num_rules,
        num_targets: targets.len(),
        master_rows: master.num_rows(),
        generation: master.generation(),
        termination,
        conflicts,
        confluence,
        unreachable,
        findings,
    }
}

/// The runtime side of ER008: `None` when the chase converged, otherwise a
/// Warning finding reporting that [`er_rules::ChaseConfig::max_rounds`] cut
/// the chase off before a fixpoint — the situation the static certificate
/// exists to rule out.
pub fn cap_finding(result: &ChaseResult, config: &ChaseConfig) -> Option<Finding> {
    if result.converged {
        return None;
    }
    Some(Finding {
        code: DiagnosticCode::Er008,
        severity: Severity::Warning,
        rule: 0,
        related: None,
        span: "<chase>".to_string(),
        message: format!(
            "chase stopped at the round cap ({} round{}) without reaching a fixpoint; \
             {} fix{} committed, more may remain",
            config.max_rounds,
            if config.max_rounds == 1 { "" } else { "s" },
            result.fixes.len(),
            if result.fixes.len() == 1 { "" } else { "es" },
        ),
        note: Some(
            "certify termination with er-analyze and run ChaseConfig::uncapped(), or raise \
             max_rounds"
                .to_string(),
        ),
    })
}
