//! Analyzing portable (JSON) rule sets.
//!
//! Saved rule files are *multi-target*: one document can mix `City → ZIP`
//! and `ZIP → City` rules — exactly the mixes the termination pass exists to
//! catch. This module groups a portable document by resolved target pair,
//! resolves each group against a per-target view of the task, and runs the
//! analysis with rule indexes reported in *file order* (witnesses point at
//! the rules the user can see).

use crate::{analyze_with_display, AnalysisReport, AnalyzeConfig};
use er_rules::io::{PortableCondition, PortableRule};
use er_rules::{from_portable, TargetRules, Task};
use er_table::AttrId;
use std::collections::HashMap;

/// Analyze a portable rule set against `task`'s relations. Unlike the lint
/// layer, a rule that cannot be resolved at all is a hard `Err` (run
/// `experiments lint` first for per-rule diagnostics).
pub fn analyze_portable(
    rules: &[PortableRule],
    task: &Task,
    config: &AnalyzeConfig,
) -> Result<AnalysisReport, String> {
    let in_schema = task.input().schema();
    let m_schema = task.master().schema();
    let mut order: Vec<(AttrId, AttrId)> = Vec::new();
    let mut groups: HashMap<(AttrId, AttrId), Vec<(usize, er_rules::EditingRule)>> = HashMap::new();
    let mut sub_tasks: HashMap<(AttrId, AttrId), Task> = HashMap::new();
    for (idx, p) in rules.iter().enumerate() {
        precheck(idx, p)?;
        let y = in_schema
            .attr_id(&p.target.0)
            .map_err(|_| format!("rule #{idx}: unknown input attribute `{}`", p.target.0))?;
        let ym = m_schema
            .attr_id(&p.target.1)
            .map_err(|_| format!("rule #{idx}: unknown master attribute `{}`", p.target.1))?;
        let sub = sub_tasks.entry((y, ym)).or_insert_with(|| {
            Task::new(
                task.input().clone(),
                task.master().clone(),
                task.matching().clone(),
                (y, ym),
            )
        });
        let rule = from_portable(p, sub).map_err(|e| format!("rule #{idx}: {e}"))?;
        groups
            .entry((y, ym))
            .or_insert_with(|| {
                order.push((y, ym));
                Vec::new()
            })
            .push((idx, rule));
    }
    let mut display_map: Vec<usize> = Vec::with_capacity(rules.len());
    let targets: Vec<TargetRules> = order
        .iter()
        .map(|t| TargetRules {
            target: *t,
            rules: groups
                .remove(t)
                .unwrap_or_default()
                .into_iter()
                .map(|(idx, r)| {
                    display_map.push(idx);
                    r
                })
                .collect(),
        })
        .collect();
    Ok(analyze_with_display(
        in_schema,
        task.master(),
        &targets,
        config,
        Some(&display_map),
    ))
}

/// Analyze a JSON rule document (the format written by
/// [`er_rules::rules_to_json`]).
pub fn analyze_json(
    json: &str,
    task: &Task,
    config: &AnalyzeConfig,
) -> Result<AnalysisReport, String> {
    let portable: Vec<PortableRule> =
        serde_json::from_str(json).map_err(|e| format!("not a rule-set document: {e}"))?;
    analyze_portable(&portable, task, config)
}

/// Definition 1 sanity so resolving cannot panic: these are the same fatal
/// shapes the lint layer reports as ER006.
pub(crate) fn precheck(idx: usize, p: &PortableRule) -> Result<(), String> {
    let ill = |what: &str| {
        Err(format!(
            "rule #{idx} is ill-formed ({what}); run `experiments lint`"
        ))
    };
    let y = &p.target.0;
    if p.lhs.iter().any(|(a, _)| a == y) {
        return ill("target attribute appears in the LHS");
    }
    let cond_attr = |c: &PortableCondition| -> String {
        match c {
            PortableCondition::Eq { attr, .. }
            | PortableCondition::Range { attr, .. }
            | PortableCondition::OneOf { attr, .. } => attr.clone(),
        }
    };
    if p.pattern.iter().any(|c| &cond_attr(c) == y) {
        return ill("target attribute is constrained by the pattern");
    }
    let mut seen: Vec<&str> = Vec::new();
    for (a, _) in &p.lhs {
        if seen.contains(&a.as_str()) {
            return ill("an input attribute repeats in the LHS");
        }
        seen.push(a);
    }
    let mut seen_p: Vec<String> = Vec::new();
    for c in &p.pattern {
        let a = cond_attr(c);
        if seen_p.contains(&a) {
            return ill("the pattern constrains an attribute more than once");
        }
        seen_p.push(a);
    }
    Ok(())
}
