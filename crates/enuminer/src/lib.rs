#![forbid(unsafe_code)]
//! # er-enuminer — enumeration-based editing rule discovery (§II-D)
//!
//! `EnuMiner` follows classical levelwise rule mining (CTANE-style): starting
//! from the empty rule it repeatedly refines frontier rules by adding either
//! an LHS attribute pair `(A, A_m)` with `A_m ∈ M(A)` or a pattern condition
//! `(A, v)`, enumerating the whole `2^{|M|} · Π(|dom(A)|+1)` lattice subject
//! to pruning:
//!
//! * **Support pruning** — by Lemma 1 support is anti-monotone under
//!   refinement, so a rule with `S(φ) < η_s` is discarded *with its whole
//!   subtree*.
//! * **Certain-fix stop** — a rule with `C(φ) = 1` already returns certain
//!   fixes; refining it further can only reduce coverage (Alg. 4 line 14).
//! * **Visited-rule hash table** — the lattice is a DAG (the same rule is
//!   reachable by many refinement orders); every generated rule is recorded
//!   and never evaluated twice.
//! * **Cover-based subspace search** — a child's pattern cover is computed
//!   by rescanning only its parent's cover, not the whole input.
//!
//! The depth-limited heuristic **EnuMinerH3** (§V-D2) is the same miner with
//! `max_lhs = max_pattern = 3`.
//!
//! ## Parallel expansion
//!
//! The lattice is expanded level-synchronously: child *generation* (which
//! mutates the visited set and the evaluation budget) stays sequential in
//! lattice order, while child *evaluation* — the cover rescan plus the
//! measure pass, which dominates the run — fans out over an [`er_par`]
//! worker pool and is merged back in generation order. Because generation
//! order, the visited set, the budget cut-off, and every counter are
//! computed exactly as in the sequential walk, the [`MineResult`] is
//! byte-identical at any thread count.

use er_rules::{
    select_top_k, ConditionSpace, ConditionSpaceConfig, EditingRule, Evaluator, Measures, Task,
};
use er_table::RowId;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// EnuMiner configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnuMinerConfig {
    /// Support threshold `η_s`; rules below it are pruned with their subtree.
    pub support_threshold: usize,
    /// Number of rules to return (the paper uses `K = 50`).
    pub k: usize,
    /// Cap on `|X|` (`Some(3)` = the EnuMinerH3 heuristic).
    pub max_lhs: Option<usize>,
    /// Cap on `|X_p|` (`Some(3)` = the EnuMinerH3 heuristic).
    pub max_pattern: Option<usize>,
    /// Safety valve: stop after evaluating this many distinct rules.
    /// `None` enumerates exhaustively, like the paper's EnuMiner.
    pub max_rules_evaluated: Option<usize>,
    /// Rules with certainty at or above this are not refined further (the
    /// paper's `C(φ) = 1` stop, relaxed for approximate dependencies).
    pub certainty_stop: f64,
    /// Pattern-condition space construction (shared with RLMiner).
    pub condition_space: ConditionSpaceConfig,
    /// Worker threads for child evaluation (`0` = auto: `ER_THREADS` or
    /// sequential). The mined result is identical at any thread count.
    pub threads: usize,
}

impl EnuMinerConfig {
    /// Exhaustive EnuMiner with the given support threshold and `K = 50`.
    pub fn new(support_threshold: usize) -> Self {
        EnuMinerConfig {
            support_threshold,
            k: 50,
            max_lhs: None,
            max_pattern: None,
            max_rules_evaluated: None,
            certainty_stop: 0.95,
            condition_space: ConditionSpaceConfig::default(),
            threads: 0,
        }
    }

    /// The EnuMinerH3 heuristic: LHS and pattern lengths capped at 3.
    pub fn h3(support_threshold: usize) -> Self {
        EnuMinerConfig {
            max_lhs: Some(3),
            max_pattern: Some(3),
            ..Self::new(support_threshold)
        }
    }
}

/// Outcome of a mining run, with cost counters for the scalability figures.
#[derive(Debug, Clone)]
pub struct MineResult {
    /// The non-redundant top-K rules with their measures, best first.
    pub rules: Vec<(EditingRule, Measures)>,
    /// Number of distinct rules evaluated.
    pub evaluated: usize,
    /// Number of frontier nodes expanded.
    pub expanded: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MineResult {
    /// Just the rules, discarding measures.
    pub fn rules_only(&self) -> Vec<EditingRule> {
        self.rules.iter().map(|(r, _)| r.clone()).collect()
    }
}

struct Node {
    rule: EditingRule,
    cover: Vec<RowId>,
}

/// A generated-but-not-yet-evaluated child: the index of its parent in the
/// current frontier plus the refined rule.
struct Pending {
    parent: usize,
    child: EditingRule,
}

/// Run EnuMiner on `task` under `config`.
///
/// The frontier is expanded one lattice level at a time. Generation (visited
/// dedup, budget accounting) is sequential in the exact order of the
/// original FIFO walk; evaluation of the level's pending children fans out
/// over the worker pool and is merged in generation order, so counters,
/// candidate order, and the final rule list match the 1-thread run exactly.
pub fn mine(task: &Task, config: EnuMinerConfig) -> MineResult {
    let start = Instant::now();
    let ev = Evaluator::with_threads(task, config.threads);
    let pool = ev.pool();
    let space = ConditionSpace::build(task, config.condition_space);
    let lhs_pairs = task.candidate_lhs_pairs();

    let root = EditingRule::root(task.target());
    let all_rows: Vec<RowId> = (0..task.input().num_rows()).collect();
    let mut frontier: Vec<Node> = vec![Node {
        rule: root.clone(),
        cover: all_rows,
    }];

    let mut visited: HashSet<EditingRule> = HashSet::new();
    visited.insert(root);
    let mut candidates: Vec<(EditingRule, Measures)> = Vec::new();
    let mut evaluated = 0usize;
    let mut expanded = 0usize;
    let mut out_of_budget = false;

    while !frontier.is_empty() && !out_of_budget {
        // Generation pass (sequential, lattice order): collect this level's
        // fresh children, stopping at the evaluation budget. A node counts
        // as expanded as soon as any of its children may be evaluated —
        // matching the sequential walk, which pops it before its first eval.
        let mut pending: Vec<Pending> = Vec::new();
        'nodes: for (parent, node) in frontier.iter().enumerate() {
            expanded += 1;
            // Children by LHS extension.
            let mut children: Vec<EditingRule> = Vec::new();
            if config.max_lhs.is_none_or(|cap| node.rule.lhs_len() < cap) {
                for &(a, am) in &lhs_pairs {
                    if !node.rule.lhs_contains_input(a) {
                        children.push(node.rule.with_lhs_pair(a, am));
                    }
                }
            }
            // Children by pattern extension.
            if config
                .max_pattern
                .is_none_or(|cap| node.rule.pattern_len() < cap)
            {
                for attr in 0..space.num_attrs() {
                    if node.rule.pattern_contains(attr) {
                        continue;
                    }
                    for cond in space.of(attr) {
                        children.push(node.rule.with_condition(cond.clone()));
                    }
                }
            }

            for child in children {
                if !visited.insert(child.clone()) {
                    continue;
                }
                pending.push(Pending { parent, child });
                if config
                    .max_rules_evaluated
                    .is_some_and(|cap| evaluated + pending.len() >= cap)
                {
                    out_of_budget = true;
                    break 'nodes;
                }
            }
        }

        // Evaluation pass (parallel): cover rescan + measure computation
        // per pending child. Covers are path-independent (they depend only
        // on the child's own pattern), so any parent's cover restricts the
        // scan to the same result the full-table scan would give.
        let results: Vec<(Measures, Vec<RowId>)> = pool.map(&pending, |p| {
            let node = &frontier[p.parent];
            let cover = if p.child.pattern_len() == node.rule.pattern_len() {
                node.cover.clone() // LHS extension: the pattern is unchanged.
            } else {
                ev.cover(&p.child, Some(&node.cover))
            };
            let m = ev.eval_on_cover(&p.child, &cover);
            (m, cover)
        });

        // Merge pass (sequential, generation order): counters, candidate
        // pushes, and the next frontier replay the sequential walk exactly.
        let mut next: Vec<Node> = Vec::new();
        for (p, (m, cover)) in pending.into_iter().zip(results) {
            evaluated += 1;
            if m.support >= config.support_threshold {
                if p.child.lhs_len() >= 1 {
                    candidates.push((p.child.clone(), m));
                }
                // Refine further only while fixes are not yet certain.
                if m.certainty < config.certainty_stop {
                    next.push(Node {
                        rule: p.child,
                        cover,
                    });
                }
            } // else: Lemma 1 — the whole subtree is below threshold.
        }
        frontier = next;
    }

    // Under `debug-invariants`, audit the evaluator's caches (group indexes
    // and measure ranges) after the full enumeration.
    #[cfg(feature = "debug-invariants")]
    ev.check_invariants();

    let rules = select_top_k(candidates, config.k);
    MineResult {
        rules,
        evaluated,
        expanded,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::{figure1, DatasetKind, ScenarioConfig};
    use er_rules::{apply_rules, dominates};

    fn small(kind: DatasetKind) -> er_datagen::Scenario {
        kind.build(ScenarioConfig {
            input_size: 400,
            master_size: 200,
            seed: 11,
            ..kind.paper_config()
        })
    }

    #[test]
    fn figure1_discovers_a_certain_rule() {
        let s = figure1();
        let result = mine(&s.task, EnuMinerConfig::new(1));
        assert!(!result.rules.is_empty());
        // Some discovered rule must give certain fixes.
        assert!(result.rules.iter().any(|(_, m)| m.certainty == 1.0));
        assert!(result.evaluated > 0);
    }

    #[test]
    fn location_recovers_planted_fd() {
        let s = small(DatasetKind::Location);
        let result = mine(&s.task, EnuMinerConfig::new(s.support_threshold));
        assert!(!result.rules.is_empty());
        // The planted FD county → postcode must rank at the very top.
        let input = s.task.input();
        let county = input.schema().attr_id("county").unwrap();
        let best = &result.rules[0].0;
        assert!(
            best.x().contains(&county),
            "best rule should use county: {best:?}"
        );
        let report = apply_rules(&s.task, &result.rules_only());
        let prf = s.evaluate(&report);
        // At this 400-row scale precision is noisier than the paper-scale
        // ~0.85 (see the fig-scale experiments); assert the shape only.
        assert!(prf.precision > 0.65, "precision {}", prf.precision);
        assert!(prf.f1 > 0.6, "f1 {}", prf.f1);
    }

    #[test]
    fn support_threshold_is_respected() {
        let s = small(DatasetKind::Covid);
        let result = mine(&s.task, EnuMinerConfig::new(s.support_threshold));
        for (rule, m) in &result.rules {
            assert!(
                m.support >= s.support_threshold,
                "rule {:?} has support {}",
                rule,
                m.support
            );
        }
    }

    #[test]
    fn result_is_non_redundant() {
        let s = small(DatasetKind::Covid);
        let result = mine(&s.task, EnuMinerConfig::new(s.support_threshold));
        for (i, (a, _)) in result.rules.iter().enumerate() {
            for (j, (b, _)) in result.rules.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b), "{a:?} dominates {b:?}");
                }
            }
        }
    }

    #[test]
    fn k_caps_rule_count() {
        let s = small(DatasetKind::Nursery);
        let mut config = EnuMinerConfig::new(s.support_threshold);
        config.k = 5;
        let result = mine(&s.task, config);
        assert!(result.rules.len() <= 5);
    }

    #[test]
    fn h3_evaluates_no_more_than_full() {
        let s = small(DatasetKind::Covid);
        let full = mine(&s.task, EnuMinerConfig::new(s.support_threshold));
        let h3 = mine(&s.task, EnuMinerConfig::h3(s.support_threshold));
        assert!(h3.evaluated <= full.evaluated);
        for (rule, _) in &h3.rules {
            assert!(rule.lhs_len() <= 3);
            assert!(rule.pattern_len() <= 3);
        }
    }

    #[test]
    fn rules_sorted_by_utility() {
        let s = small(DatasetKind::Adult);
        let mut config = EnuMinerConfig::new(s.support_threshold);
        config.max_rules_evaluated = Some(30_000);
        let result = mine(&s.task, config);
        for w in result.rules.windows(2) {
            assert!(w[0].1.utility >= w[1].1.utility);
        }
    }

    #[test]
    fn evaluation_budget_is_honored() {
        let s = small(DatasetKind::Adult);
        let mut config = EnuMinerConfig::new(s.support_threshold);
        config.max_rules_evaluated = Some(100);
        let result = mine(&s.task, config);
        assert!(result.evaluated <= 100);
    }

    #[test]
    fn adult_repair_beats_trivial_baseline() {
        let s = small(DatasetKind::Adult);
        let mut config = EnuMinerConfig::new(s.support_threshold);
        config.max_rules_evaluated = Some(30_000);
        let result = mine(&s.task, config);
        let report = apply_rules(&s.task, &result.rules_only());
        let prf = s.evaluate(&report);
        assert!(prf.f1 > 0.3, "f1 {}", prf.f1);
    }
}
