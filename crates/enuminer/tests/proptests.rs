//! Property-based tests for EnuMiner on small random tasks.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_enuminer::{mine, EnuMinerConfig};
use er_rules::{dominates, Evaluator, SchemaMatch, Task};
use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// A random 3-attribute task: input and master drawn from tiny domains so
/// exhaustive mining stays instant.
fn build_task(input_rows: &[(u8, u8, u8)], master_rows: &[(u8, u8, u8)]) -> Task {
    let pool = Arc::new(Pool::new());
    let schema = |name: &str| {
        Arc::new(Schema::new(
            name,
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("Y"),
            ],
        ))
    };
    let mut bi = RelationBuilder::new(schema("in"), Arc::clone(&pool));
    for &(a, b, y) in input_rows {
        bi.push_row(vec![
            Value::str(format!("a{a}")),
            Value::str(format!("b{b}")),
            Value::str(format!("y{y}")),
        ])
        .unwrap();
    }
    let mut bm = RelationBuilder::new(schema("m"), pool);
    for &(a, b, y) in master_rows {
        bm.push_row(vec![
            Value::str(format!("a{a}")),
            Value::str(format!("b{b}")),
            Value::str(format!("y{y}")),
        ])
        .unwrap();
    }
    let matching = SchemaMatch::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]);
    Task::new(bi.finish(), bm.finish(), matching, (2, 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants of every mining result: support ≥ η_s, correct
    /// measures on re-evaluation, non-redundant set, utility-sorted.
    #[test]
    fn mining_invariants(
        input in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 5..40),
        master in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 3..20),
        eta in 1usize..4,
    ) {
        let task = build_task(&input, &master);
        let result = mine(&task, EnuMinerConfig::new(eta));
        let ev = Evaluator::new(&task);
        for w in result.rules.windows(2) {
            prop_assert!(w[0].1.utility >= w[1].1.utility);
        }
        for (rule, m) in &result.rules {
            prop_assert!(m.support >= eta);
            prop_assert!(rule.lhs_len() >= 1);
            let fresh = ev.eval(rule, None);
            prop_assert_eq!(fresh, *m, "measures must re-verify for {:?}", rule);
        }
        for (i, (a, _)) in result.rules.iter().enumerate() {
            for (j, (b, _)) in result.rules.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(a, b));
                }
            }
        }
    }

    /// A higher support threshold never yields a rule the lower threshold
    /// run could not have considered (result sets are threshold-monotone in
    /// the sense that every high-η rule is valid under low η too).
    #[test]
    fn threshold_monotonicity(
        input in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 8..40),
        master in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 4..20),
    ) {
        let task = build_task(&input, &master);
        let high = mine(&task, EnuMinerConfig::new(4));
        for (_, m) in &high.rules {
            prop_assert!(m.support >= 4);
        }
        // Every rule valid at η=4 is also ≥ η=2 by definition.
        let low = mine(&task, EnuMinerConfig::new(2));
        prop_assert!(low.evaluated >= high.evaluated);
    }
}
