//! Fixture tests: every diagnostic class fires on a crafted rule set, and a
//! clean rule set produces zero findings.

// Test code: a panic is the failure report (the workspace wall only guards
// library code, but fixture helpers here sit outside any #[test] fn).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_lint::{lint_json, lint_portable, lint_resolved, DiagnosticCode, Severity};
use er_rules::io::{PortableCondition, PortableRule};
use er_rules::{dominates, rules_to_json, Condition, EditingRule, Evaluator, SchemaMatch, Task};
use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
use std::sync::Arc;

/// Input `R(City, Phone, Age, Case)` with two patients; master
/// `R_m(City, Phone, Infection)` supplied per test. Target `(Case, Infection)`.
fn task(master_rows: &[(&str, &str, &str)]) -> Task {
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "patients",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Phone"),
            Attribute::continuous("Age"),
            Attribute::categorical("Case"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "registry",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Phone"),
            Attribute::categorical("Infection"),
        ],
    ));
    let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
    for (city, phone, age, case) in [("HZ", "139", 30, "unknown"), ("BJ", "150", 50, "unknown")] {
        b.push_row(vec![
            Value::str(city),
            Value::str(phone),
            Value::int(age),
            Value::str(case),
        ])
        .unwrap();
    }
    let input = b.finish();
    let mut bm = RelationBuilder::new(m_schema, pool);
    for (city, phone, infection) in master_rows {
        bm.push_row(vec![
            Value::str(*city),
            Value::str(*phone),
            Value::str(*infection),
        ])
        .unwrap();
    }
    let master = bm.finish();
    Task::new(
        input,
        master,
        SchemaMatch::from_pairs(4, &[(0, 0), (1, 1), (3, 2)]),
        (3, 2),
    )
}

/// Master data on which the City rule and the Phone rule agree everywhere.
fn clean_task() -> Task {
    task(&[("HZ", "139", "flu"), ("BJ", "150", "cold")])
}

/// Master data on which City=HZ votes "cold" (2 of 3) while Phone=139 votes
/// "flu" — a repair conflict on input row 0.
fn conflicted_task() -> Task {
    task(&[
        ("HZ", "139", "flu"),
        ("HZ", "888", "cold"),
        ("HZ", "889", "cold"),
    ])
}

fn city_rule() -> EditingRule {
    EditingRule::new(vec![(0, 0)], (3, 2), vec![])
}

fn phone_rule() -> EditingRule {
    EditingRule::new(vec![(1, 1)], (3, 2), vec![])
}

fn portable(rule: &EditingRule, t: &Task) -> PortableRule {
    er_rules::to_portable(rule, t, None)
}

#[test]
fn clean_set_has_zero_findings() {
    let t = clean_task();
    let rules = vec![city_rule(), phone_rule()];
    let report = lint_resolved(&rules, &t);
    assert!(
        report.is_clean(),
        "unexpected findings:\n{}",
        report.render_text()
    );
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 0);
    assert!(report
        .render_text()
        .contains("2 rules, 0 errors, 0 warnings"));
}

#[test]
fn clean_json_round_trip_is_clean() {
    let t = clean_task();
    let ev = Evaluator::new(&t);
    let scored: Vec<_> = [city_rule(), phone_rule()]
        .into_iter()
        .map(|r| (r.clone(), ev.eval(&r, None)))
        .collect();
    let json = rules_to_json(&scored, &t);
    let report = lint_json(&json, &t).unwrap();
    assert!(
        report.is_clean(),
        "unexpected findings:\n{}",
        report.render_text()
    );
}

#[test]
fn flags_all_five_classes_on_crafted_fixture() {
    let t = conflicted_task();
    let city = portable(&city_rule(), &t);
    // Dominated: same LHS as the city rule plus an extra pattern condition.
    let dominated = portable(
        &EditingRule::new(vec![(0, 0)], (3, 2), vec![Condition::range(2, 20.0, 60.0)]),
        &t,
    );
    let mut dangling = portable(&city_rule(), &t);
    dangling.pattern = vec![PortableCondition::Eq {
        attr: "Zip".to_string(),
        value: "310000".to_string(),
        numeric: false,
    }];
    let mut contradictory = portable(&city_rule(), &t);
    contradictory.pattern = vec![
        PortableCondition::Eq {
            attr: "City".to_string(),
            value: "HZ".to_string(),
            numeric: false,
        },
        PortableCondition::Eq {
            attr: "City".to_string(),
            value: "BJ".to_string(),
            numeric: false,
        },
    ];
    let rules = vec![
        city.clone(),                // #0 — fine
        city,                        // #1 — ER003 duplicate of #0
        dominated,                   // #2 — ER004 dominated by #0
        portable(&phone_rule(), &t), // #3 — ER005 conflicts with #0
        dangling,                    // #4 — ER001 unknown attribute
        contradictory,               // #5 — ER002 contradictory conditions
    ];
    let report = lint_portable(&rules, &t);
    let text = report.render_text();

    let dup = report.with_code(DiagnosticCode::Er003);
    assert_eq!(dup.len(), 1, "{text}");
    assert_eq!((dup[0].rule, dup[0].related), (1, Some(0)));

    let dom: Vec<_> = report.with_code(DiagnosticCode::Er004);
    assert!(
        dom.iter().any(|f| f.rule == 2 && f.related == Some(0)),
        "{text}"
    );

    let conflict = report.with_code(DiagnosticCode::Er005);
    assert!(
        conflict.iter().any(|f| {
            (f.rule == 3 && f.related == Some(0)) || (f.rule == 0 && f.related == Some(3))
        }),
        "{text}"
    );

    let dangling = report.with_code(DiagnosticCode::Er001);
    assert_eq!(dangling.len(), 1, "{text}");
    assert_eq!(dangling[0].rule, 4);
    assert_eq!(dangling[0].severity, Severity::Error);
    assert!(dangling[0].message.contains("Zip"));

    let unsat = report.with_code(DiagnosticCode::Er002);
    assert!(
        unsat
            .iter()
            .any(|f| f.rule == 5 && f.severity == Severity::Error),
        "{text}"
    );

    assert!(report.errors() >= 2);
    assert!(report.warnings() >= 3);
}

#[test]
fn conflict_is_invisible_to_domination() {
    // Domination only compares structure; these two rules are structurally
    // incomparable yet prescribe different repairs for the same tuple. Only
    // the ER005 pass sees that.
    let t = conflicted_task();
    let (a, b) = (city_rule(), phone_rule());
    assert!(!dominates(&a, &b));
    assert!(!dominates(&b, &a));
    let report = lint_resolved(&[a, b], &t);
    let conflicts = report.with_code(DiagnosticCode::Er005);
    assert_eq!(conflicts.len(), 1, "{}", report.render_text());
    assert_eq!(conflicts[0].rule, 1);
    assert_eq!(conflicts[0].related, Some(0));
    let note = conflicts[0].note.as_deref().unwrap();
    assert!(note.contains("cold") && note.contains("flu"), "{note}");
}

#[test]
fn unsatisfiable_pattern_variants() {
    let t = clean_task();
    let base = portable(&city_rule(), &t);
    let with_pattern = |pattern: Vec<PortableCondition>| {
        let mut r = base.clone();
        r.pattern = pattern;
        r
    };
    let rules = vec![
        // #0: empty numeric range — logically unsatisfiable.
        with_pattern(vec![PortableCondition::Range {
            attr: "Age".into(),
            lo: 50.0,
            hi: 50.0,
        }]),
        // #1: constant outside the observed City domain.
        with_pattern(vec![PortableCondition::Eq {
            attr: "City".into(),
            value: "SH".into(),
            numeric: false,
        }]),
        // #2: range far outside the observed Age values.
        with_pattern(vec![PortableCondition::Range {
            attr: "Age".into(),
            lo: 200.0,
            hi: 300.0,
        }]),
        // #3: empty value set.
        with_pattern(vec![PortableCondition::OneOf {
            attr: "City".into(),
            values: vec![],
            numeric: false,
        }]),
        // #4: no listed value observed.
        with_pattern(vec![PortableCondition::OneOf {
            attr: "City".into(),
            values: vec!["SH".into(), "SZ".into()],
            numeric: false,
        }]),
        // #5: numeric constant excluded by a range on the same attribute.
        with_pattern(vec![
            PortableCondition::Range {
                attr: "Age".into(),
                lo: 20.0,
                hi: 40.0,
            },
            PortableCondition::Eq {
                attr: "Age".into(),
                value: "50".into(),
                numeric: true,
            },
        ]),
    ];
    let report = lint_portable(&rules, &t);
    let text = report.render_text();
    let expect = [
        (0, Severity::Error),
        (1, Severity::Warning),
        (2, Severity::Warning),
        (3, Severity::Error),
        (4, Severity::Warning),
        (5, Severity::Error),
    ];
    for (rule, severity) in expect {
        assert!(
            report
                .with_code(DiagnosticCode::Er002)
                .iter()
                .any(|f| f.rule == rule && f.severity == severity),
            "rule #{rule} missing expected ER002 {severity}:\n{text}"
        );
    }
}

#[test]
fn ill_formed_rules_are_er006() {
    let t = clean_task();
    let base = portable(&city_rule(), &t);
    // Target appears in the LHS.
    let mut target_in_lhs = base.clone();
    target_in_lhs.lhs = vec![("Case".into(), "Infection".into())];
    // Rule target differs from the task target.
    let mut wrong_target = base.clone();
    wrong_target.target = ("City".into(), "City".into());
    // Same input attribute twice in the LHS.
    let mut dup_lhs = base.clone();
    dup_lhs.lhs = vec![
        ("City".into(), "City".into()),
        ("City".into(), "Phone".into()),
    ];
    // Two satisfiable conditions on one attribute (Definition 1 allows one).
    let mut dup_pattern = base.clone();
    dup_pattern.pattern = vec![
        PortableCondition::Eq {
            attr: "City".into(),
            value: "HZ".into(),
            numeric: false,
        },
        PortableCondition::Eq {
            attr: "City".into(),
            value: "HZ".into(),
            numeric: false,
        },
    ];
    let rules = vec![target_in_lhs, wrong_target, dup_lhs, dup_pattern];
    let report = lint_portable(&rules, &t);
    let text = report.render_text();
    for rule in 0..4 {
        assert!(
            report
                .with_code(DiagnosticCode::Er006)
                .iter()
                .any(|f| f.rule == rule && f.severity == Severity::Error),
            "rule #{rule} missing expected ER006:\n{text}"
        );
    }
}

#[test]
fn text_report_is_rustc_style() {
    let t = conflicted_task();
    let mut dangling = portable(&city_rule(), &t);
    dangling.pattern = vec![PortableCondition::Eq {
        attr: "Zip".into(),
        value: "x".into(),
        numeric: false,
    }];
    let report = lint_portable(&[dangling], &t);
    let text = report.render_text();
    assert!(
        text.contains("error[ER001]: unknown input attribute `Zip`"),
        "{text}"
    );
    assert!(text.contains("--> rule #0:"), "{text}");
    assert!(
        text.contains("= note: input schema `patients` has attributes:"),
        "{text}"
    );
    assert!(
        text.ends_with("rule set: 1 rule, 1 error, 0 warnings\n"),
        "{text}"
    );
}

#[test]
fn json_report_is_machine_readable() {
    let t = conflicted_task();
    let report = lint_resolved(&[city_rule(), phone_rule()], &t);
    let json = report.render_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let obj = value.as_object().unwrap();
    let get = |key: &str| &obj.iter().find(|(k, _)| k == key).unwrap().1;
    assert_eq!(*get("num_rules"), serde_json::Value::Int(2));
    assert_eq!(*get("errors"), serde_json::Value::Int(0));
    assert_eq!(*get("warnings"), serde_json::Value::Int(1));
    let findings = get("findings").as_array().unwrap();
    assert_eq!(findings.len(), 1);
    let finding = findings[0].as_object().unwrap();
    let field = |key: &str| &finding.iter().find(|(k, _)| k == key).unwrap().1;
    assert_eq!(
        *field("code"),
        serde_json::Value::Str(DiagnosticCode::Er005.to_string())
    );
    assert_eq!(
        *field("severity"),
        serde_json::Value::Str("warning".to_string())
    );
    assert_eq!(*field("rule"), serde_json::Value::Int(1));
    assert_eq!(*field("related"), serde_json::Value::Int(0));
}

#[test]
fn garbage_json_is_rejected() {
    let t = clean_task();
    assert!(lint_json("{not json", &t).is_err());
    assert!(lint_json(r#"{"lhs": 3}"#, &t).is_err());
}

#[test]
fn dangling_rules_are_excluded_from_pairwise_passes() {
    // A rule that cannot resolve must not panic or pollute the duplicate /
    // domination passes.
    let t = clean_task();
    let mut dangling = portable(&city_rule(), &t);
    dangling.lhs = vec![("Nope".into(), "City".into())];
    let rules = vec![dangling.clone(), dangling];
    let report = lint_portable(&rules, &t);
    assert_eq!(report.with_code(DiagnosticCode::Er001).len(), 2);
    assert!(report.with_code(DiagnosticCode::Er003).is_empty());
}

#[test]
fn staleness_warns_only_after_the_master_grows() {
    let t = clean_task();
    let mut master = t.master().clone();
    let mined_at = master.generation();

    // Fresh rules over an unchanged master: clean.
    assert!(er_lint::check_staleness(mined_at, &master).is_none());
    // A generation *ahead* of the master (e.g. rules refreshed, relation
    // reloaded) is not stale either.
    assert!(er_lint::check_staleness(mined_at + 5, &master).is_none());

    master
        .push_row(vec![Value::str("SZ"), Value::str("188"), Value::str("flu")])
        .unwrap();
    master
        .push_row(vec![Value::str("SZ"), Value::str("189"), Value::str("flu")])
        .unwrap();
    let finding = er_lint::check_staleness(mined_at, &master).expect("stale set is flagged");
    assert_eq!(finding.code, DiagnosticCode::Er007);
    assert_eq!(finding.code, DiagnosticCode::Er007);
    assert_eq!(finding.severity, Severity::Warning);
    assert_eq!(finding.span, "<rule set>");
    assert!(
        finding.message.contains(&format!("generation {mined_at}")),
        "{}",
        finding.message
    );
    assert!(
        finding.note.as_deref().unwrap_or("").contains("2 row(s)"),
        "{:?}",
        finding.note
    );
}
