//! The diagnostic model: stable codes, severities, findings, and the report
//! with its two renderings (rustc-style text and machine-readable JSON).

use serde::Serialize;
use serde_json::Value;

/// Stable diagnostic codes. Codes are append-only: a code never changes
/// meaning across versions, so downstream tooling can match on the string
/// form (`"ER001"`, ...) safely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagnosticCode {
    /// Dangling attribute reference: a rule names an attribute that does not
    /// exist in the input or master schema.
    Er001,
    /// Unsatisfiable pattern: the pattern can never match any input tuple
    /// (contradictory conditions, an empty range or value set, or a constant
    /// outside the attribute's observed domain).
    Er002,
    /// Exact duplicate: the rule is structurally identical to an earlier
    /// rule in the set.
    Er003,
    /// Dominated rule: an earlier or later rule dominates this one
    /// (Definition 3), making it redundant (Definition 4).
    Er004,
    /// Repair conflict: two rules cover a common input tuple but prescribe
    /// different target values, making the certainty-score vote order- or
    /// tie-break-sensitive on those tuples.
    Er005,
    /// Ill-formed rule: a Definition 1 violation (target inside the LHS or
    /// pattern, repeated attributes) or a target that differs from the
    /// task's target. Such a rule cannot be resolved at all.
    Er006,
    /// Stale rule set: the master relation has grown past the generation the
    /// rules were mined (or last refreshed) at, so support/confidence
    /// measures and fill-rate statistics no longer reflect the data the
    /// rules will repair against.
    Er007,
    /// Non-terminating dependency cycle: the rule set's attribute-level
    /// read/write dependency graph is cyclic, so no weak-acyclicity
    /// termination certificate exists and the chase's round cap is the only
    /// thing bounding it. Emitted as an Error by the static pass (with the
    /// offending rule chain as witness) and as a Warning at runtime when a
    /// chase actually hits the cap without reaching a fixpoint.
    Er008,
    /// Conflicting repairs: two rules with comparable evidence (one rule's
    /// LHS is a strict subset of the other's) prescribe *different* certain
    /// fixes for the same target attribute on overlapping pattern regions,
    /// witnessed by a concrete master tuple. Loading such a set would make
    /// repairs depend on vote tie-breaks instead of agreement.
    Er009,
    /// Unreachable rule: the rule can never fire against the *current*
    /// master data — an LHS master column or the target column is entirely
    /// NULL, or a pattern condition on an LHS attribute excludes every value
    /// the matching master column holds. Generation-aware: appends can both
    /// create and clear this finding.
    Er010,
    /// Verdict-changed signature: between two rule-set versions, the repair
    /// verdict (prescribed value, or no-fix) of one master-derived LHS code
    /// signature differs, witnessed by a concrete master row. Informational:
    /// this is what an edit *does*, not necessarily what is wrong with it.
    Er011,
    /// Behavior-preservation violation: a verdict change (ER011) lies
    /// *outside* the edit scope the caller declared for the change. The
    /// model-editing discipline: an edit may change behavior inside its
    /// declared scope and must preserve it everywhere else.
    Er012,
    /// Non-confluent rule pair: two rules on the same target form a critical
    /// pair whose one-step chase states do not join — applying them in the
    /// two possible orders commits *different* certain fixes on a concrete
    /// master row. No confluence certificate exists for the set, and the
    /// engines must keep merging votes in deterministic rule order.
    Er013,
    /// Tie-break-dependent confluence: a critical pair's divergent
    /// prescriptions carry exactly equal combined evidence, so the chase
    /// converges only because the deterministic smaller-code tie-break picks
    /// the same value in both orders. Verdict-equivalent but order-fragile;
    /// such sets stay on the ordered merge path.
    Er014,
}

impl DiagnosticCode {
    /// Every code in the registry, in numeric order. This is the single
    /// source of truth for "which diagnostics exist": renderers, the README
    /// diagnostics table (checked by `scripts/check_docs.sh`), and tests all
    /// enumerate this instead of hand-maintaining string lists.
    pub const ALL: [DiagnosticCode; 14] = [
        DiagnosticCode::Er001,
        DiagnosticCode::Er002,
        DiagnosticCode::Er003,
        DiagnosticCode::Er004,
        DiagnosticCode::Er005,
        DiagnosticCode::Er006,
        DiagnosticCode::Er007,
        DiagnosticCode::Er008,
        DiagnosticCode::Er009,
        DiagnosticCode::Er010,
        DiagnosticCode::Er011,
        DiagnosticCode::Er012,
        DiagnosticCode::Er013,
        DiagnosticCode::Er014,
    ];

    /// Look a code up by its stable string form (`"ER009"` -> `Er009`).
    pub fn parse(s: &str) -> Option<DiagnosticCode> {
        DiagnosticCode::ALL
            .iter()
            .copied()
            .find(|c| c.as_str() == s)
    }

    /// The stable string form, e.g. `"ER001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::Er001 => "ER001",
            DiagnosticCode::Er002 => "ER002",
            DiagnosticCode::Er003 => "ER003",
            DiagnosticCode::Er004 => "ER004",
            DiagnosticCode::Er005 => "ER005",
            DiagnosticCode::Er006 => "ER006",
            DiagnosticCode::Er007 => "ER007",
            DiagnosticCode::Er008 => "ER008",
            DiagnosticCode::Er009 => "ER009",
            DiagnosticCode::Er010 => "ER010",
            DiagnosticCode::Er011 => "ER011",
            DiagnosticCode::Er012 => "ER012",
            DiagnosticCode::Er013 => "ER013",
            DiagnosticCode::Er014 => "ER014",
        }
    }

    /// Short human title of the diagnostic class.
    pub fn title(self) -> &'static str {
        match self {
            DiagnosticCode::Er001 => "dangling attribute reference",
            DiagnosticCode::Er002 => "unsatisfiable pattern",
            DiagnosticCode::Er003 => "exact duplicate rule",
            DiagnosticCode::Er004 => "dominated (redundant) rule",
            DiagnosticCode::Er005 => "repair conflict",
            DiagnosticCode::Er006 => "ill-formed rule",
            DiagnosticCode::Er007 => "stale rule set",
            DiagnosticCode::Er008 => "non-terminating dependency cycle",
            DiagnosticCode::Er009 => "conflicting repairs",
            DiagnosticCode::Er010 => "unreachable rule",
            DiagnosticCode::Er011 => "verdict-changed signature",
            DiagnosticCode::Er012 => "behavior-preservation violation",
            DiagnosticCode::Er013 => "non-confluent rule pair",
            DiagnosticCode::Er014 => "tie-break-dependent confluence",
        }
    }
}

impl std::fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for DiagnosticCode {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Nothing is wrong: the finding describes an observed fact (e.g. an
    /// ER011 verdict change) the caller asked to be surfaced.
    Info,
    /// The rule set is still usable, but this rule wastes work or makes
    /// repairs harder to predict.
    Warning,
    /// The rule can never fire or cannot even be resolved against the task.
    Error,
}

impl Severity {
    /// Lowercase label used in both report formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// One linter finding, anchored to a rule index in the linted set.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable diagnostic code.
    pub code: DiagnosticCode,
    /// Severity of this particular finding (a code can surface at different
    /// severities: e.g. ER002 is an error for a contradiction but a warning
    /// for an out-of-domain constant, which only proves the rule dead on the
    /// *observed* data).
    pub severity: Severity,
    /// Zero-based index of the offending rule in the linted set.
    pub rule: usize,
    /// The other rule involved, for pairwise diagnostics (ER003–ER005).
    pub related: Option<usize>,
    /// Human-readable rendering of the offending rule (the "span").
    pub span: String,
    /// What is wrong.
    pub message: String,
    /// Optional elaboration (the contradicting condition, the dominating
    /// rule, an example conflicting tuple, ...).
    pub note: Option<String>,
}

impl Serialize for Finding {
    fn to_value(&self) -> Value {
        let obj = vec![
            ("code".to_string(), self.code.to_value()),
            ("severity".to_string(), self.severity.to_value()),
            ("rule".to_string(), Value::Int(self.rule as i64)),
            (
                "related".to_string(),
                match self.related {
                    Some(r) => Value::Int(r as i64),
                    None => Value::Null,
                },
            ),
            ("span".to_string(), Value::Str(self.span.clone())),
            ("message".to_string(), Value::Str(self.message.clone())),
            (
                "note".to_string(),
                match &self.note {
                    Some(n) => Value::Str(n.clone()),
                    None => Value::Null,
                },
            ),
        ];
        Value::Object(obj)
    }
}

/// The result of linting a rule set.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of rules that were linted.
    pub num_rules: usize,
    /// All findings, sorted by (rule, code).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether the set produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// All findings with a given code.
    pub fn with_code(&self, code: DiagnosticCode) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.code == code).collect()
    }

    /// Canonical ordering: by rule index, then code, then related rule.
    pub(crate) fn sort(&mut self) {
        self.findings.sort_by_key(|f| (f.rule, f.code, f.related));
    }

    /// Render the report in a rustc-style text format:
    ///
    /// ```text
    /// warning[ER004]: dominated (redundant) rule
    ///   --> rule #2: ((City, City)) -> (Case, Infection), t_p(City="HZ")
    ///   = note: dominated by rule #0
    ///
    /// rule set: 3 rules, 0 errors, 1 warning
    /// ```
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}[{}]: {}", f.severity, f.code, f.message);
            let _ = writeln!(out, "  --> rule #{}: {}", f.rule, f.span);
            if let Some(note) = &f.note {
                let _ = writeln!(out, "  = note: {note}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "rule set: {} rule{}, {} error{}, {} warning{}",
            self.num_rules,
            plural(self.num_rules),
            self.errors(),
            plural(self.errors()),
            self.warnings(),
            plural(self.warnings()),
        );
        out
    }

    /// Render the report as a machine-readable JSON document.
    pub fn render_json(&self) -> String {
        // Serializing a pure value tree (no maps, no user Display impls)
        // cannot fail; the Result is an artifact of the serde_json signature.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("num_rules".to_string(), Value::Int(self.num_rules as i64)),
            ("errors".to_string(), Value::Int(self.errors() as i64)),
            ("warnings".to_string(), Value::Int(self.warnings() as i64)),
            (
                "findings".to_string(),
                Value::Array(self.findings.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_is_complete_unique_and_well_formed() {
        // Every string form is distinct and follows the ERxxx shape.
        let strings: Vec<&str> = DiagnosticCode::ALL.iter().map(|c| c.as_str()).collect();
        let unique: BTreeSet<&str> = strings.iter().copied().collect();
        assert_eq!(
            unique.len(),
            DiagnosticCode::ALL.len(),
            "duplicate code strings"
        );
        for s in &strings {
            assert_eq!(s.len(), 5, "{s} is not ERxxx");
            assert!(s.starts_with("ER"), "{s} is not ERxxx");
            assert!(
                s[2..].chars().all(|c| c.is_ascii_digit()),
                "{s} is not ERxxx"
            );
        }
        // Codes are append-only and numbered densely from ER001.
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(
                s[2..].parse::<usize>().ok(),
                Some(i + 1),
                "{s} out of order"
            );
        }
        // Titles are distinct, non-empty, and every code round-trips
        // through the string lookup.
        let titles: BTreeSet<&str> = DiagnosticCode::ALL.iter().map(|c| c.title()).collect();
        assert_eq!(titles.len(), DiagnosticCode::ALL.len(), "duplicate titles");
        for code in DiagnosticCode::ALL {
            assert!(!code.title().is_empty());
            assert_eq!(DiagnosticCode::parse(code.as_str()), Some(code));
            assert_eq!(format!("{code}"), code.as_str());
            assert_eq!(code.to_value(), Value::Str(code.as_str().to_string()));
        }
        assert_eq!(DiagnosticCode::parse("ER999"), None);
    }
}
