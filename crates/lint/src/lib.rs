#![forbid(unsafe_code)]
//! # er-lint — static analysis for editing rule sets
//!
//! Discovered rule sets get reviewed, versioned, merged, and re-applied to
//! new batches of data; along the way they accumulate the same defects any
//! other versioned artifact does — references to renamed attributes,
//! patterns that can no longer match, duplicated and subsumed rules, and
//! pairs of rules that pull a tuple's repair in different directions. This
//! crate lints a rule set against a [`er_rules::Task`] *before* it is used
//! for repair, reporting findings under stable diagnostic codes:
//!
//! | code  | finding                                   | severity        |
//! |-------|-------------------------------------------|-----------------|
//! | ER001 | dangling attribute reference              | error           |
//! | ER002 | unsatisfiable pattern                     | error / warning |
//! | ER003 | exact duplicate rule                      | warning         |
//! | ER004 | dominated (redundant) rule (Definition 3) | warning         |
//! | ER005 | repair conflict between two rules         | warning         |
//! | ER006 | ill-formed rule (Definition 1 violation)  | error           |
//! | ER007 | stale rule set vs. master generation      | warning         |
//! | ER008 | non-terminating dependency cycle          | error / warning |
//! | ER009 | conflicting repairs (master witness)      | error           |
//! | ER010 | unreachable rule vs. current master       | warning         |
//!
//! ER002 distinguishes *logical* unsatisfiability (contradictory conditions,
//! empty ranges — errors on any data) from *observed* unsatisfiability
//! (constants outside the attribute's active domain — warnings, since they
//! only prove the rule dead on the dataset at hand).
//!
//! ER007 is the one *set-level* pass: [`check_staleness`] compares the
//! generation a rule set was mined at against the master relation's current
//! [`generation`](er_table::Relation::generation) and warns when the master
//! has grown past it (appends via `er-incr` bump the generation once per
//! row, so the gap is the number of unseen master rows).
//!
//! ER008–ER010 are produced by the whole-set static analyzer in the
//! `er-analyze` crate (which depends on this crate for the diagnostic
//! model): ER008 certifies — or refutes, with a rule-chain witness — chase
//! termination via weak acyclicity of the attribute dependency graph; ER009
//! reports rule pairs whose prescriptions contradict on a concrete master
//! tuple; ER010 reports rules that cannot fire against the current master
//! domains ([`er_table::ColumnStats`]). `er-serve` refuses to load or grow
//! into a rule set with ER008/ER009 errors.
//!
//! Reports render both as a rustc-style text diagnostic stream
//! ([`Report::render_text`]) and as machine-readable JSON
//! ([`Report::render_json`]).
//!
//! ER003 and ER004 are *mechanically fixable*: [`apply_fixes`] removes
//! every flagged rule and provably never changes repair behaviour (the
//! linter keeps the first occurrence of each duplicate group, and
//! domination's transitivity guarantees every removed rule keeps a
//! dominator among the survivors).
//!
//! ```
//! use er_lint::{lint_json, DiagnosticCode};
//! # let scenario_task = er_lint::doctest_task();
//! let json = r#"[{"lhs": [["City", "City"]],
//!                 "target": ["Case", "Infection"],
//!                 "pattern": [{"Eq": {"attr": "Nope", "value": "x", "numeric": false}}],
//!                 "measures": null}]"#;
//! let report = lint_json(json, &scenario_task).unwrap();
//! assert_eq!(report.findings[0].code, DiagnosticCode::Er001);
//! ```

mod diag;
mod fix;
mod lint;

pub use diag::{DiagnosticCode, Finding, Report, Severity};
pub use fix::{apply_fixes, removable, FixOutcome};
pub use lint::{check_staleness, lint_json, lint_portable, lint_resolved, render_portable};

/// A tiny fixed task for the crate's doctests; not part of the public API
/// contract.
#[doc(hidden)]
pub fn doctest_task() -> er_rules::Task {
    use er_rules::SchemaMatch;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "in",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Case"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Infection"),
        ],
    ));
    let mut b = RelationBuilder::new(in_schema, Arc::clone(&pool));
    for (city, case) in [("HZ", "flu"), ("BJ", "cold")] {
        b.push_row(vec![Value::str(city), Value::str(case)])
            .unwrap_or_else(|_| unreachable!());
    }
    let input = b.finish();
    let mut bm = RelationBuilder::new(m_schema, pool);
    for (city, inf) in [("HZ", "flu"), ("BJ", "cold")] {
        bm.push_row(vec![Value::str(city), Value::str(inf)])
            .unwrap_or_else(|_| unreachable!());
    }
    let master = bm.finish();
    er_rules::Task::new(
        input,
        master,
        SchemaMatch::from_pairs(2, &[(0, 0), (1, 1)]),
        (1, 1),
    )
}
