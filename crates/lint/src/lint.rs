//! The three-stage rule-set linter.
//!
//! Stage 1 checks each portable rule structurally against the task's
//! schemas and observed domains (ER001, ER002, ER006). Stage 2 resolves the
//! structurally valid rules. Stage 3 runs the pairwise set-level passes on
//! the resolved rules: exact duplicates (ER003), domination (ER004), and
//! repair conflicts (ER005).

use crate::diag::{DiagnosticCode, Finding, Report, Severity};
use er_rules::io::{PortableCondition, PortableRule};
use er_rules::{dominates, from_portable, EditingRule, Evaluator, Task};
use er_table::{AttrId, Code, Relation, Value, NULL_CODE};
use std::collections::HashMap;

/// Lint a JSON rule file (the format written by [`er_rules::rules_to_json`])
/// against a task. Returns `Err` when the document is not even parseable as
/// a rule set.
pub fn lint_json(json: &str, task: &Task) -> Result<Report, String> {
    let portable: Vec<PortableRule> =
        serde_json::from_str(json).map_err(|e| format!("not a rule-set document: {e}"))?;
    Ok(lint_portable(&portable, task))
}

/// Lint a portable rule set against a task. Runs every pass; rules that
/// fail structural validation (ER001/ER006) are excluded from the pairwise
/// passes because they cannot be resolved.
pub fn lint_portable(rules: &[PortableRule], task: &Task) -> Report {
    let mut findings = Vec::new();
    let mut resolved: Vec<Option<EditingRule>> = Vec::with_capacity(rules.len());
    let mut spans: Vec<String> = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let span = render_portable(rule);
        let fatal = structural_pass(i, rule, &span, task, &mut findings);
        resolved.push(if fatal {
            None
        } else {
            // The structural pass proved every name resolves, the target
            // matches, and Definition 1 holds, so resolution succeeds.
            from_portable(rule, task).ok()
        });
        spans.push(span);
    }
    pairwise_pass(&resolved, &spans, task, &mut findings);
    let mut report = Report {
        num_rules: rules.len(),
        findings,
    };
    report.sort();
    report
}

/// Lint an already-resolved rule set (e.g. a miner's in-memory output).
/// Structural validity is guaranteed by [`EditingRule`]'s constructor, so
/// only the pairwise passes (ER003–ER005) apply.
pub fn lint_resolved(rules: &[EditingRule], task: &Task) -> Report {
    let spans: Vec<String> = rules
        .iter()
        .map(|r| r.display(task.input(), task.master().schema()).to_string())
        .collect();
    let resolved: Vec<Option<EditingRule>> = rules.iter().cloned().map(Some).collect();
    let mut findings = Vec::new();
    pairwise_pass(&resolved, &spans, task, &mut findings);
    let mut report = Report {
        num_rules: rules.len(),
        findings,
    };
    report.sort();
    report
}

/// ER007: check a rule set's mining generation against the master relation
/// it is about to repair against. Returns a warning finding when the master
/// has grown past `rules_generation` — the rules still apply (appends never
/// invalidate resolved attribute ids), but their support/confidence measures
/// were computed over a smaller master and may no longer rank candidates the
/// same way. Unlike the per-rule passes this is a *set-level* staleness
/// check, so the finding is anchored to the whole set (`rule: 0`, span
/// `<rule set>`).
pub fn check_staleness(rules_generation: u64, master: &Relation) -> Option<Finding> {
    let current = master.generation();
    if current <= rules_generation {
        return None;
    }
    Some(Finding {
        code: DiagnosticCode::Er007,
        severity: Severity::Warning,
        rule: 0,
        related: None,
        span: "<rule set>".to_string(),
        message: format!(
            "rule set is stale: mined at master generation {rules_generation}, \
             but the master is now at generation {current}"
        ),
        note: Some(format!(
            "{} row(s) were appended since mining; re-mine or fine-tune \
             (RLMiner-ft) and refresh the rule set",
            current - rules_generation
        )),
    })
}

// ---------------------------------------------------------------------------
// Stage 1: structural checks on one portable rule
// ---------------------------------------------------------------------------

/// Run ER001/ER002/ER006 on one rule. Returns `true` when the rule is
/// *fatally* broken — resolving it would fail or violate Definition 1 — so
/// the pairwise passes must skip it.
fn structural_pass(
    idx: usize,
    rule: &PortableRule,
    span: &str,
    task: &Task,
    findings: &mut Vec<Finding>,
) -> bool {
    let input = task.input();
    let in_schema = input.schema();
    let m_schema = task.master().schema();
    let mut fatal = false;
    let mut push = |code, severity, message: String, note: Option<String>| {
        findings.push(Finding {
            code,
            severity,
            rule: idx,
            related: None,
            span: span.to_string(),
            message,
            note,
        });
    };

    // --- ER001: dangling attribute references -----------------------------
    let mut check_input_attr = |name: &str, role: &str, fatal: &mut bool| -> Option<AttrId> {
        match in_schema.attr_id(name) {
            Ok(a) => Some(a),
            Err(_) => {
                *fatal = true;
                push(
                    DiagnosticCode::Er001,
                    Severity::Error,
                    format!("unknown input attribute `{name}` in the {role}"),
                    Some(format!(
                        "input schema `{}` has attributes: {}",
                        in_schema.name(),
                        attr_names(in_schema)
                    )),
                );
                None
            }
        }
    };
    for (a, _) in &rule.lhs {
        check_input_attr(a, "LHS", &mut fatal);
    }
    let target_in = check_input_attr(&rule.target.0, "target", &mut fatal);
    let pattern_in: Vec<Option<AttrId>> = rule
        .pattern
        .iter()
        .map(|c| check_input_attr(condition_attr(c), "pattern", &mut fatal))
        .collect();
    let mut check_master_attr = |name: &str, role: &str, fatal: &mut bool| -> Option<AttrId> {
        match m_schema.attr_id(name) {
            Ok(a) => Some(a),
            Err(_) => {
                *fatal = true;
                push(
                    DiagnosticCode::Er001,
                    Severity::Error,
                    format!("unknown master attribute `{name}` in the {role}"),
                    Some(format!(
                        "master schema `{}` has attributes: {}",
                        m_schema.name(),
                        attr_names(m_schema)
                    )),
                );
                None
            }
        }
    };
    for (_, am) in &rule.lhs {
        check_master_attr(am, "LHS", &mut fatal);
    }
    let target_m = check_master_attr(&rule.target.1, "target", &mut fatal);

    // --- ER006: Definition 1 violations and target mismatch ---------------
    let y_name = &rule.target.0;
    if rule.lhs.iter().any(|(a, _)| a == y_name) {
        fatal = true;
        push(
            DiagnosticCode::Er006,
            Severity::Error,
            format!("target attribute `{y_name}` appears in the LHS"),
            Some("Definition 1 requires Y ∈ R \\ X".to_string()),
        );
    }
    if rule.pattern.iter().any(|c| condition_attr(c) == y_name) {
        fatal = true;
        push(
            DiagnosticCode::Er006,
            Severity::Error,
            format!("target attribute `{y_name}` is constrained by the pattern"),
            Some("Definition 1 requires X_p ⊂ R \\ {Y}".to_string()),
        );
    }
    let mut seen_lhs: Vec<&str> = Vec::new();
    for (a, _) in &rule.lhs {
        if seen_lhs.contains(&a.as_str()) {
            fatal = true;
            push(
                DiagnosticCode::Er006,
                Severity::Error,
                format!("input attribute `{a}` appears more than once in the LHS"),
                None,
            );
        } else {
            seen_lhs.push(a);
        }
    }
    if let (Some(y), Some(ym)) = (target_in, target_m) {
        if (y, ym) != task.target() {
            fatal = true;
            let (ty, tym) = task.target();
            push(
                DiagnosticCode::Er006,
                Severity::Error,
                format!(
                    "rule target ({}, {}) does not match the task target ({}, {})",
                    rule.target.0,
                    rule.target.1,
                    in_schema.attr(ty).name,
                    m_schema.attr(tym).name
                ),
                None,
            );
        }
    }

    // --- ER002: unsatisfiable patterns ------------------------------------
    // Per-condition emptiness and observed-domain checks.
    for (c, resolved_attr) in rule.pattern.iter().zip(&pattern_in) {
        match c {
            PortableCondition::Range { attr, lo, hi } => {
                if lo >= hi {
                    push(
                        DiagnosticCode::Er002,
                        Severity::Error,
                        format!("empty range [{lo}, {hi}) on `{attr}` can never match"),
                        None,
                    );
                } else if let Some(a) = resolved_attr {
                    match input.numeric_bounds(*a) {
                        Some((min, max)) if *lo > max || *hi <= min => {
                            push(
                                DiagnosticCode::Er002,
                                Severity::Warning,
                                format!(
                                    "range [{lo}, {hi}) on `{attr}` lies outside the \
                                     observed values"
                                ),
                                Some(format!("observed `{attr}` values span [{min}, {max}]")),
                            );
                        }
                        None => {
                            push(
                                DiagnosticCode::Er002,
                                Severity::Warning,
                                format!(
                                    "`{attr}` has no numeric values, so the range \
                                     condition can never match"
                                ),
                                None,
                            );
                        }
                        _ => {}
                    }
                }
            }
            PortableCondition::Eq {
                attr,
                value,
                numeric,
            } => {
                if let Some(a) = resolved_attr {
                    if !value_observed(task, *a, value, *numeric) {
                        push(
                            DiagnosticCode::Er002,
                            Severity::Warning,
                            format!(
                                "constant {value:?} never occurs in input column `{attr}`, \
                                 so the rule can never fire on this dataset"
                            ),
                            None,
                        );
                    }
                }
            }
            PortableCondition::OneOf {
                attr,
                values,
                numeric,
            } => {
                if values.is_empty() {
                    push(
                        DiagnosticCode::Er002,
                        Severity::Error,
                        format!("empty value set on `{attr}` can never match"),
                        None,
                    );
                } else if let Some(a) = resolved_attr {
                    if values
                        .iter()
                        .all(|v| !value_observed(task, *a, v, *numeric))
                    {
                        push(
                            DiagnosticCode::Er002,
                            Severity::Warning,
                            format!(
                                "none of the {} values on `{attr}` occur in the input, \
                                 so the rule can never fire on this dataset",
                                values.len()
                            ),
                            None,
                        );
                    }
                }
            }
        }
    }
    // Multiple conditions on one attribute: contradictory pairs are ER002
    // errors; even a satisfiable multiple violates Definition 1's "at most
    // one condition per attribute" (ER006). Either way resolution would
    // panic, so the rule is fatal.
    let mut by_attr: HashMap<&str, Vec<&PortableCondition>> = HashMap::new();
    for c in &rule.pattern {
        by_attr.entry(condition_attr(c)).or_default().push(c);
    }
    let mut multi: Vec<(&str, Vec<&PortableCondition>)> =
        by_attr.into_iter().filter(|(_, cs)| cs.len() > 1).collect();
    multi.sort_by_key(|(a, _)| *a);
    for (attr, conds) in multi {
        fatal = true;
        let mut contradiction = None;
        'pairs: for (i, c1) in conds.iter().enumerate() {
            for c2 in &conds[i + 1..] {
                if conditions_disjoint(c1, c2) {
                    contradiction = Some((*c1, *c2));
                    break 'pairs;
                }
            }
        }
        match contradiction {
            Some((c1, c2)) => push(
                DiagnosticCode::Er002,
                Severity::Error,
                format!("contradictory conditions on `{attr}` can never hold together"),
                Some(format!(
                    "`{}` contradicts `{}`",
                    render_condition(c1),
                    render_condition(c2)
                )),
            ),
            None => push(
                DiagnosticCode::Er006,
                Severity::Error,
                format!("pattern constrains `{attr}` more than once"),
                Some("Definition 1 allows at most one condition per attribute".to_string()),
            ),
        }
    }
    fatal
}

/// Whether two conditions on the same attribute exclude each other.
fn conditions_disjoint(c1: &PortableCondition, c2: &PortableCondition) -> bool {
    use PortableCondition::{Eq, OneOf, Range};
    let vals = |c: &PortableCondition| -> Option<(Vec<String>, bool)> {
        match c {
            Eq { value, numeric, .. } => Some((vec![value.clone()], *numeric)),
            OneOf {
                values, numeric, ..
            } => Some((values.clone(), *numeric)),
            Range { .. } => None,
        }
    };
    match (vals(c1), vals(c2)) {
        (Some((v1, _)), Some((v2, _))) => v1.iter().all(|v| !v2.contains(v)),
        (None, None) => {
            let (Range { lo: l1, hi: h1, .. }, Range { lo: l2, hi: h2, .. }) = (c1, c2) else {
                return false;
            };
            l1.max(*l2) >= h1.min(*h2)
        }
        // Eq/OneOf vs Range: a numeric range only matches cells with a
        // numeric value, so a non-numeric constant can never satisfy it, and
        // a numeric constant must fall inside [lo, hi).
        (Some((vs, numeric)), None) => range_excludes_values(c2, &vs, numeric),
        (None, Some((vs, numeric))) => range_excludes_values(c1, &vs, numeric),
    }
}

/// Whether a [`PortableCondition::Range`] excludes every listed constant.
fn range_excludes_values(range: &PortableCondition, values: &[String], numeric: bool) -> bool {
    let PortableCondition::Range { lo, hi, .. } = range else {
        return false;
    };
    if !numeric {
        return true;
    }
    values.iter().all(|v| match v.parse::<f64>() {
        Ok(x) => x < *lo || x >= *hi,
        Err(_) => true,
    })
}

/// Whether `raw` (re-interned the way [`er_rules::from_portable`] does)
/// occurs in input column `attr`.
fn value_observed(task: &Task, attr: AttrId, raw: &str, numeric: bool) -> bool {
    let value = parse_value(raw, numeric);
    let Some(code) = task.input().pool().code_of(&value) else {
        return false;
    };
    task.input().column(attr).contains(&code)
}

/// Mirror of the io module's value parsing: numeric constants re-intern as
/// `Int`/`Float`, everything else as a string.
fn parse_value(raw: &str, numeric: bool) -> Value {
    if numeric {
        if let Ok(v) = raw.parse::<i64>() {
            return Value::Int(v);
        }
        if let Ok(v) = raw.parse::<f64>() {
            return Value::Float(v);
        }
    }
    Value::str(raw)
}

// ---------------------------------------------------------------------------
// Stage 3: pairwise set-level passes
// ---------------------------------------------------------------------------

/// ER003 (exact duplicates), ER004 (domination), ER005 (repair conflicts)
/// over the resolvable subset of the rule set.
fn pairwise_pass(
    resolved: &[Option<EditingRule>],
    spans: &[String],
    task: &Task,
    findings: &mut Vec<Finding>,
) {
    let rules: Vec<(usize, &EditingRule)> = resolved
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
        .collect();
    if rules.len() < 2 {
        return;
    }

    // ER003: exact structural duplicates (canonical ordering makes
    // EditingRule equality reliable).
    let mut first_seen: HashMap<&EditingRule, usize> = HashMap::new();
    for &(i, rule) in &rules {
        match first_seen.get(rule) {
            Some(&j) => findings.push(Finding {
                code: DiagnosticCode::Er003,
                severity: Severity::Warning,
                rule: i,
                related: Some(j),
                span: spans[i].clone(),
                message: format!("exact duplicate of rule #{j}"),
                note: None,
            }),
            None => {
                first_seen.insert(rule, i);
            }
        }
    }

    // ER004: a rule dominated by another rule is redundant (Definition 4);
    // the dominating rule applies to every tuple this one applies to and
    // covers at least as many (Lemma 1).
    for &(j, rj) in &rules {
        if let Some(&(i, _)) = rules.iter().find(|&&(_, ri)| dominates(ri, rj)) {
            findings.push(Finding {
                code: DiagnosticCode::Er004,
                severity: Severity::Warning,
                rule: j,
                related: Some(i),
                span: spans[j].clone(),
                message: format!("dominated by rule #{i}, making it redundant"),
                note: Some(format!(
                    "rule #{i} ({}) has a subset of this rule's LHS and pattern, so it \
                     applies everywhere this rule does",
                    spans[i]
                )),
            });
        }
    }

    // ER005: repair conflicts. Two rules may both cover an input tuple yet
    // prescribe different target values (their LHS key the master data
    // differently); on such tuples the certainty-score vote depends on
    // scores and tie-breaks rather than on agreement.
    let ev = Evaluator::new(task);
    let covers: Vec<Vec<er_table::RowId>> = rules.iter().map(|&(_, r)| ev.cover(r, None)).collect();
    for (a, &(i, ri)) in rules.iter().enumerate() {
        for (b, &(j, rj)) in rules.iter().enumerate().skip(a + 1) {
            if ri == rj {
                continue; // already reported as ER003
            }
            let shared: Vec<er_table::RowId> = {
                let in_b: std::collections::HashSet<_> = covers[b].iter().copied().collect();
                covers[a]
                    .iter()
                    .copied()
                    .filter(|r| in_b.contains(r))
                    .collect()
            };
            if shared.is_empty() {
                continue;
            }
            let mut conflicts = 0usize;
            let mut example = None;
            for &row in &shared {
                let (Some(fi), Some(fj)) =
                    (prescribed_fix(&ev, ri, row), prescribed_fix(&ev, rj, row))
                else {
                    continue;
                };
                if fi != fj {
                    conflicts += 1;
                    if example.is_none() {
                        let pool = task.input().pool();
                        example = Some(format!(
                            "e.g. input row {row}: rule #{i} prescribes {}, \
                             rule #{j} prescribes {}",
                            pool.value(fi),
                            pool.value(fj)
                        ));
                    }
                }
            }
            if conflicts > 0 {
                findings.push(Finding {
                    code: DiagnosticCode::Er005,
                    severity: Severity::Warning,
                    rule: j,
                    related: Some(i),
                    span: spans[j].clone(),
                    message: format!(
                        "prescribes a different repair than rule #{i} on {conflicts} of \
                         {} shared tuple{}",
                        shared.len(),
                        if shared.len() == 1 { "" } else { "s" }
                    ),
                    note: example,
                });
            }
        }
    }
}

/// The target value a rule prescribes for an input row: the modal master
/// `Y_m` value among master tuples matching the row's LHS key (ties broken
/// by dictionary code so the answer is deterministic). `None` when the key
/// contains NULL or no master tuple matches.
fn prescribed_fix(ev: &Evaluator<'_>, rule: &EditingRule, row: er_table::RowId) -> Option<Code> {
    let input = ev.task().input();
    let x = rule.x();
    let mut key = Vec::with_capacity(x.len());
    for &a in &x {
        let c = input.code(row, a);
        if c == NULL_CODE {
            return None;
        }
        key.push(c);
    }
    let group = ev.group_index(&rule.xm());
    group
        .get(&key)
        .iter()
        .filter(|e| e.0 != NULL_CODE)
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|e| e.0)
}

// ---------------------------------------------------------------------------
// Rendering helpers
// ---------------------------------------------------------------------------

fn attr_names(schema: &er_table::Schema) -> String {
    schema
        .attributes()
        .iter()
        .map(|a| format!("`{}`", a.name))
        .collect::<Vec<_>>()
        .join(", ")
}

fn condition_attr(c: &PortableCondition) -> &str {
    match c {
        PortableCondition::Eq { attr, .. }
        | PortableCondition::Range { attr, .. }
        | PortableCondition::OneOf { attr, .. } => attr,
    }
}

fn render_condition(c: &PortableCondition) -> String {
    match c {
        PortableCondition::Eq { attr, value, .. } => format!("{attr}={value}"),
        PortableCondition::Range { attr, lo, hi } if hi.is_infinite() => {
            format!("{attr}∈[{lo},∞)")
        }
        PortableCondition::Range { attr, lo, hi } => format!("{attr}∈[{lo},{hi})"),
        PortableCondition::OneOf { attr, values, .. } => {
            format!("{attr}∈{{{}}}", values.join(","))
        }
    }
}

/// Render a portable rule in the paper's notation (mirrors
/// [`er_rules::rule::RuleDisplay`], but works without resolving).
pub fn render_portable(rule: &PortableRule) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("((");
    for (i, (a, am)) in rule.lhs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "({a}, {am})");
    }
    let _ = write!(out, ") -> ({}, {}), t_p(", rule.target.0, rule.target.1);
    for (i, c) in rule.pattern.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&render_condition(c));
    }
    out.push_str("))");
    out
}
